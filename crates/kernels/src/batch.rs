//! The batched, layer-parallel execution engine.
//!
//! One compiled design, `B` independent stimulus lanes, `T` worker
//! threads. The `LI` slot array is widened to `B` lanes per slot in
//! slot-major layout (slot `s` occupies `li[s * B .. (s + 1) * B]`), the
//! layer walk runs lane-wise over each operation, and the operations
//! *within* one layer are split across threads. The layer barrier that
//! levelization guarantees (operands always come from strictly earlier
//! layers, and each operation owns its output slot) is preserved by a
//! spin barrier between layers, which makes the parallel execution
//! bit-identical to the sequential one — the safety and determinism
//! argument is exactly the paper's §4.2 levelization invariant.
//!
//! Since the kernel-compilation stage landed, the default layer walk is
//! over [`CompiledLayer`] slices — each operation pre-lowered by
//! `rteaal_dfg::lane_kernel` into a specialized, autovectorizable lane
//! kernel with dispatch, operand offsets, and canonicalization resolved
//! at [`BatchKernel::compile`] time. The interpreted
//! [`OpInst::eval_lanes`] walk is retained behind
//! [`BatchEngine::Interpreted`] as the differential-testing golden
//! model. Both walks evaluate only the *active* lane window of
//! [`BatchLiState`], which lane-liveness early exit (driven by
//! `rteaal-core`) shrinks as lanes finish their workloads.
//!
//! Worker threads are spawned once per [`BatchKernel::run_parallel`] /
//! [`BatchKernel::run_with_stimulus`] call and live for the whole span of
//! cycles, so the per-cycle cost is the barriers, not thread creation.
//!
//! The traversal order honors the kernel configuration: swizzled kinds
//! (NU/PSU/IU) regroup each layer's operations by opcode — the `[I, N,
//! S]` loop order of Algorithm 4 — which keeps the dispatch branch
//! per-group stable; the remaining kinds keep plan order. Within-layer
//! reordering is sound for the same reason the parallelism is.

use crate::config::{KernelConfig, KernelKind};
use crate::profile::{oim_addr, MemProbe, OimArray, Probe, CODE_BASE, HANDLER_BYTES, LI_BASE};
use crate::rolled::exec_cost;
use rteaal_dfg::batch::init_lanes;
use rteaal_dfg::lane_kernel::{compile_layer, BatchEngine, CompiledLayer, LaneWindow};
use rteaal_dfg::op::canonicalize;
use rteaal_dfg::partition::PartitionedPlan;
use rteaal_dfg::plan::split_commits;
use rteaal_dfg::specialize::{SpecProgram, SpecializedPlan};
use rteaal_dfg::{OpInst, SimPlan};
use rteaal_perfmodel::cache::MemSim;
use rteaal_perfmodel::ExecProfile;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One RUM row of the partitioned state: the register's slot, the
/// replica that commits it, and the replicas it is copied to.
type RumRow = (u32, u32, Vec<u32>);

/// Per-partition register commits, split alias-free/staged (see
/// [`split_commits`]).
type PartCommits = (Vec<(u32, u32)>, Vec<(u32, u32)>);

/// The mutable batched simulation state: `B` lanes per `LI` slot, of
/// which the `live` prefix is evaluated (lane-liveness early exit swaps
/// finished lanes past the prefix and shrinks it).
///
/// With a RepCut decomposition ([`BatchLiState::new_partitioned`]) the
/// matrix is additionally replicated per partition: replica `p` occupies
/// `li[p * span .. (p + 1) * span]` with `span = num_slots * lanes`, and
/// the 2-D partition × lane decomposition of [`BatchKernel`] evaluates
/// partition `p`'s ops inside replica `p` only. Reads route through the
/// per-slot *home* replica; writes (inputs, pokes) land in every
/// replica; the end-of-cycle commit reconciles the replicated boundary
/// rows through the register update map. Lane-axis operations —
/// swapping, per-column reset, the live window — act on the same lane
/// column of **all** replicas, so lane compaction and recycling are
/// partition-oblivious.
#[derive(Debug, Clone)]
pub struct BatchLiState {
    li: Vec<u64>,
    /// Partition replica count (1 = the classic unpartitioned layout).
    parts: usize,
    /// Size of one replica: `num_slots * lanes`.
    span: usize,
    lanes: usize,
    live: usize,
    init: Vec<u64>,
    input_slots: Vec<u32>,
    input_types: Vec<(u8, bool)>,
    output_slots: Vec<(String, u32)>,
    /// Per-partition register commits (one entry when unpartitioned).
    commits: Vec<PartCommits>,
    commit_buf: Vec<u64>,
    /// Register update map rows; empty when unpartitioned.
    rum: Vec<RumRow>,
    /// `slot -> home replica`; empty when unpartitioned (all slots home
    /// in replica 0).
    home: Vec<u32>,
    cycle: u64,
    /// Sidecar bit-plane matrix for a specialized kernel's packed rows
    /// (`SpecProgram::bits_len` words, grown lazily on the first
    /// specialized step). Input-cone rows persist across cycles — that
    /// persistence is what the cone skip reuses.
    bits: Vec<u64>,
    /// An input, poke, reset, window change, or lane permutation
    /// happened since the last full layer walk — the specialized
    /// walk's input-cone skip is unsound until it re-evaluates once.
    inputs_dirty: bool,
    /// The last specialized step reached a register fixed point: the
    /// commit changed no live-lane value and inputs were unchanged, so
    /// `LI` is its own image under walk + commit. While this holds (and
    /// `inputs_dirty` stays false) whole steps are activity-skipped.
    settled: bool,
}

impl BatchLiState {
    /// Initializes `lanes` lanes from a plan, every lane at the power-on
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(plan: &SimPlan, lanes: usize) -> Self {
        assert!(lanes > 0, "batch needs at least one lane");
        let li = init_lanes(plan, lanes);
        let (direct, staged) = split_commits(&plan.commits);
        BatchLiState {
            init: li.clone(),
            span: li.len(),
            li,
            parts: 1,
            lanes,
            live: lanes,
            input_slots: plan.input_slots.clone(),
            input_types: plan.input_types.clone(),
            output_slots: plan.output_slots.clone(),
            commit_buf: vec![0; staged.len() * lanes],
            commits: vec![(direct, staged)],
            rum: Vec::new(),
            home: Vec::new(),
            cycle: 0,
            bits: Vec::new(),
            inputs_dirty: true,
            settled: false,
        }
    }

    /// Initializes a partition-replicated state: one `LI` replica per
    /// partition of `pp`, every lane at the power-on state. Pair with a
    /// kernel from [`BatchKernel::compile_partitioned`] over the same
    /// decomposition.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new_partitioned(plan: &SimPlan, lanes: usize, pp: &PartitionedPlan) -> Self {
        assert!(lanes > 0, "batch needs at least one lane");
        let parts = pp.num_partitions();
        let span = plan.num_slots * lanes;
        let replica = init_lanes(plan, lanes);
        let mut li = Vec::with_capacity(parts * span);
        for _ in 0..parts {
            li.extend_from_slice(&replica);
        }
        let commits: Vec<PartCommits> = pp
            .partitions
            .iter()
            .map(|s| split_commits(&s.commits))
            .collect();
        let max_staged = commits.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
        BatchLiState {
            init: li.clone(),
            li,
            parts,
            span,
            lanes,
            live: lanes,
            input_slots: plan.input_slots.clone(),
            input_types: plan.input_types.clone(),
            output_slots: plan.output_slots.clone(),
            commit_buf: vec![0; max_staged * lanes],
            commits,
            rum: pp
                .rum
                .iter()
                .map(|e| (e.slot, e.owner, e.readers.clone()))
                .collect(),
            home: if parts > 1 {
                pp.home.clone()
            } else {
                Vec::new()
            },
            cycle: 0,
            bits: Vec::new(),
            inputs_dirty: true,
            settled: false,
        }
    }

    /// Number of stimulus lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of partition replicas (1 = unpartitioned).
    pub fn partitions(&self) -> usize {
        self.parts
    }

    /// The home replica of a slot — where its authoritative value lives.
    #[inline]
    fn home_of(&self, s: u32) -> usize {
        if self.home.is_empty() {
            0
        } else {
            self.home[s as usize] as usize
        }
    }

    /// Number of lanes still being evaluated (the active prefix).
    pub fn live(&self) -> usize {
        self.live
    }

    /// Shrinks (or restores) the evaluated lane prefix. Lanes at or past
    /// `live` are frozen: layer evaluation and register commit skip them.
    ///
    /// # Panics
    ///
    /// Panics if `live > lanes`.
    pub fn set_live(&mut self, live: usize) {
        assert!(
            live <= self.lanes,
            "live {live} exceeds {} lanes",
            self.lanes
        );
        self.live = live;
        self.inputs_dirty = true;
    }

    /// The active evaluation window.
    pub fn window(&self) -> LaneWindow {
        LaneWindow {
            stride: self.lanes,
            active: self.live,
        }
    }

    /// Swaps two lane columns across every slot row (lane compaction:
    /// a finished lane is swapped past the live prefix).
    pub fn swap_lanes(&mut self, a: usize, b: usize) {
        assert!(a < self.lanes && b < self.lanes, "lane out of range");
        if a == b {
            return;
        }
        let lanes = self.lanes;
        for s0 in (0..self.li.len()).step_by(lanes) {
            self.li.swap(s0 + a, s0 + b);
        }
        self.inputs_dirty = true;
    }

    /// Number of input ports.
    pub fn num_inputs(&self) -> usize {
        self.input_slots.len()
    }

    /// Resets every lane to the power-on state and revives all lanes.
    pub fn reset(&mut self) {
        self.li.copy_from_slice(&self.init);
        self.live = self.lanes;
        self.cycle = 0;
        self.inputs_dirty = true;
    }

    /// Resets one physical lane column to the power-on state — register
    /// init values, constants, zeroed inputs — without touching any
    /// other lane, the live window, or the cycle counter.
    ///
    /// This is the enabling primitive for lane recycling: call it only
    /// between cycles (never inside [`BatchKernel::run_parallel`] /
    /// [`BatchKernel::run_with_stimulus`], whose workers share the `LI`
    /// array for the whole span of cycles), then drive fresh inputs and
    /// step. It does not change the lane's liveness — the caller is
    /// expected to have swapped the column back into the live window
    /// first (see `rteaal_core::BatchSimulation::reset_lane`).
    ///
    /// # Panics
    ///
    /// Panics if `phys` is out of range.
    pub fn reset_lane(&mut self, phys: usize) {
        assert!(phys < self.lanes, "lane {phys} out of range");
        for s0 in (0..self.li.len()).step_by(self.lanes) {
            self.li[s0 + phys] = self.init[s0 + phys];
        }
        self.inputs_dirty = true;
    }

    /// Drives input port `idx` on one lane (canonicalized to the port
    /// type, written into every partition replica).
    pub fn set_input(&mut self, idx: usize, lane: usize, value: u64) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let (w, signed) = self.input_types[idx];
        let v = canonicalize(value, w as u32, signed);
        let off = self.input_slots[idx] as usize * self.lanes + lane;
        for p in 0..self.parts {
            self.li[p * self.span + off] = v;
        }
        self.inputs_dirty = true;
    }

    /// Drives input port `idx` identically on every lane: canonicalizes
    /// once and fills the lane row (of every replica).
    pub fn set_input_all(&mut self, idx: usize, value: u64) {
        let (w, signed) = self.input_types[idx];
        let v = canonicalize(value, w as u32, signed);
        let s0 = self.input_slots[idx] as usize * self.lanes;
        for p in 0..self.parts {
            let r0 = p * self.span + s0;
            self.li[r0..r0 + self.lanes].fill(v);
        }
        self.inputs_dirty = true;
    }

    /// Drives input port `idx` identically on every *live* lane; frozen
    /// lanes keep the input they halted with.
    pub fn set_input_live(&mut self, idx: usize, value: u64) {
        let (w, signed) = self.input_types[idx];
        let v = canonicalize(value, w as u32, signed);
        let s0 = self.input_slots[idx] as usize * self.lanes;
        for p in 0..self.parts {
            let r0 = p * self.span + s0;
            self.li[r0..r0 + self.live].fill(v);
        }
        self.inputs_dirty = true;
    }

    /// Output value of one lane, by port index.
    pub fn output(&self, idx: usize, lane: usize) -> u64 {
        self.slot(self.output_slots[idx].1, lane)
    }

    /// Output value of one lane, by port name.
    pub fn output_by_name(&self, name: &str, lane: usize) -> Option<u64> {
        assert!(lane < self.lanes, "lane {lane} out of range");
        self.output_slots
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| self.slot(s, lane))
    }

    /// Reads an arbitrary slot on one lane (probe / waveform path),
    /// through the slot's home replica.
    pub fn slot(&self, s: u32, lane: usize) -> u64 {
        assert!(lane < self.lanes, "lane {lane} out of range");
        self.li[self.home_of(s) * self.span + s as usize * self.lanes + lane]
    }

    /// Writes a slot on one lane (DMI poke) — into every replica, so a
    /// partitioned run sees the poke wherever the slot is read.
    pub fn poke_slot(&mut self, s: u32, lane: usize, value: u64) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let off = s as usize * self.lanes + lane;
        for p in 0..self.parts {
            self.li[p * self.span + off] = value;
        }
        self.inputs_dirty = true;
    }

    /// Cycles completed.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Lane-wise register commit over the active window (the final
    /// `LI_{i+1}` Einsum of Cascade 1): per replica, staged sources
    /// first, direct alias-free copies, then the staged writes — each
    /// partition committing only the registers it owns — followed by the
    /// RUM reconciliation copying every committed row from its owner
    /// replica to its reader replicas (the Cascade 2 `LI_{c+1} =
    /// LI_{c,I} · RUM` Einsum). Frozen lanes keep their state.
    fn commit_lanes(&mut self) {
        self.commit_lanes_tracked();
    }

    /// As [`Self::commit_lanes`], additionally reporting whether any
    /// commit (or replica reconciliation) changed a live-lane value.
    /// `false` means the state is a register fixed point: with inputs
    /// unchanged, the next walk + commit would reproduce `LI` exactly —
    /// the activity skip's enabling condition. The pre-write compares
    /// are sound because staged sources are buffered before any
    /// destination write and direct commits are alias-free by
    /// construction.
    fn commit_lanes_tracked(&mut self) -> bool {
        let (lanes, n) = (self.lanes, self.live);
        let mut changed = false;
        for (p, (direct, staged)) in self.commits.iter().enumerate() {
            let base = p * self.span;
            for (k, &(dst, src)) in staged.iter().enumerate() {
                let s0 = base + src as usize * lanes;
                let d0 = base + dst as usize * lanes;
                changed |= self.li[d0..d0 + n] != self.li[s0..s0 + n];
                self.commit_buf[k * lanes..k * lanes + n].copy_from_slice(&self.li[s0..s0 + n]);
            }
            for &(dst, src) in direct {
                let (d0, s0) = (base + dst as usize * lanes, base + src as usize * lanes);
                changed |= self.li[d0..d0 + n] != self.li[s0..s0 + n];
                self.li.copy_within(s0..s0 + n, d0);
            }
            for (k, &(dst, _)) in staged.iter().enumerate() {
                let d0 = base + dst as usize * lanes;
                self.li[d0..d0 + n].copy_from_slice(&self.commit_buf[k * lanes..k * lanes + n]);
            }
        }
        for (slot, owner, readers) in &self.rum {
            let row = *slot as usize * lanes;
            let s0 = *owner as usize * self.span + row;
            for &q in readers {
                let d0 = q as usize * self.span + row;
                changed |= self.li[d0..d0 + n] != self.li[s0..s0 + n];
                self.li.copy_within(s0..s0 + n, d0);
            }
        }
        self.cycle += 1;
        changed
    }

    /// Whether the activity skip is armed: the last specialized step hit
    /// a register fixed point and nothing external has touched the state
    /// since.
    pub fn settled(&self) -> bool {
        self.settled && !self.inputs_dirty
    }
}

/// A raw `LI` pointer sharable across the layer-parallel scope.
#[derive(Clone, Copy)]
struct SharedLi(*mut u64);

// SAFETY: workers only touch disjoint rows between barriers (see
// `CompiledOp::eval_lanes_ptr`); the pointer itself is plain data.
unsafe impl Send for SharedLi {}
// SAFETY: as for `Send` — row disjointness between barriers makes shared
// references to the wrapper harmless.
unsafe impl Sync for SharedLi {}

/// A sense-reversing spin barrier.
///
/// The layer barrier fires `layers × cycles` times per run, so its
/// latency *is* the parallelization overhead; `std::sync::Barrier`'s
/// mutex+condvar rendezvous costs ~10µs, which dwarfs the work of a
/// typical layer. Spinning (with a yield fallback for oversubscribed
/// hosts) brings the crossing down to the cache-coherence cost.
struct SpinBarrier {
    arrived: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
    /// Spin iterations before falling back to `yield_now`. Zero when the
    /// host has fewer cores than barrier participants: spinning there
    /// steals the CPU the late arrivers need.
    spin_limit: u32,
}

impl SpinBarrier {
    fn new(total: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        let spin_limit = if total <= cores { 1 << 14 } else { 0 };
        SpinBarrier {
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
            spin_limit,
        }
    }

    /// Blocks until all `total` threads have arrived.
    ///
    /// Each arriver's prior writes are published through the release
    /// sequence on `arrived`; the last arriver flips `generation` with a
    /// release store, and every waiter's acquire load of it therefore
    /// observes all pre-barrier writes of all threads.
    #[inline]
    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if spins < self.spin_limit {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// One entry of the layer-parallel execution schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    /// A layer wide enough to split across workers.
    Parallel(usize),
    /// A run `[from, to)` of narrow layers worker 0 executes alone —
    /// splitting them would cost more in barrier crossings than the
    /// division of work saves, and merging adjacent ones removes their
    /// interior barriers entirely.
    Serial(usize, usize),
}

/// Minimum op×lane work units in a layer before splitting it pays.
const PAR_MIN_WORK: usize = 1024;

/// Builds the segment schedule for a given lane count from the
/// cross-partition op totals of each layer.
fn schedule(layer_totals: &[usize], lanes: usize) -> Vec<Segment> {
    let mut segments: Vec<Segment> = Vec::with_capacity(layer_totals.len());
    for (i, &ops) in layer_totals.iter().enumerate() {
        if ops * lanes >= PAR_MIN_WORK {
            segments.push(Segment::Parallel(i));
        } else if let Some(Segment::Serial(_, to)) = segments.last_mut() {
            *to = i + 1;
        } else {
            segments.push(Segment::Serial(i, i + 1));
        }
    }
    segments
}

/// Per-lane input driver handed to the stimulus callback of
/// [`BatchKernel::run_with_stimulus`].
pub struct LanePoker<'a> {
    li: SharedLi,
    parts: usize,
    span: usize,
    lanes: usize,
    input_slots: &'a [u32],
    input_types: &'a [(u8, bool)],
    /// The state's `inputs_dirty`: any poke through this driver makes
    /// the specialized walk's input-cone skip unsound until the next
    /// full evaluation.
    dirty: &'a mut bool,
}

impl LanePoker<'_> {
    /// Number of stimulus lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of input ports.
    pub fn num_inputs(&self) -> usize {
        self.input_slots.len()
    }

    /// Drives input port `idx` on one lane (canonicalized to the port
    /// type, written into every partition replica).
    pub fn set_input(&mut self, idx: usize, lane: usize, value: u64) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let (w, signed) = self.input_types[idx];
        let v = canonicalize(value, w as u32, signed);
        let off = self.input_slots[idx] as usize * self.lanes + lane;
        for p in 0..self.parts {
            // SAFETY: input slots are source rows no layer op ever writes,
            // and the callback runs in the single-threaded window between
            // the commit barrier and the next layer-0 barrier.
            unsafe {
                *self.li.0.add(p * self.span + off) = v;
            }
        }
        *self.dirty = true;
    }
}

/// One layer's attributed event counts from a
/// [`BatchKernel::step_profiled`] cycle: how much of the cycle's dynamic
/// work (across all partitions and live lanes) this layer accounted for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerSample {
    /// Layer index in the levelized schedule.
    pub layer: usize,
    /// Operations in this layer, summed across partitions.
    pub ops: usize,
    /// Dynamic instructions modeled for this layer.
    pub instructions: u64,
    /// Data loads modeled for this layer.
    pub loads: u64,
    /// Data stores modeled for this layer.
    pub stores: u64,
}

/// Address of lane `lane` of slot `slot` in partition replica `p` of the
/// slot-major batched `LI` matrix (8 bytes per lane element).
#[inline]
fn batched_li_addr(p: usize, span: usize, slot: u32, lanes: usize, lane: usize) -> u64 {
    LI_BASE + ((p * span + slot as usize * lanes + lane) * 8) as u64
}

/// The batched, layer-parallel kernel: a layer-structured op program
/// (one schedule per partition), its kernel-compiled form, and the
/// traversal the kernel configuration asks for.
///
/// Unpartitioned kernels are the one-partition special case. Partitioned
/// kernels ([`BatchKernel::compile_partitioned`]) hold one op schedule
/// per RepCut partition over the same layer grid; the threaded walk
/// flattens the (partition, op) pairs of each layer into one work range
/// so worker threads own (partition, lane-chunk) tiles, and the layer
/// barrier argument carries over unchanged: output rows are unique
/// within a partition's layer and live in distinct replicas across
/// partitions.
#[derive(Debug, Clone)]
pub struct BatchKernel {
    config: KernelConfig,
    engine: BatchEngine,
    /// Operations per partition per layer (`layers[p][i]`), in execution
    /// order (the interpreted form, also the input of the schedule
    /// builder).
    layers: Vec<Vec<Vec<OpInst>>>,
    /// Kernel-compiled layers, same shape (compiled engine only).
    compiled: Vec<Vec<CompiledLayer>>,
    /// Layer count (equal across partitions; short partitions padded).
    num_layers: usize,
    /// Total ops of each layer across partitions.
    layer_totals: Vec<usize>,
    /// Per layer, prefix sums of per-partition op counts (`parts + 1`
    /// entries) — maps a flattened work range back to per-partition
    /// slices.
    offsets: Vec<Vec<usize>>,
    /// Superblock/bit-packing program for a specialized kernel
    /// ([`BatchKernel::compile_specialized`]); `None` runs the classic
    /// per-op walk.
    spec: Option<SpecProgram>,
}

impl BatchKernel {
    /// Compiles a plan into a batched kernel under a configuration,
    /// lowering every operation into a specialized lane kernel.
    ///
    /// Swizzled kinds (NU/PSU/IU) regroup each layer by opcode (`[I, N,
    /// S]` order); other kinds keep coordinate-assignment order. Both are
    /// bit-identical — within-layer operations are independent.
    pub fn compile(plan: &SimPlan, config: KernelConfig) -> Self {
        Self::compile_with_engine(plan, config, BatchEngine::Compiled)
    }

    /// Compiles a plan with an explicit executor choice
    /// ([`BatchEngine::Interpreted`] keeps the per-lane `eval_raw`
    /// dispatch — the golden model, and the baseline of the
    /// interpreted-vs-compiled benchmark axis).
    pub fn compile_with_engine(plan: &SimPlan, config: KernelConfig, engine: BatchEngine) -> Self {
        Self::from_layers(config, engine, vec![plan.layers.clone()])
    }

    /// Compiles a RepCut decomposition into a partitioned kernel: one op
    /// schedule per partition, executed against the replica-per-partition
    /// state of [`BatchLiState::new_partitioned`] over the same
    /// decomposition.
    pub fn compile_partitioned(pp: &PartitionedPlan, config: KernelConfig) -> Self {
        Self::compile_partitioned_with_engine(pp, config, BatchEngine::Compiled)
    }

    /// Partitioned compilation with an explicit executor choice.
    pub fn compile_partitioned_with_engine(
        pp: &PartitionedPlan,
        config: KernelConfig,
        engine: BatchEngine,
    ) -> Self {
        Self::from_layers(
            config,
            engine,
            pp.partitions.iter().map(|s| s.layers.clone()).collect(),
        )
    }

    fn from_layers(
        config: KernelConfig,
        engine: BatchEngine,
        mut part_layers: Vec<Vec<Vec<OpInst>>>,
    ) -> Self {
        if config.kind.is_swizzled() {
            for layers in &mut part_layers {
                for layer in layers.iter_mut() {
                    layer.sort_by_key(|op| op.n);
                }
            }
        }
        let num_layers = part_layers.iter().map(Vec::len).max().unwrap_or(0);
        for layers in &mut part_layers {
            layers.resize_with(num_layers, Vec::new);
        }
        let mut layer_totals = Vec::with_capacity(num_layers);
        let mut offsets = Vec::with_capacity(num_layers);
        for i in 0..num_layers {
            let mut pref = Vec::with_capacity(part_layers.len() + 1);
            let mut acc = 0usize;
            pref.push(0);
            for layers in &part_layers {
                acc += layers[i].len();
                pref.push(acc);
            }
            layer_totals.push(acc);
            offsets.push(pref);
        }
        let compiled = match engine {
            BatchEngine::Compiled => part_layers
                .iter()
                .map(|layers| layers.iter().map(|l| compile_layer(l)).collect())
                .collect(),
            BatchEngine::Interpreted => Vec::new(),
        };
        BatchKernel {
            config,
            engine,
            layers: part_layers,
            compiled,
            num_layers,
            layer_totals,
            offsets,
            spec: None,
        }
    }

    /// Compiles a specialized plan ([`rteaal_dfg::specialize`]) into a
    /// superblock kernel. The transformed plan's layers are
    /// kernel-compiled as usual — the interpreted and profiled walks
    /// keep working against them — and the layer walk additionally
    /// carries the flat [`SpecProgram`] bytecode: straight-line
    /// superblocks per layer, bit-packed 64-lanes-per-word bodies when
    /// `pack`, and the input-cone skip. Specialized kernels are
    /// unpartitioned; a RepCut decomposition consumes the transformed
    /// plan instead (fold/dedup/DCE still apply, packing does not).
    pub fn compile_specialized(sp: &SpecializedPlan, config: KernelConfig, pack: bool) -> Self {
        let mut kernel = Self::compile(&sp.plan, config);
        kernel.spec = Some(SpecProgram::build(&sp.plan, pack));
        kernel
    }

    /// The configuration this kernel was compiled under.
    pub fn config(&self) -> KernelConfig {
        self.config
    }

    /// The executor this kernel walks its layers with.
    pub fn engine(&self) -> BatchEngine {
        self.engine
    }

    /// The superblock program of a specialized kernel, if any.
    pub fn specialized(&self) -> Option<&SpecProgram> {
        self.spec.as_ref()
    }

    /// Number of partitions this kernel was compiled for (1 =
    /// unpartitioned).
    pub fn partitions(&self) -> usize {
        self.layers.len()
    }

    /// Total operations per simulated cycle (per lane), across all
    /// partitions — for a partitioned kernel this includes the
    /// replicated fan-in cones.
    pub fn ops_per_cycle(&self) -> usize {
        self.layer_totals.iter().sum()
    }

    /// Evaluates one layer of every partition over a window,
    /// single-threaded. `span` is the replica stride of the state.
    #[inline]
    fn eval_layer(&self, i: usize, li: &mut [u64], span: usize, w: LaneWindow, buf: &mut Vec<u64>) {
        for p in 0..self.layers.len() {
            let rep = &mut li[p * span..(p + 1) * span];
            match self.engine {
                BatchEngine::Compiled => {
                    for op in &self.compiled[p][i] {
                        op.eval_lanes(rep, w, buf);
                    }
                }
                BatchEngine::Interpreted => {
                    for op in &self.layers[p][i] {
                        op.eval_lanes(rep, w, buf);
                    }
                }
            }
        }
    }

    /// Evaluates a worker's chunk of one layer through the shared
    /// pointer. The chunk is a range of the layer's flattened
    /// (partition, op) pairs, intersected per partition via the prefix
    /// sums — each worker owns a (partition, op-range) tile set.
    ///
    /// # Safety
    ///
    /// As `CompiledOp::eval_lanes_ptr`: the layer barrier must seal
    /// operand rows, and `(worker, threads)` chunking must give this
    /// caller exclusive ownership of the chunk's output rows (unique
    /// within a partition layer; distinct replicas across partitions).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    unsafe fn eval_layer_chunk(
        &self,
        i: usize,
        li: SharedLi,
        span: usize,
        w: LaneWindow,
        worker: usize,
        threads: usize,
        buf: &mut Vec<u64>,
    ) {
        let (lo, hi) = chunk(self.layer_totals[i], worker, threads);
        let pref = &self.offsets[i];
        for p in 0..self.layers.len() {
            let (a, b) = (pref[p].max(lo), pref[p + 1].min(hi));
            if a >= b {
                continue;
            }
            let (la, lb) = (a - pref[p], b - pref[p]);
            let base = li.0.add(p * span);
            match self.engine {
                BatchEngine::Compiled => {
                    for op in &self.compiled[p][i][la..lb] {
                        op.eval_lanes_ptr(base, w, buf);
                    }
                }
                BatchEngine::Interpreted => {
                    for op in &self.layers[p][i][la..lb] {
                        op.eval_lanes_ptr(base, w, buf);
                    }
                }
            }
        }
    }

    /// One cycle on the active lanes, single-threaded.
    ///
    /// # Panics
    ///
    /// Panics if the state's partition count differs from the kernel's.
    pub fn step(&self, st: &mut BatchLiState) {
        assert_eq!(
            self.layers.len(),
            st.parts,
            "kernel/state partition mismatch"
        );
        if st.inputs_dirty {
            st.settled = false;
        }
        if self.spec.is_some() && st.settled {
            // Activity skip: the state is a register fixed point and no
            // input/poke/window change arrived — walk and commit would
            // both be identities, so the cycle only advances the clock.
            st.cycle += 1;
            return;
        }
        let mut buf = Vec::with_capacity(8);
        self.eval_all(st, &mut buf);
        if self.spec.is_some() {
            st.settled = !st.commit_lanes_tracked();
        } else {
            st.commit_lanes();
        }
    }

    /// Full combinational walk over the active lanes: the specialized
    /// superblock program when this kernel carries one (input-cone
    /// prefixes skipped while the state's inputs are unchanged),
    /// otherwise the classic per-op layer walk.
    fn eval_all(&self, st: &mut BatchLiState, buf: &mut Vec<u64>) {
        let w = st.window();
        if let Some(prog) = &self.spec {
            let need = prog.bits_len(st.lanes);
            if st.bits.len() < need {
                st.bits.resize(need, 0);
            }
            let skip_cone = !st.inputs_dirty;
            for i in 0..prog.num_layers() {
                prog.eval_layer(i, &mut st.li, w, &mut st.bits, skip_cone, buf);
            }
            // The cone (wide slots in `li`, packed rows in `bits`) now
            // reflects the current inputs; register commits cannot
            // invalidate it.
            st.inputs_dirty = false;
            return;
        }
        for i in 0..self.num_layers {
            self.eval_layer(i, &mut st.li, st.span, w, buf);
        }
    }

    /// One cycle with per-layer instrumentation: the real (bit-exact)
    /// layer walk runs first, then the layer's reference streams are
    /// replayed into `mem` through a [`MemProbe`] — per op the OIM
    /// coordinate/side-table loads and the dispatch branch, per live lane
    /// the operand loads from the batched `LI` matrix, the compute body,
    /// and the output store. Counters accumulate into `profile` (ready
    /// for [`rteaal_perfmodel::analyze`]); the return value attributes
    /// them layer by layer.
    ///
    /// The modeled stream is the batched analog of the scalar
    /// [`Kernel::step_profiled`](crate::Kernel::step_profiled): each op's
    /// coordinates are fetched once per cycle while its lane loop streams
    /// `live` contiguous `LI` lanes — exactly the amortization the
    /// batched engine exists to buy.
    ///
    /// # Panics
    ///
    /// Panics if the state's partition count differs from the kernel's.
    pub fn step_profiled(
        &self,
        st: &mut BatchLiState,
        mem: &mut MemSim,
        profile: &mut ExecProfile,
    ) -> Vec<LayerSample> {
        assert_eq!(
            self.layers.len(),
            st.parts,
            "kernel/state partition mismatch"
        );
        let mut buf = Vec::with_capacity(8);
        let w = st.window();
        let mut probe = MemProbe::new(mem);
        let mut samples = Vec::with_capacity(self.num_layers);
        // OIM arrays are laid out in schedule order: the coordinate index
        // is global across layers (and partitions), as is the running
        // base into the flattened `R`-rank operand array.
        let mut op_index = 0usize;
        let mut r_index = 0usize;
        for i in 0..self.num_layers {
            self.eval_layer(i, &mut st.li, st.span, w, &mut buf);
            let before = probe.counters;
            for p in 0..self.layers.len() {
                for op in &self.layers[p][i] {
                    probe.load(oim_addr(OimArray::NCoords, op_index, 2));
                    probe.load(oim_addr(OimArray::SCoords, op_index, 4));
                    probe.load(oim_addr(OimArray::Meta, op_index, 24));
                    for o in 0..op.ins.len() {
                        probe.load(oim_addr(OimArray::RCoords, r_index + o, 4));
                    }
                    let handler = CODE_BASE + op.n as u64 * HANDLER_BYTES;
                    probe.branch(handler);
                    let cost = exec_cost(op.op(), op.ins.len());
                    for lane in 0..st.live {
                        for &ins in &op.ins {
                            probe.load(batched_li_addr(p, st.span, ins, st.lanes, lane));
                        }
                        probe.exec(handler + 0x10, cost);
                        probe.store(batched_li_addr(p, st.span, op.out, st.lanes, lane));
                    }
                    r_index += op.ins.len();
                    op_index += 1;
                }
            }
            let after = probe.counters;
            samples.push(LayerSample {
                layer: i,
                ops: self.layer_totals[i],
                instructions: after.instructions - before.instructions,
                loads: after.loads - before.loads,
                stores: after.stores - before.stores,
            });
        }
        st.commit_lanes();
        profile.instructions += probe.counters.instructions;
        profile.branches += probe.counters.branches;
        profile.branch_entropy = match self.config.kind {
            KernelKind::Ru | KernelKind::Ou => 0.012,
            KernelKind::Nu | KernelKind::Psu | KernelKind::Iu => 0.0012,
            KernelKind::Su | KernelKind::Ti => 0.001,
        };
        profile.mem = mem.stats();
        samples
    }

    /// Evaluates every combinational layer over the active lanes WITHOUT
    /// committing registers or advancing the cycle counter: after this,
    /// every wire slot (outputs, probes, halt conditions) reflects the
    /// current registers and inputs. Idempotent, and invisible to a
    /// subsequent [`step`](Self::step), which re-evaluates the same
    /// layers from the same sources — the hook that lets a scheduler
    /// observe a halt signal that is combinationally true the moment a
    /// testbench is admitted, before spending a cycle on it.
    pub fn eval_comb(&self, st: &mut BatchLiState) {
        assert_eq!(
            self.layers.len(),
            st.parts,
            "kernel/state partition mismatch"
        );
        let mut buf = Vec::with_capacity(8);
        self.eval_all(st, &mut buf);
    }

    /// `cycles` cycles on the active lanes, single-threaded.
    pub fn run(&self, st: &mut BatchLiState, cycles: u64) {
        for _ in 0..cycles {
            self.step(st);
        }
    }

    /// `cycles` cycles with the ops of each layer split across `threads`
    /// workers (layer barrier preserved). Inputs keep whatever values
    /// they currently hold.
    pub fn run_parallel(&self, st: &mut BatchLiState, cycles: u64, threads: usize) {
        self.run_with_stimulus(st, cycles, threads, |_, _| {});
    }

    /// `cycles` cycles across `threads` workers, invoking `stimulus`
    /// before each cycle (in the single-threaded window after the
    /// previous commit) so every lane can be driven independently.
    pub fn run_with_stimulus(
        &self,
        st: &mut BatchLiState,
        cycles: u64,
        threads: usize,
        mut stimulus: impl FnMut(u64, &mut LanePoker<'_>),
    ) {
        assert_eq!(
            self.layers.len(),
            st.parts,
            "kernel/state partition mismatch"
        );
        let start_cycle = st.cycle;
        let threads = threads.max(1);
        if threads == 1 {
            for c in 0..cycles {
                {
                    let li = SharedLi(st.li.as_mut_ptr());
                    let mut poker = LanePoker {
                        li,
                        parts: st.parts,
                        span: st.span,
                        lanes: st.lanes,
                        input_slots: &st.input_slots,
                        input_types: &st.input_types,
                        dirty: &mut st.inputs_dirty,
                    };
                    stimulus(start_cycle + c, &mut poker);
                }
                self.step(st);
            }
            return;
        }
        // Threaded commits are untracked: any settledness established by
        // a serial run cannot survive a run whose commits aren't
        // compared (and whose stimulus may poke mid-run).
        st.settled = false;
        if let Some(prog) = &self.spec {
            self.run_spec_parallel(prog, st, cycles, threads, &mut stimulus);
            return;
        }
        let w = st.window();
        let span = st.span;
        let shared = SharedLi(st.li.as_mut_ptr());
        // One barrier rendezvous per schedule segment plus one around the
        // commit/stimulus window; worker 0 (the calling thread) owns the
        // single-threaded windows and executes the serial segments.
        let segments = schedule(&self.layer_totals, st.lanes);
        let barrier = SpinBarrier::new(threads);
        std::thread::scope(|scope| {
            for worker in 1..threads {
                let barrier = &barrier;
                let segments = &segments;
                let kernel = &*self;
                scope.spawn(move || {
                    // Capture the whole `Send` wrapper, not its raw field
                    // (edition-2021 closures capture disjoint fields).
                    let shared = shared;
                    let mut buf = Vec::with_capacity(8);
                    for _ in 0..cycles {
                        barrier.wait(); // stimulus window closed
                        for segment in segments {
                            if let Segment::Parallel(i) = *segment {
                                // SAFETY: disjoint output rows within the
                                // layer; operand rows sealed by the
                                // previous barrier.
                                unsafe {
                                    kernel.eval_layer_chunk(
                                        i, shared, span, w, worker, threads, &mut buf,
                                    )
                                };
                            }
                            // Serial segments belong to worker 0.
                            barrier.wait();
                        }
                        // Worker 0 commits and applies stimulus next.
                    }
                });
            }
            let mut buf = Vec::with_capacity(8);
            for c in 0..cycles {
                {
                    let mut poker = LanePoker {
                        li: shared,
                        parts: st.parts,
                        span: st.span,
                        lanes: st.lanes,
                        input_slots: &st.input_slots,
                        input_types: &st.input_types,
                        dirty: &mut st.inputs_dirty,
                    };
                    stimulus(start_cycle + c, &mut poker);
                }
                barrier.wait(); // open the compute phase
                for segment in &segments {
                    match *segment {
                        Segment::Parallel(i) => {
                            // SAFETY: as above.
                            unsafe {
                                self.eval_layer_chunk(i, shared, span, w, 0, threads, &mut buf)
                            };
                        }
                        Segment::Serial(from, to) => {
                            for i in from..to {
                                // SAFETY: workers never touch serial
                                // layers; operand rows are sealed.
                                unsafe {
                                    self.eval_layer_chunk(i, shared, span, w, 0, 1, &mut buf)
                                };
                            }
                        }
                    }
                    barrier.wait();
                }
                // Single-threaded window: every worker is parked at the
                // next cycle's opening barrier.
                commit_shared(shared, span, w, &st.commits, &mut st.commit_buf, &st.rum);
            }
        });
        st.cycle += cycles;
    }

    /// The threaded walk of a specialized kernel: each layer runs as
    /// phase A (boundary pack/unpack moves) and phase B (wide + packed
    /// bodies), each phase chunked across workers and sealed by a
    /// barrier — one extra rendezvous per layer versus the classic
    /// walk, bought back by the packed bodies. The threaded walk never
    /// skips the input cone (the skip flag is a single-threaded
    /// optimization); it leaves the cone freshly evaluated, so it
    /// clears `inputs_dirty` for a subsequent serial walk.
    fn run_spec_parallel(
        &self,
        prog: &SpecProgram,
        st: &mut BatchLiState,
        cycles: u64,
        threads: usize,
        stimulus: &mut impl FnMut(u64, &mut LanePoker<'_>),
    ) {
        let start_cycle = st.cycle;
        let need = prog.bits_len(st.lanes);
        if st.bits.len() < need {
            st.bits.resize(need, 0);
        }
        let w = st.window();
        let shared = SharedLi(st.li.as_mut_ptr());
        let shared_bits = SharedLi(st.bits.as_mut_ptr());
        let barrier = SpinBarrier::new(threads);
        std::thread::scope(|scope| {
            for worker in 1..threads {
                let barrier = &barrier;
                scope.spawn(move || {
                    let (shared, shared_bits) = (shared, shared_bits);
                    let mut buf = Vec::with_capacity(8);
                    for _ in 0..cycles {
                        barrier.wait(); // stimulus window closed
                        for i in 0..prog.num_layers() {
                            let (lo, hi) = chunk(prog.phase_a_len(i), worker, threads);
                            // SAFETY: phase-A instructions write disjoint
                            // rows; operand rows sealed by the previous
                            // barrier.
                            unsafe { prog.eval_phase_a(i, shared.0, w, shared_bits.0, lo, hi) };
                            barrier.wait();
                            let (lo, hi) = chunk(prog.phase_b_len(i), worker, threads);
                            // SAFETY: as above, per phase B's contract.
                            unsafe {
                                prog.eval_phase_b(i, shared.0, w, shared_bits.0, lo, hi, &mut buf)
                            };
                            barrier.wait();
                        }
                        // Worker 0 commits and applies stimulus next.
                    }
                });
            }
            let mut buf = Vec::with_capacity(8);
            for c in 0..cycles {
                {
                    let mut poker = LanePoker {
                        li: shared,
                        parts: st.parts,
                        span: st.span,
                        lanes: st.lanes,
                        input_slots: &st.input_slots,
                        input_types: &st.input_types,
                        dirty: &mut st.inputs_dirty,
                    };
                    stimulus(start_cycle + c, &mut poker);
                }
                barrier.wait(); // open the compute phase
                for i in 0..prog.num_layers() {
                    let (lo, hi) = chunk(prog.phase_a_len(i), 0, threads);
                    // SAFETY: as the worker side.
                    unsafe { prog.eval_phase_a(i, shared.0, w, shared_bits.0, lo, hi) };
                    barrier.wait();
                    let (lo, hi) = chunk(prog.phase_b_len(i), 0, threads);
                    // SAFETY: as the worker side.
                    unsafe { prog.eval_phase_b(i, shared.0, w, shared_bits.0, lo, hi, &mut buf) };
                    barrier.wait();
                }
                // Single-threaded window: every worker is parked at the
                // next cycle's opening barrier.
                commit_shared(shared, st.span, w, &st.commits, &mut st.commit_buf, &st.rum);
            }
        });
        st.inputs_dirty = false;
        st.cycle += cycles;
    }
}

/// The contiguous op range worker `w` of `t` owns in a layer of `n` ops.
#[inline]
fn chunk(n: usize, w: usize, t: usize) -> (usize, usize) {
    (n * w / t, n * (w + 1) / t)
}

/// Lane-wise commit over the active window through the shared pointer
/// (worker 0's single-threaded window): per replica, staged sources,
/// direct copies, staged writes, then the RUM reconciliation — same
/// order and safety argument as `BatchLiState::commit_lanes`.
fn commit_shared(
    li: SharedLi,
    span: usize,
    w: LaneWindow,
    commits: &[PartCommits],
    buf: &mut [u64],
    rum: &[RumRow],
) {
    let (lanes, n) = (w.stride, w.active);
    for (p, (direct, staged)) in commits.iter().enumerate() {
        let base = p * span;
        for (k, &(_, src)) in staged.iter().enumerate() {
            for lane in 0..n {
                // SAFETY: single-threaded window; rows are in bounds.
                buf[k * lanes + lane] = unsafe { *li.0.add(base + src as usize * lanes + lane) };
            }
        }
        for &(dst, src) in direct {
            for lane in 0..n {
                // SAFETY: as above; dst is outside the commit source set.
                unsafe {
                    *li.0.add(base + dst as usize * lanes + lane) =
                        *li.0.add(base + src as usize * lanes + lane);
                }
            }
        }
        for (k, &(dst, _)) in staged.iter().enumerate() {
            for lane in 0..n {
                // SAFETY: as above.
                unsafe { *li.0.add(base + dst as usize * lanes + lane) = buf[k * lanes + lane] };
            }
        }
    }
    for (slot, owner, readers) in rum {
        let row = *slot as usize * lanes;
        let s0 = *owner as usize * span + row;
        for &q in readers {
            let d0 = q as usize * span + row;
            for lane in 0..n {
                // SAFETY: single-threaded window; replica rows are in
                // bounds and owner != reader.
                unsafe { *li.0.add(d0 + lane) = *li.0.add(s0 + lane) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KernelConfig, KernelKind, ALL_KERNELS};
    use rand::{Rng, SeedableRng};
    use rteaal_dfg::plan::{plan, PlanSim};
    use rteaal_dfg::BatchPlanSim;
    use rteaal_firrtl::{lower::lower_typed, parser::parse};

    const DESIGN: &str = "\
circuit D :
  module D :
    input clock : Clock
    input x : UInt<16>
    input sel : UInt<1>
    output out : UInt<16>
    output flag : UInt<1>
    reg a : UInt<16>, clock
    reg b : UInt<16>, clock
    node s = tail(add(a, x), 1)
    node t = xor(b, cat(bits(x, 7, 0), bits(x, 15, 8)))
    a <= mux(sel, s, t)
    b <= tail(sub(a, x), 1)
    out <= a
    flag <= orr(b)
";

    fn plan_of(src: &str) -> SimPlan {
        plan(&rteaal_dfg::build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap())
    }

    /// A design wide enough that every worker gets real work per layer.
    fn wide_design() -> String {
        let mut src = String::from(
            "\
circuit Wide :
  module Wide :
    input clock : Clock
    input x : UInt<32>
    output out : UInt<32>
",
        );
        for i in 0..120 {
            src.push_str(&format!("    reg r{i} : UInt<32>, clock\n"));
        }
        src.push_str("    r0 <= tail(add(r119, x), 1)\n");
        for i in 1..120 {
            let op = ["xor", "and", "or", "add"][i % 4];
            if op == "add" {
                src.push_str(&format!("    r{i} <= tail(add(r{}, x), 1)\n", i - 1));
            } else {
                src.push_str(&format!("    r{i} <= {op}(r{}, x)\n", i - 1));
            }
        }
        src.push_str("    out <= r119\n");
        src
    }

    #[test]
    fn every_kind_and_engine_matches_the_interpreted_golden_model() {
        let p = plan_of(DESIGN);
        const LANES: usize = 5;
        for kind in ALL_KERNELS {
            for engine in [BatchEngine::Compiled, BatchEngine::Interpreted] {
                let kernel = BatchKernel::compile_with_engine(&p, KernelConfig::new(kind), engine);
                assert_eq!(kernel.engine(), engine);
                let mut st = BatchLiState::new(&p, LANES);
                let mut golden = BatchPlanSim::interpreted(&p, LANES);
                let mut rng = rand::rngs::StdRng::seed_from_u64(kind as u64 + 31);
                for cycle in 0..100 {
                    for lane in 0..LANES {
                        let x: u64 = rng.gen();
                        let sel: u64 = rng.gen();
                        st.set_input(0, lane, x);
                        st.set_input(1, lane, sel);
                        golden.set_input(0, lane, x);
                        golden.set_input(1, lane, sel);
                    }
                    kernel.step(&mut st);
                    golden.step();
                    for lane in 0..LANES {
                        for idx in 0..2 {
                            assert_eq!(
                                st.output(idx, lane),
                                golden.output(idx, lane),
                                "{kind:?}/{engine:?} lane {lane} output {idx} @ {cycle}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn profiled_step_is_bit_exact_and_attributes_work_per_layer() {
        let p = plan_of(DESIGN);
        const LANES: usize = 4;
        let kernel = BatchKernel::compile(&p, KernelConfig::new(KernelKind::Psu));
        let mut plain = BatchLiState::new(&p, LANES);
        let mut probed = BatchLiState::new(&p, LANES);
        let machine = rteaal_perfmodel::Machine::intel_core();
        let mut mem = machine.mem_sim();
        let mut profile = ExecProfile::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(97);
        let mut samples = Vec::new();
        for cycle in 0..25u64 {
            for lane in 0..LANES {
                let (x, sel) = (rng.gen(), rng.gen());
                plain.set_input(0, lane, x);
                plain.set_input(1, lane, sel);
                probed.set_input(0, lane, x);
                probed.set_input(1, lane, sel);
            }
            kernel.step(&mut plain);
            samples = kernel.step_profiled(&mut probed, &mut mem, &mut profile);
            for lane in 0..LANES {
                for idx in 0..2 {
                    assert_eq!(
                        probed.output(idx, lane),
                        plain.output(idx, lane),
                        "profiled walk diverged at lane {lane} output {idx} @ {cycle}"
                    );
                }
            }
        }
        // Every non-empty layer attributes nonzero work, and the per-op
        // coordinate stream plus per-lane body both show up: at least
        // one instruction per lane per op, plus the coordinate loads.
        assert_eq!(samples.len(), kernel.num_layers);
        for s in &samples {
            assert!(s.ops > 0, "layer {} has ops", s.layer);
            assert!(
                s.instructions > (s.ops * LANES) as u64,
                "layer {} underattributed: {s:?}",
                s.layer
            );
            assert!(s.loads > 0 && s.stores > 0, "layer {}: {s:?}", s.layer);
        }
        let per_cycle: u64 = samples.iter().map(|s| s.instructions).sum();
        assert!(
            profile.instructions >= per_cycle * 25,
            "profile accumulated"
        );
        assert!(profile.branches > 0);
        assert!(profile.branch_entropy > 0.0);
        assert!(profile.mem.l1d.accesses > 0, "the cache model was fed");
        // The accumulated profile must drive the top-down model to a
        // meaningful (nonzero, normalized) bottleneck breakdown.
        let td = rteaal_perfmodel::analyze(&profile, &machine);
        assert!(td.cycles > 0.0 && td.ipc > 0.0);
        let total = td.frontend_bound + td.bad_speculation + td.backend_bound + td.retiring;
        assert!((total - 1.0).abs() < 1e-6, "top-down normalizes: {td:?}");
        assert!(td.retiring > 0.0 && td.backend_bound >= 0.0);
    }

    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        let p = plan_of(&wide_design());
        const LANES: usize = 8;
        const CYCLES: u64 = 50;
        let kernel = BatchKernel::compile(&p, KernelConfig::new(KernelKind::Psu));
        let drive = |poker: &mut LanePoker<'_>, cycle: u64| {
            for lane in 0..LANES {
                poker.set_input(0, lane, cycle.wrapping_mul(0x9e37) ^ lane as u64);
            }
        };
        let mut seq = BatchLiState::new(&p, LANES);
        kernel.run_with_stimulus(&mut seq, CYCLES, 1, |c, poker| drive(poker, c));
        for threads in [2, 3, 4, 8] {
            let mut par = BatchLiState::new(&p, LANES);
            kernel.run_with_stimulus(&mut par, CYCLES, threads, |c, poker| drive(poker, c));
            assert_eq!(par.cycle(), seq.cycle());
            for lane in 0..LANES {
                for s in 0..p.num_slots as u32 {
                    assert_eq!(
                        par.slot(s, lane),
                        seq.slot(s, lane),
                        "threads={threads} slot {s} lane {lane}"
                    );
                }
            }
        }
    }

    /// Strips interior-node probes, keeping inputs and registers — the
    /// FIRRTL test designs name every interior wire (which probes it),
    /// while real lowered designs are mostly anonymous subexpressions;
    /// this gives the specializer the interior it exists to attack.
    fn anonymized(mut p: SimPlan) -> SimPlan {
        let keep: std::collections::HashSet<u32> = p
            .input_slots
            .iter()
            .copied()
            .chain(p.commits.iter().map(|&(d, _)| d))
            .collect();
        p.probes.retain(|&(_, s, _)| keep.contains(&s));
        p
    }

    #[test]
    fn specialized_kernel_matches_golden_with_freeze_recycle_and_pokes() {
        let p = anonymized(plan_of(DESIGN));
        let sp = rteaal_dfg::specialize(&p);
        assert!(sp.stats.ops_after <= sp.stats.ops_before);
        const LANES: usize = 6;
        let golden_kernel = BatchKernel::compile_with_engine(
            &p,
            KernelConfig::new(KernelKind::Psu),
            BatchEngine::Interpreted,
        );
        for pack in [false, true] {
            let kernel =
                BatchKernel::compile_specialized(&sp, KernelConfig::new(KernelKind::Psu), pack);
            assert!(kernel.specialized().is_some());
            // The specialized state materializes folded constants via the
            // transformed plan's init image; observables share numbering.
            let mut st = BatchLiState::new(&sp.plan, LANES);
            let mut gold = BatchLiState::new(&p, LANES);
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE + pack as u64);
            for cycle in 0..160u64 {
                // Drive inputs only every third cycle: held-input cycles
                // exercise the input-cone skip against a walk that never
                // skips.
                if cycle % 3 == 0 {
                    for lane in 0..LANES {
                        let (x, sel) = (rng.gen(), rng.gen());
                        st.set_input(0, lane, x);
                        st.set_input(1, lane, sel);
                        gold.set_input(0, lane, x);
                        gold.set_input(1, lane, sel);
                    }
                }
                match cycle {
                    40 => {
                        st.set_live(3);
                        gold.set_live(3);
                    }
                    80 => {
                        // Recycle a frozen column back into the window.
                        st.swap_lanes(1, 4);
                        gold.swap_lanes(1, 4);
                        st.reset_lane(1);
                        gold.reset_lane(1);
                        st.set_live(5);
                        gold.set_live(5);
                    }
                    120 => {
                        // A DMI poke into a probed register slot.
                        let reg = p.commits[0].0;
                        st.poke_slot(reg, 0, 0x5a5a);
                        gold.poke_slot(reg, 0, 0x5a5a);
                    }
                    _ => {}
                }
                kernel.step(&mut st);
                golden_kernel.step(&mut gold);
                for lane in 0..LANES {
                    for s in 0..p.num_slots as u32 {
                        if p.probes.iter().any(|&(_, ps, _)| ps == s)
                            || p.output_slots.iter().any(|&(_, os)| os == s)
                        {
                            assert_eq!(
                                st.slot(s, lane),
                                gold.slot(s, lane),
                                "pack={pack} slot {s} lane {lane} @ {cycle}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn specialized_parallel_run_is_bit_identical_to_serial() {
        let p = anonymized(plan_of(&wide_design()));
        let sp = rteaal_dfg::specialize(&p);
        const LANES: usize = 8;
        const CYCLES: u64 = 50;
        let kernel =
            BatchKernel::compile_specialized(&sp, KernelConfig::new(KernelKind::Psu), true);
        let golden_kernel = BatchKernel::compile(&p, KernelConfig::new(KernelKind::Psu));
        let drive = |poker: &mut LanePoker<'_>, cycle: u64| {
            for lane in 0..LANES {
                poker.set_input(0, lane, cycle.wrapping_mul(0x9e37) ^ lane as u64);
            }
        };
        let mut gold = BatchLiState::new(&p, LANES);
        golden_kernel.run_with_stimulus(&mut gold, CYCLES, 1, |c, poker| drive(poker, c));
        let mut seq = BatchLiState::new(&sp.plan, LANES);
        kernel.run_with_stimulus(&mut seq, CYCLES, 1, |c, poker| drive(poker, c));
        let observable = |s: u32| {
            p.probes.iter().any(|&(_, ps, _)| ps == s)
                || p.output_slots.iter().any(|&(_, os)| os == s)
        };
        for lane in 0..LANES {
            for s in (0..p.num_slots as u32).filter(|&s| observable(s)) {
                assert_eq!(
                    seq.slot(s, lane),
                    gold.slot(s, lane),
                    "serial spec vs golden"
                );
            }
        }
        for threads in [2, 3, 4] {
            let mut par = BatchLiState::new(&sp.plan, LANES);
            kernel.run_with_stimulus(&mut par, CYCLES, threads, |c, poker| drive(poker, c));
            assert_eq!(par.cycle(), seq.cycle());
            for lane in 0..LANES {
                for s in 0..sp.plan.num_slots as u32 {
                    assert_eq!(
                        par.slot(s, lane),
                        seq.slot(s, lane),
                        "threads={threads} slot {s} lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_lanes_match_independent_single_lane_runs() {
        let p = plan_of(DESIGN);
        const LANES: usize = 6;
        const CYCLES: u64 = 80;
        let kernel = BatchKernel::compile(&p, KernelConfig::new(KernelKind::Ti));
        let stim = |lane: usize, cycle: u64| {
            (
                cycle.wrapping_mul(31) ^ (lane as u64).wrapping_mul(0x517c_c1b7_2722_0a95),
                (cycle ^ lane as u64) & 1,
            )
        };
        let mut batch = BatchLiState::new(&p, LANES);
        kernel.run_with_stimulus(&mut batch, CYCLES, 3, |c, poker| {
            for lane in 0..LANES {
                let (x, sel) = stim(lane, c);
                poker.set_input(0, lane, x);
                poker.set_input(1, lane, sel);
            }
        });
        for lane in 0..LANES {
            let mut single = PlanSim::new(&p);
            for c in 0..CYCLES {
                let (x, sel) = stim(lane, c);
                single.set_input(0, x);
                single.set_input(1, sel);
                single.step();
            }
            for idx in 0..2 {
                assert_eq!(batch.output(idx, lane), single.output(idx), "lane {lane}");
            }
        }
    }

    #[test]
    fn state_reset_and_pokes() {
        let p = plan_of(DESIGN);
        let kernel = BatchKernel::compile(&p, KernelConfig::new(KernelKind::Nu));
        let mut st = BatchLiState::new(&p, 3);
        assert_eq!(st.lanes(), 3);
        assert_eq!(st.num_inputs(), 2);
        st.set_input_all(0, 7);
        kernel.run(&mut st, 4);
        assert_eq!(st.cycle(), 4);
        assert!(st.output_by_name("out", 1).is_some());
        assert!(st.output_by_name("ghost", 0).is_none());
        st.reset();
        assert_eq!(st.cycle(), 0);
        st.poke_slot(0, 2, 42);
        assert_eq!(st.slot(0, 2), 42);
        assert_eq!(st.slot(0, 0), 0);
    }

    #[test]
    fn frozen_lanes_keep_their_state() {
        let p = plan_of(DESIGN);
        let kernel = BatchKernel::compile(&p, KernelConfig::new(KernelKind::Psu));
        let mut st = BatchLiState::new(&p, 4);
        st.set_input_all(0, 9);
        st.set_input_all(1, 1);
        kernel.run(&mut st, 3);
        let frozen: Vec<u64> = (0..p.num_slots as u32).map(|s| st.slot(s, 3)).collect();
        // Freeze lane 3, keep stepping the first three.
        st.set_live(3);
        assert_eq!(st.live(), 3);
        kernel.run(&mut st, 5);
        for (s, &v) in frozen.iter().enumerate() {
            assert_eq!(st.slot(s as u32, 3), v, "frozen lane mutated at slot {s}");
        }
        // Live lanes moved on (the accumulating register changed).
        assert_ne!(st.slot(p.commits[0].0, 0), frozen[p.commits[0].0 as usize]);
        // swap_lanes moves the frozen column; reset revives everything.
        st.swap_lanes(0, 3);
        assert_eq!(st.slot(p.commits[0].0, 0), frozen[p.commits[0].0 as usize]);
        st.reset();
        assert_eq!(st.live(), 4);
    }

    #[test]
    fn reset_lane_is_per_column_power_on() {
        let p = plan_of(DESIGN);
        let kernel = BatchKernel::compile(&p, KernelConfig::new(KernelKind::Psu));
        const LANES: usize = 4;
        let mut st = BatchLiState::new(&p, LANES);
        for lane in 0..LANES {
            st.set_input(0, lane, 0x1111 * (lane as u64 + 1));
            st.set_input(1, lane, 1);
        }
        kernel.run(&mut st, 6);
        let before: Vec<Vec<u64>> = (0..LANES)
            .map(|lane| (0..p.num_slots as u32).map(|s| st.slot(s, lane)).collect())
            .collect();
        st.reset_lane(1);
        let fresh = BatchLiState::new(&p, LANES);
        for s in 0..p.num_slots as u32 {
            assert_eq!(st.slot(s, 1), fresh.slot(s, 1), "slot {s} not power-on");
            for lane in [0usize, 2, 3] {
                assert_eq!(st.slot(s, lane), before[lane][s as usize], "lane {lane}");
            }
        }
        // Cycle counter and live window are untouched.
        assert_eq!(st.cycle(), 6);
        assert_eq!(st.live(), LANES);
        // The revived column replays a fresh run bit-for-bit.
        let mut replay = BatchLiState::new(&p, 1);
        for c in 0..10u64 {
            st.set_input(0, 1, c * 7 + 3);
            st.set_input(1, 1, c & 1);
            replay.set_input(0, 0, c * 7 + 3);
            replay.set_input(1, 0, c & 1);
            kernel.step(&mut st);
            kernel.step(&mut replay);
            for s in 0..p.num_slots as u32 {
                assert_eq!(st.slot(s, 1), replay.slot(s, 0), "slot {s} @ cycle {c}");
            }
        }
    }

    #[test]
    fn swizzled_kinds_group_by_opcode() {
        let p = plan_of(DESIGN);
        let swz = BatchKernel::compile(&p, KernelConfig::new(KernelKind::Psu));
        assert_eq!(swz.partitions(), 1);
        for layer in &swz.layers[0] {
            for pair in layer.windows(2) {
                assert!(pair[0].n <= pair[1].n, "layer not grouped by opcode");
            }
        }
        assert_eq!(swz.ops_per_cycle(), p.total_ops());
        assert_eq!(swz.config().kind, KernelKind::Psu);
    }

    #[test]
    fn partitioned_step_matches_unpartitioned_every_slot() {
        for src in [DESIGN.to_string(), wide_design()] {
            let p = plan_of(&src);
            const LANES: usize = 5;
            let kernel = BatchKernel::compile(&p, KernelConfig::new(KernelKind::Psu));
            for parts in [1usize, 2, 3, 4, 8] {
                let pp = PartitionedPlan::new(&p, parts);
                let pkernel =
                    BatchKernel::compile_partitioned(&pp, KernelConfig::new(KernelKind::Psu));
                assert_eq!(pkernel.partitions(), parts);
                let mut flat = BatchLiState::new(&p, LANES);
                let mut part = BatchLiState::new_partitioned(&p, LANES, &pp);
                assert_eq!(part.partitions(), parts);
                for cycle in 0..60u64 {
                    for lane in 0..LANES {
                        let x = cycle.wrapping_mul(0x9e37_79b9) ^ (lane as u64) << 17;
                        for idx in 0..p.input_slots.len() {
                            flat.set_input(idx, lane, x.rotate_left(idx as u32));
                            part.set_input(idx, lane, x.rotate_left(idx as u32));
                        }
                    }
                    kernel.step(&mut flat);
                    pkernel.step(&mut part);
                    for lane in 0..LANES {
                        for s in 0..p.num_slots as u32 {
                            assert_eq!(
                                part.slot(s, lane),
                                flat.slot(s, lane),
                                "parts={parts} slot {s} lane {lane} cycle {cycle}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn partitioned_parallel_run_matches_partitioned_sequential() {
        let p = plan_of(&wide_design());
        const LANES: usize = 8;
        const CYCLES: u64 = 40;
        let pp = PartitionedPlan::new(&p, 4);
        let kernel = BatchKernel::compile_partitioned(&pp, KernelConfig::new(KernelKind::Psu));
        let drive = |poker: &mut LanePoker<'_>, cycle: u64| {
            for lane in 0..LANES {
                poker.set_input(0, lane, cycle.wrapping_mul(0x5bd1) ^ lane as u64);
            }
        };
        let mut seq = BatchLiState::new_partitioned(&p, LANES, &pp);
        kernel.run_with_stimulus(&mut seq, CYCLES, 1, |c, poker| drive(poker, c));
        for threads in [2, 3, 4, 8] {
            let mut par = BatchLiState::new_partitioned(&p, LANES, &pp);
            kernel.run_with_stimulus(&mut par, CYCLES, threads, |c, poker| drive(poker, c));
            assert_eq!(par.cycle(), seq.cycle());
            for lane in 0..LANES {
                for s in 0..p.num_slots as u32 {
                    assert_eq!(
                        par.slot(s, lane),
                        seq.slot(s, lane),
                        "threads={threads} slot {s} lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn partitioned_lane_window_freeze_and_recycle_matches_flat() {
        let p = plan_of(DESIGN);
        const LANES: usize = 4;
        let pp = PartitionedPlan::new(&p, 2);
        let kernel = BatchKernel::compile(&p, KernelConfig::new(KernelKind::Psu));
        let pkernel = BatchKernel::compile_partitioned(&pp, KernelConfig::new(KernelKind::Psu));
        let mut flat = BatchLiState::new(&p, LANES);
        let mut part = BatchLiState::new_partitioned(&p, LANES, &pp);
        let drive = |st: &mut BatchLiState, c: u64| {
            for lane in 0..st.lanes() {
                st.set_input(0, lane, c.wrapping_mul(31) ^ lane as u64);
                st.set_input(1, lane, (c ^ lane as u64) & 1);
            }
        };
        for c in 0..10 {
            drive(&mut flat, c);
            drive(&mut part, c);
            kernel.step(&mut flat);
            pkernel.step(&mut part);
        }
        // Freeze the tail lane, keep stepping the partial window.
        flat.set_live(3);
        part.set_live(3);
        for c in 10..20 {
            flat.set_input_live(0, c * 7);
            part.set_input_live(0, c * 7);
            kernel.step(&mut flat);
            pkernel.step(&mut part);
        }
        // Recycle lane 1 (swap + per-column power-on), then run on.
        flat.swap_lanes(1, 2);
        part.swap_lanes(1, 2);
        flat.reset_lane(1);
        part.reset_lane(1);
        for c in 20..30 {
            drive(&mut flat, c);
            drive(&mut part, c);
            kernel.step(&mut flat);
            pkernel.step(&mut part);
        }
        for lane in 0..LANES {
            for s in 0..p.num_slots as u32 {
                assert_eq!(
                    part.slot(s, lane),
                    flat.slot(s, lane),
                    "slot {s} lane {lane}"
                );
            }
        }
    }
}
