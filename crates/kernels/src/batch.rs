//! The batched, layer-parallel execution engine.
//!
//! One compiled design, `B` independent stimulus lanes, `T` worker
//! threads. The `LI` slot array is widened to `B` lanes per slot in
//! slot-major layout (slot `s` occupies `li[s * B .. (s + 1) * B]`), the
//! layer walk runs lane-wise over each operation, and the operations
//! *within* one layer are split across threads. The layer barrier that
//! levelization guarantees (operands always come from strictly earlier
//! layers, and each operation owns its output slot) is preserved by a
//! spin barrier between layers, which makes the parallel execution
//! bit-identical to the sequential one — the safety and determinism
//! argument is exactly the paper's §4.2 levelization invariant.
//!
//! Since the kernel-compilation stage landed, the default layer walk is
//! over [`CompiledLayer`] slices — each operation pre-lowered by
//! `rteaal_dfg::lane_kernel` into a specialized, autovectorizable lane
//! kernel with dispatch, operand offsets, and canonicalization resolved
//! at [`BatchKernel::compile`] time. The interpreted
//! [`OpInst::eval_lanes`] walk is retained behind
//! [`BatchEngine::Interpreted`] as the differential-testing golden
//! model. Both walks evaluate only the *active* lane window of
//! [`BatchLiState`], which lane-liveness early exit (driven by
//! `rteaal-core`) shrinks as lanes finish their workloads.
//!
//! Worker threads are spawned once per [`BatchKernel::run_parallel`] /
//! [`BatchKernel::run_with_stimulus`] call and live for the whole span of
//! cycles, so the per-cycle cost is the barriers, not thread creation.
//!
//! The traversal order honors the kernel configuration: swizzled kinds
//! (NU/PSU/IU) regroup each layer's operations by opcode — the `[I, N,
//! S]` loop order of Algorithm 4 — which keeps the dispatch branch
//! per-group stable; the remaining kinds keep plan order. Within-layer
//! reordering is sound for the same reason the parallelism is.

use crate::config::KernelConfig;
use rteaal_dfg::batch::init_lanes;
use rteaal_dfg::lane_kernel::{compile_layer, BatchEngine, CompiledLayer, LaneWindow};
use rteaal_dfg::op::canonicalize;
use rteaal_dfg::plan::split_commits;
use rteaal_dfg::{OpInst, SimPlan};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The mutable batched simulation state: `B` lanes per `LI` slot, of
/// which the `live` prefix is evaluated (lane-liveness early exit swaps
/// finished lanes past the prefix and shrinks it).
#[derive(Debug, Clone)]
pub struct BatchLiState {
    li: Vec<u64>,
    lanes: usize,
    live: usize,
    init: Vec<u64>,
    input_slots: Vec<u32>,
    input_types: Vec<(u8, bool)>,
    output_slots: Vec<(String, u32)>,
    /// Alias-free register commits, copied row-to-row without staging.
    commit_direct: Vec<(u32, u32)>,
    /// Overlapping register commits, staged through `commit_buf`.
    commit_staged: Vec<(u32, u32)>,
    commit_buf: Vec<u64>,
    cycle: u64,
}

impl BatchLiState {
    /// Initializes `lanes` lanes from a plan, every lane at the power-on
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(plan: &SimPlan, lanes: usize) -> Self {
        assert!(lanes > 0, "batch needs at least one lane");
        let li = init_lanes(plan, lanes);
        let (commit_direct, commit_staged) = split_commits(&plan.commits);
        BatchLiState {
            init: li.clone(),
            li,
            lanes,
            live: lanes,
            input_slots: plan.input_slots.clone(),
            input_types: plan.input_types.clone(),
            output_slots: plan.output_slots.clone(),
            commit_buf: vec![0; commit_staged.len() * lanes],
            commit_direct,
            commit_staged,
            cycle: 0,
        }
    }

    /// Number of stimulus lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of lanes still being evaluated (the active prefix).
    pub fn live(&self) -> usize {
        self.live
    }

    /// Shrinks (or restores) the evaluated lane prefix. Lanes at or past
    /// `live` are frozen: layer evaluation and register commit skip them.
    ///
    /// # Panics
    ///
    /// Panics if `live > lanes`.
    pub fn set_live(&mut self, live: usize) {
        assert!(
            live <= self.lanes,
            "live {live} exceeds {} lanes",
            self.lanes
        );
        self.live = live;
    }

    /// The active evaluation window.
    pub fn window(&self) -> LaneWindow {
        LaneWindow {
            stride: self.lanes,
            active: self.live,
        }
    }

    /// Swaps two lane columns across every slot row (lane compaction:
    /// a finished lane is swapped past the live prefix).
    pub fn swap_lanes(&mut self, a: usize, b: usize) {
        assert!(a < self.lanes && b < self.lanes, "lane out of range");
        if a == b {
            return;
        }
        let lanes = self.lanes;
        for s0 in (0..self.li.len()).step_by(lanes) {
            self.li.swap(s0 + a, s0 + b);
        }
    }

    /// Number of input ports.
    pub fn num_inputs(&self) -> usize {
        self.input_slots.len()
    }

    /// Resets every lane to the power-on state and revives all lanes.
    pub fn reset(&mut self) {
        self.li.copy_from_slice(&self.init);
        self.live = self.lanes;
        self.cycle = 0;
    }

    /// Resets one physical lane column to the power-on state — register
    /// init values, constants, zeroed inputs — without touching any
    /// other lane, the live window, or the cycle counter.
    ///
    /// This is the enabling primitive for lane recycling: call it only
    /// between cycles (never inside [`BatchKernel::run_parallel`] /
    /// [`BatchKernel::run_with_stimulus`], whose workers share the `LI`
    /// array for the whole span of cycles), then drive fresh inputs and
    /// step. It does not change the lane's liveness — the caller is
    /// expected to have swapped the column back into the live window
    /// first (see `rteaal_core::BatchSimulation::reset_lane`).
    ///
    /// # Panics
    ///
    /// Panics if `phys` is out of range.
    pub fn reset_lane(&mut self, phys: usize) {
        assert!(phys < self.lanes, "lane {phys} out of range");
        for s0 in (0..self.li.len()).step_by(self.lanes) {
            self.li[s0 + phys] = self.init[s0 + phys];
        }
    }

    /// Drives input port `idx` on one lane (canonicalized to the port
    /// type).
    pub fn set_input(&mut self, idx: usize, lane: usize, value: u64) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let (w, signed) = self.input_types[idx];
        self.li[self.input_slots[idx] as usize * self.lanes + lane] =
            canonicalize(value, w as u32, signed);
    }

    /// Drives input port `idx` identically on every lane: canonicalizes
    /// once and fills the lane row.
    pub fn set_input_all(&mut self, idx: usize, value: u64) {
        let (w, signed) = self.input_types[idx];
        let v = canonicalize(value, w as u32, signed);
        let s0 = self.input_slots[idx] as usize * self.lanes;
        self.li[s0..s0 + self.lanes].fill(v);
    }

    /// Drives input port `idx` identically on every *live* lane; frozen
    /// lanes keep the input they halted with.
    pub fn set_input_live(&mut self, idx: usize, value: u64) {
        let (w, signed) = self.input_types[idx];
        let v = canonicalize(value, w as u32, signed);
        let s0 = self.input_slots[idx] as usize * self.lanes;
        self.li[s0..s0 + self.live].fill(v);
    }

    /// Output value of one lane, by port index.
    pub fn output(&self, idx: usize, lane: usize) -> u64 {
        assert!(lane < self.lanes, "lane {lane} out of range");
        self.li[self.output_slots[idx].1 as usize * self.lanes + lane]
    }

    /// Output value of one lane, by port name.
    pub fn output_by_name(&self, name: &str, lane: usize) -> Option<u64> {
        assert!(lane < self.lanes, "lane {lane} out of range");
        self.output_slots
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| self.li[*s as usize * self.lanes + lane])
    }

    /// Reads an arbitrary slot on one lane (probe / waveform path).
    pub fn slot(&self, s: u32, lane: usize) -> u64 {
        assert!(lane < self.lanes, "lane {lane} out of range");
        self.li[s as usize * self.lanes + lane]
    }

    /// Writes a slot on one lane (DMI poke).
    pub fn poke_slot(&mut self, s: u32, lane: usize, value: u64) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        self.li[s as usize * self.lanes + lane] = value;
    }

    /// Cycles completed.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Lane-wise register commit over the active window (the final
    /// `LI_{i+1}` Einsum of Cascade 1): staged sources first, direct
    /// alias-free copies, then the staged writes. Frozen lanes keep their
    /// state.
    fn commit_lanes(&mut self) {
        let (lanes, n) = (self.lanes, self.live);
        for (k, &(_, src)) in self.commit_staged.iter().enumerate() {
            let s0 = src as usize * lanes;
            self.commit_buf[k * lanes..k * lanes + n].copy_from_slice(&self.li[s0..s0 + n]);
        }
        for &(dst, src) in &self.commit_direct {
            let (d0, s0) = (dst as usize * lanes, src as usize * lanes);
            self.li.copy_within(s0..s0 + n, d0);
        }
        for (k, &(dst, _)) in self.commit_staged.iter().enumerate() {
            let d0 = dst as usize * lanes;
            self.li[d0..d0 + n].copy_from_slice(&self.commit_buf[k * lanes..k * lanes + n]);
        }
        self.cycle += 1;
    }
}

/// A raw `LI` pointer sharable across the layer-parallel scope.
#[derive(Clone, Copy)]
struct SharedLi(*mut u64);

// Safety: workers only touch disjoint rows between barriers (see
// `CompiledOp::eval_lanes_ptr`); the pointer itself is plain data.
unsafe impl Send for SharedLi {}
unsafe impl Sync for SharedLi {}

/// A sense-reversing spin barrier.
///
/// The layer barrier fires `layers × cycles` times per run, so its
/// latency *is* the parallelization overhead; `std::sync::Barrier`'s
/// mutex+condvar rendezvous costs ~10µs, which dwarfs the work of a
/// typical layer. Spinning (with a yield fallback for oversubscribed
/// hosts) brings the crossing down to the cache-coherence cost.
struct SpinBarrier {
    arrived: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
    /// Spin iterations before falling back to `yield_now`. Zero when the
    /// host has fewer cores than barrier participants: spinning there
    /// steals the CPU the late arrivers need.
    spin_limit: u32,
}

impl SpinBarrier {
    fn new(total: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        let spin_limit = if total <= cores { 1 << 14 } else { 0 };
        SpinBarrier {
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
            spin_limit,
        }
    }

    /// Blocks until all `total` threads have arrived.
    ///
    /// Each arriver's prior writes are published through the release
    /// sequence on `arrived`; the last arriver flips `generation` with a
    /// release store, and every waiter's acquire load of it therefore
    /// observes all pre-barrier writes of all threads.
    #[inline]
    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if spins < self.spin_limit {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// One entry of the layer-parallel execution schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    /// A layer wide enough to split across workers.
    Parallel(usize),
    /// A run `[from, to)` of narrow layers worker 0 executes alone —
    /// splitting them would cost more in barrier crossings than the
    /// division of work saves, and merging adjacent ones removes their
    /// interior barriers entirely.
    Serial(usize, usize),
}

/// Minimum op×lane work units in a layer before splitting it pays.
const PAR_MIN_WORK: usize = 1024;

/// Builds the segment schedule for a given lane count.
fn schedule(layers: &[Vec<OpInst>], lanes: usize) -> Vec<Segment> {
    let mut segments: Vec<Segment> = Vec::with_capacity(layers.len());
    for (i, layer) in layers.iter().enumerate() {
        if layer.len() * lanes >= PAR_MIN_WORK {
            segments.push(Segment::Parallel(i));
        } else if let Some(Segment::Serial(_, to)) = segments.last_mut() {
            *to = i + 1;
        } else {
            segments.push(Segment::Serial(i, i + 1));
        }
    }
    segments
}

/// Per-lane input driver handed to the stimulus callback of
/// [`BatchKernel::run_with_stimulus`].
pub struct LanePoker<'a> {
    li: SharedLi,
    lanes: usize,
    input_slots: &'a [u32],
    input_types: &'a [(u8, bool)],
}

impl LanePoker<'_> {
    /// Number of stimulus lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of input ports.
    pub fn num_inputs(&self) -> usize {
        self.input_slots.len()
    }

    /// Drives input port `idx` on one lane (canonicalized to the port
    /// type).
    pub fn set_input(&mut self, idx: usize, lane: usize, value: u64) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let (w, signed) = self.input_types[idx];
        // Safety: input slots are source rows no layer op ever writes,
        // and the callback runs in the single-threaded window between the
        // commit barrier and the next layer-0 barrier.
        unsafe {
            *self
                .li
                .0
                .add(self.input_slots[idx] as usize * self.lanes + lane) =
                canonicalize(value, w as u32, signed);
        }
    }
}

/// The batched, layer-parallel kernel: a layer-structured op program,
/// its kernel-compiled form, and the traversal the kernel configuration
/// asks for.
#[derive(Debug, Clone)]
pub struct BatchKernel {
    config: KernelConfig,
    engine: BatchEngine,
    /// Operations per layer, in execution order (the interpreted form,
    /// also the input of the schedule builder).
    layers: Vec<Vec<OpInst>>,
    /// Kernel-compiled layers, same order (compiled engine only).
    compiled: Vec<CompiledLayer>,
}

impl BatchKernel {
    /// Compiles a plan into a batched kernel under a configuration,
    /// lowering every operation into a specialized lane kernel.
    ///
    /// Swizzled kinds (NU/PSU/IU) regroup each layer by opcode (`[I, N,
    /// S]` order); other kinds keep coordinate-assignment order. Both are
    /// bit-identical — within-layer operations are independent.
    pub fn compile(plan: &SimPlan, config: KernelConfig) -> Self {
        Self::compile_with_engine(plan, config, BatchEngine::Compiled)
    }

    /// Compiles a plan with an explicit executor choice
    /// ([`BatchEngine::Interpreted`] keeps the per-lane `eval_raw`
    /// dispatch — the golden model, and the baseline of the
    /// interpreted-vs-compiled benchmark axis).
    pub fn compile_with_engine(plan: &SimPlan, config: KernelConfig, engine: BatchEngine) -> Self {
        let mut layers = plan.layers.clone();
        if config.kind.is_swizzled() {
            for layer in &mut layers {
                layer.sort_by_key(|op| op.n);
            }
        }
        let compiled = match engine {
            BatchEngine::Compiled => layers.iter().map(|l| compile_layer(l)).collect(),
            BatchEngine::Interpreted => Vec::new(),
        };
        BatchKernel {
            config,
            engine,
            layers,
            compiled,
        }
    }

    /// The configuration this kernel was compiled under.
    pub fn config(&self) -> KernelConfig {
        self.config
    }

    /// The executor this kernel walks its layers with.
    pub fn engine(&self) -> BatchEngine {
        self.engine
    }

    /// Total operations per simulated cycle (per lane).
    pub fn ops_per_cycle(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// Evaluates one layer over a window, single-threaded.
    #[inline]
    fn eval_layer(&self, i: usize, li: &mut [u64], w: LaneWindow, buf: &mut Vec<u64>) {
        match self.engine {
            BatchEngine::Compiled => {
                for op in &self.compiled[i] {
                    op.eval_lanes(li, w, buf);
                }
            }
            BatchEngine::Interpreted => {
                for op in &self.layers[i] {
                    op.eval_lanes(li, w, buf);
                }
            }
        }
    }

    /// Evaluates a worker's chunk of one layer through the shared
    /// pointer.
    ///
    /// # Safety
    ///
    /// As `CompiledOp::eval_lanes_ptr`: the layer barrier must seal
    /// operand rows, and `(worker, threads)` chunking must give this
    /// caller exclusive ownership of the chunk's output rows.
    #[inline]
    unsafe fn eval_layer_chunk(
        &self,
        i: usize,
        li: SharedLi,
        w: LaneWindow,
        worker: usize,
        threads: usize,
        buf: &mut Vec<u64>,
    ) {
        let (lo, hi) = chunk(self.layers[i].len(), worker, threads);
        match self.engine {
            BatchEngine::Compiled => {
                for op in &self.compiled[i][lo..hi] {
                    op.eval_lanes_ptr(li.0, w, buf);
                }
            }
            BatchEngine::Interpreted => {
                for op in &self.layers[i][lo..hi] {
                    op.eval_lanes_ptr(li.0, w, buf);
                }
            }
        }
    }

    /// One cycle on the active lanes, single-threaded.
    pub fn step(&self, st: &mut BatchLiState) {
        let mut buf = Vec::with_capacity(8);
        let w = st.window();
        for i in 0..self.layers.len() {
            self.eval_layer(i, &mut st.li, w, &mut buf);
        }
        st.commit_lanes();
    }

    /// Evaluates every combinational layer over the active lanes WITHOUT
    /// committing registers or advancing the cycle counter: after this,
    /// every wire slot (outputs, probes, halt conditions) reflects the
    /// current registers and inputs. Idempotent, and invisible to a
    /// subsequent [`step`](Self::step), which re-evaluates the same
    /// layers from the same sources — the hook that lets a scheduler
    /// observe a halt signal that is combinationally true the moment a
    /// testbench is admitted, before spending a cycle on it.
    pub fn eval_comb(&self, st: &mut BatchLiState) {
        let mut buf = Vec::with_capacity(8);
        let w = st.window();
        for i in 0..self.layers.len() {
            self.eval_layer(i, &mut st.li, w, &mut buf);
        }
    }

    /// `cycles` cycles on the active lanes, single-threaded.
    pub fn run(&self, st: &mut BatchLiState, cycles: u64) {
        for _ in 0..cycles {
            self.step(st);
        }
    }

    /// `cycles` cycles with the ops of each layer split across `threads`
    /// workers (layer barrier preserved). Inputs keep whatever values
    /// they currently hold.
    pub fn run_parallel(&self, st: &mut BatchLiState, cycles: u64, threads: usize) {
        self.run_with_stimulus(st, cycles, threads, |_, _| {});
    }

    /// `cycles` cycles across `threads` workers, invoking `stimulus`
    /// before each cycle (in the single-threaded window after the
    /// previous commit) so every lane can be driven independently.
    pub fn run_with_stimulus(
        &self,
        st: &mut BatchLiState,
        cycles: u64,
        threads: usize,
        mut stimulus: impl FnMut(u64, &mut LanePoker<'_>),
    ) {
        let start_cycle = st.cycle;
        let threads = threads.max(1);
        if threads == 1 {
            for c in 0..cycles {
                let mut poker = LanePoker {
                    li: SharedLi(st.li.as_mut_ptr()),
                    lanes: st.lanes,
                    input_slots: &st.input_slots,
                    input_types: &st.input_types,
                };
                stimulus(start_cycle + c, &mut poker);
                self.step(st);
            }
            return;
        }
        let w = st.window();
        let shared = SharedLi(st.li.as_mut_ptr());
        // One barrier rendezvous per schedule segment plus one around the
        // commit/stimulus window; worker 0 (the calling thread) owns the
        // single-threaded windows and executes the serial segments.
        let segments = schedule(&self.layers, st.lanes);
        let barrier = SpinBarrier::new(threads);
        std::thread::scope(|scope| {
            for worker in 1..threads {
                let barrier = &barrier;
                let segments = &segments;
                let kernel = &*self;
                scope.spawn(move || {
                    // Capture the whole `Send` wrapper, not its raw field
                    // (edition-2021 closures capture disjoint fields).
                    let shared = shared;
                    let mut buf = Vec::with_capacity(8);
                    for _ in 0..cycles {
                        barrier.wait(); // stimulus window closed
                        for segment in segments {
                            if let Segment::Parallel(i) = *segment {
                                // Safety: disjoint output rows within the
                                // layer; operand rows sealed by the
                                // previous barrier.
                                unsafe {
                                    kernel.eval_layer_chunk(i, shared, w, worker, threads, &mut buf)
                                };
                            }
                            // Serial segments belong to worker 0.
                            barrier.wait();
                        }
                        // Worker 0 commits and applies stimulus next.
                    }
                });
            }
            let mut buf = Vec::with_capacity(8);
            for c in 0..cycles {
                let mut poker = LanePoker {
                    li: shared,
                    lanes: st.lanes,
                    input_slots: &st.input_slots,
                    input_types: &st.input_types,
                };
                stimulus(start_cycle + c, &mut poker);
                barrier.wait(); // open the compute phase
                for segment in &segments {
                    match *segment {
                        Segment::Parallel(i) => {
                            // Safety: as above.
                            unsafe { self.eval_layer_chunk(i, shared, w, 0, threads, &mut buf) };
                        }
                        Segment::Serial(from, to) => {
                            for i in from..to {
                                // Safety: workers never touch serial
                                // layers; operand rows are sealed.
                                unsafe { self.eval_layer_chunk(i, shared, w, 0, 1, &mut buf) };
                            }
                        }
                    }
                    barrier.wait();
                }
                // Single-threaded window: every worker is parked at the
                // next cycle's opening barrier.
                commit_shared(
                    shared,
                    w,
                    &st.commit_direct,
                    &st.commit_staged,
                    &mut st.commit_buf,
                );
            }
        });
        st.cycle += cycles;
    }
}

/// The contiguous op range worker `w` of `t` owns in a layer of `n` ops.
#[inline]
fn chunk(n: usize, w: usize, t: usize) -> (usize, usize) {
    (n * w / t, n * (w + 1) / t)
}

/// Lane-wise commit over the active window through the shared pointer
/// (worker 0's single-threaded window): staged sources, direct copies,
/// staged writes — same order and safety argument as
/// `BatchLiState::commit_lanes`.
fn commit_shared(
    li: SharedLi,
    w: LaneWindow,
    direct: &[(u32, u32)],
    staged: &[(u32, u32)],
    buf: &mut [u64],
) {
    let (lanes, n) = (w.stride, w.active);
    for (k, &(_, src)) in staged.iter().enumerate() {
        for lane in 0..n {
            // Safety: single-threaded window; rows are in bounds.
            buf[k * lanes + lane] = unsafe { *li.0.add(src as usize * lanes + lane) };
        }
    }
    for &(dst, src) in direct {
        for lane in 0..n {
            // Safety: as above; dst is outside the commit source set.
            unsafe {
                *li.0.add(dst as usize * lanes + lane) = *li.0.add(src as usize * lanes + lane);
            }
        }
    }
    for (k, &(dst, _)) in staged.iter().enumerate() {
        for lane in 0..n {
            // Safety: as above.
            unsafe { *li.0.add(dst as usize * lanes + lane) = buf[k * lanes + lane] };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KernelConfig, KernelKind, ALL_KERNELS};
    use rand::{Rng, SeedableRng};
    use rteaal_dfg::plan::{plan, PlanSim};
    use rteaal_dfg::BatchPlanSim;
    use rteaal_firrtl::{lower::lower_typed, parser::parse};

    const DESIGN: &str = "\
circuit D :
  module D :
    input clock : Clock
    input x : UInt<16>
    input sel : UInt<1>
    output out : UInt<16>
    output flag : UInt<1>
    reg a : UInt<16>, clock
    reg b : UInt<16>, clock
    node s = tail(add(a, x), 1)
    node t = xor(b, cat(bits(x, 7, 0), bits(x, 15, 8)))
    a <= mux(sel, s, t)
    b <= tail(sub(a, x), 1)
    out <= a
    flag <= orr(b)
";

    fn plan_of(src: &str) -> SimPlan {
        plan(&rteaal_dfg::build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap())
    }

    /// A design wide enough that every worker gets real work per layer.
    fn wide_design() -> String {
        let mut src = String::from(
            "\
circuit Wide :
  module Wide :
    input clock : Clock
    input x : UInt<32>
    output out : UInt<32>
",
        );
        for i in 0..120 {
            src.push_str(&format!("    reg r{i} : UInt<32>, clock\n"));
        }
        src.push_str("    r0 <= tail(add(r119, x), 1)\n");
        for i in 1..120 {
            let op = ["xor", "and", "or", "add"][i % 4];
            if op == "add" {
                src.push_str(&format!("    r{i} <= tail(add(r{}, x), 1)\n", i - 1));
            } else {
                src.push_str(&format!("    r{i} <= {op}(r{}, x)\n", i - 1));
            }
        }
        src.push_str("    out <= r119\n");
        src
    }

    #[test]
    fn every_kind_and_engine_matches_the_interpreted_golden_model() {
        let p = plan_of(DESIGN);
        const LANES: usize = 5;
        for kind in ALL_KERNELS {
            for engine in [BatchEngine::Compiled, BatchEngine::Interpreted] {
                let kernel = BatchKernel::compile_with_engine(&p, KernelConfig::new(kind), engine);
                assert_eq!(kernel.engine(), engine);
                let mut st = BatchLiState::new(&p, LANES);
                let mut golden = BatchPlanSim::interpreted(&p, LANES);
                let mut rng = rand::rngs::StdRng::seed_from_u64(kind as u64 + 31);
                for cycle in 0..100 {
                    for lane in 0..LANES {
                        let x: u64 = rng.gen();
                        let sel: u64 = rng.gen();
                        st.set_input(0, lane, x);
                        st.set_input(1, lane, sel);
                        golden.set_input(0, lane, x);
                        golden.set_input(1, lane, sel);
                    }
                    kernel.step(&mut st);
                    golden.step();
                    for lane in 0..LANES {
                        for idx in 0..2 {
                            assert_eq!(
                                st.output(idx, lane),
                                golden.output(idx, lane),
                                "{kind:?}/{engine:?} lane {lane} output {idx} @ {cycle}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        let p = plan_of(&wide_design());
        const LANES: usize = 8;
        const CYCLES: u64 = 50;
        let kernel = BatchKernel::compile(&p, KernelConfig::new(KernelKind::Psu));
        let drive = |poker: &mut LanePoker<'_>, cycle: u64| {
            for lane in 0..LANES {
                poker.set_input(0, lane, cycle.wrapping_mul(0x9e37) ^ lane as u64);
            }
        };
        let mut seq = BatchLiState::new(&p, LANES);
        kernel.run_with_stimulus(&mut seq, CYCLES, 1, |c, poker| drive(poker, c));
        for threads in [2, 3, 4, 8] {
            let mut par = BatchLiState::new(&p, LANES);
            kernel.run_with_stimulus(&mut par, CYCLES, threads, |c, poker| drive(poker, c));
            assert_eq!(par.cycle(), seq.cycle());
            for lane in 0..LANES {
                for s in 0..p.num_slots as u32 {
                    assert_eq!(
                        par.slot(s, lane),
                        seq.slot(s, lane),
                        "threads={threads} slot {s} lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_lanes_match_independent_single_lane_runs() {
        let p = plan_of(DESIGN);
        const LANES: usize = 6;
        const CYCLES: u64 = 80;
        let kernel = BatchKernel::compile(&p, KernelConfig::new(KernelKind::Ti));
        let stim = |lane: usize, cycle: u64| {
            (
                cycle.wrapping_mul(31) ^ (lane as u64).wrapping_mul(0x517c_c1b7_2722_0a95),
                (cycle ^ lane as u64) & 1,
            )
        };
        let mut batch = BatchLiState::new(&p, LANES);
        kernel.run_with_stimulus(&mut batch, CYCLES, 3, |c, poker| {
            for lane in 0..LANES {
                let (x, sel) = stim(lane, c);
                poker.set_input(0, lane, x);
                poker.set_input(1, lane, sel);
            }
        });
        for lane in 0..LANES {
            let mut single = PlanSim::new(&p);
            for c in 0..CYCLES {
                let (x, sel) = stim(lane, c);
                single.set_input(0, x);
                single.set_input(1, sel);
                single.step();
            }
            for idx in 0..2 {
                assert_eq!(batch.output(idx, lane), single.output(idx), "lane {lane}");
            }
        }
    }

    #[test]
    fn state_reset_and_pokes() {
        let p = plan_of(DESIGN);
        let kernel = BatchKernel::compile(&p, KernelConfig::new(KernelKind::Nu));
        let mut st = BatchLiState::new(&p, 3);
        assert_eq!(st.lanes(), 3);
        assert_eq!(st.num_inputs(), 2);
        st.set_input_all(0, 7);
        kernel.run(&mut st, 4);
        assert_eq!(st.cycle(), 4);
        assert!(st.output_by_name("out", 1).is_some());
        assert!(st.output_by_name("ghost", 0).is_none());
        st.reset();
        assert_eq!(st.cycle(), 0);
        st.poke_slot(0, 2, 42);
        assert_eq!(st.slot(0, 2), 42);
        assert_eq!(st.slot(0, 0), 0);
    }

    #[test]
    fn frozen_lanes_keep_their_state() {
        let p = plan_of(DESIGN);
        let kernel = BatchKernel::compile(&p, KernelConfig::new(KernelKind::Psu));
        let mut st = BatchLiState::new(&p, 4);
        st.set_input_all(0, 9);
        st.set_input_all(1, 1);
        kernel.run(&mut st, 3);
        let frozen: Vec<u64> = (0..p.num_slots as u32).map(|s| st.slot(s, 3)).collect();
        // Freeze lane 3, keep stepping the first three.
        st.set_live(3);
        assert_eq!(st.live(), 3);
        kernel.run(&mut st, 5);
        for (s, &v) in frozen.iter().enumerate() {
            assert_eq!(st.slot(s as u32, 3), v, "frozen lane mutated at slot {s}");
        }
        // Live lanes moved on (the accumulating register changed).
        assert_ne!(st.slot(p.commits[0].0, 0), frozen[p.commits[0].0 as usize]);
        // swap_lanes moves the frozen column; reset revives everything.
        st.swap_lanes(0, 3);
        assert_eq!(st.slot(p.commits[0].0, 0), frozen[p.commits[0].0 as usize]);
        st.reset();
        assert_eq!(st.live(), 4);
    }

    #[test]
    fn reset_lane_is_per_column_power_on() {
        let p = plan_of(DESIGN);
        let kernel = BatchKernel::compile(&p, KernelConfig::new(KernelKind::Psu));
        const LANES: usize = 4;
        let mut st = BatchLiState::new(&p, LANES);
        for lane in 0..LANES {
            st.set_input(0, lane, 0x1111 * (lane as u64 + 1));
            st.set_input(1, lane, 1);
        }
        kernel.run(&mut st, 6);
        let before: Vec<Vec<u64>> = (0..LANES)
            .map(|lane| (0..p.num_slots as u32).map(|s| st.slot(s, lane)).collect())
            .collect();
        st.reset_lane(1);
        let fresh = BatchLiState::new(&p, LANES);
        for s in 0..p.num_slots as u32 {
            assert_eq!(st.slot(s, 1), fresh.slot(s, 1), "slot {s} not power-on");
            for lane in [0usize, 2, 3] {
                assert_eq!(st.slot(s, lane), before[lane][s as usize], "lane {lane}");
            }
        }
        // Cycle counter and live window are untouched.
        assert_eq!(st.cycle(), 6);
        assert_eq!(st.live(), LANES);
        // The revived column replays a fresh run bit-for-bit.
        let mut replay = BatchLiState::new(&p, 1);
        for c in 0..10u64 {
            st.set_input(0, 1, c * 7 + 3);
            st.set_input(1, 1, c & 1);
            replay.set_input(0, 0, c * 7 + 3);
            replay.set_input(1, 0, c & 1);
            kernel.step(&mut st);
            kernel.step(&mut replay);
            for s in 0..p.num_slots as u32 {
                assert_eq!(st.slot(s, 1), replay.slot(s, 0), "slot {s} @ cycle {c}");
            }
        }
    }

    #[test]
    fn swizzled_kinds_group_by_opcode() {
        let p = plan_of(DESIGN);
        let swz = BatchKernel::compile(&p, KernelConfig::new(KernelKind::Psu));
        for layer in &swz.layers {
            for pair in layer.windows(2) {
                assert!(pair[0].n <= pair[1].n, "layer not grouped by opcode");
            }
        }
        assert_eq!(swz.ops_per_cycle(), p.total_ops());
        assert_eq!(swz.config().kind, KernelKind::Psu);
    }
}
