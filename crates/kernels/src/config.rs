//! Kernel configurations (paper §5.2 / §6.1).
//!
//! RTeAAL Sim's compiler takes a *kernel configuration* — loop order,
//! tensor format, and degree of unrolling — and produces one of seven
//! progressively more unrolled kernels. Each kernel includes all of its
//! predecessors' optimizations plus one new one:
//!
//! | kernel | adds | loop order | OIM format |
//! |--------|------|------------|------------|
//! | RU  | unroll one-hot `R` rank            | `[I,S,N,O,R]` | Fig 12b |
//! | OU  | unroll `O` rank                    | `[I,S,N,O,R]` | Fig 12b |
//! | NU  | swizzle `S`/`N`, unroll `N`        | `[I,N,S,O,R]` | Fig 12c |
//! | PSU | partially unroll `S` (8 / 24)      | `[I,N,S,O,R]` | Fig 12c |
//! | IU  | unroll `I`, skip empty `S` loops   | `[I,N,S,O,R]` | Fig 12c |
//! | SU  | fully unroll `S` (OIM into binary) | straight-line | embedded |
//! | TI  | tensor inlining (slots → "registers")| straight-line | embedded |

use serde::{Deserialize, Serialize};
use std::fmt;

/// The seven kernels, in unrolling order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// R-rank unrolling only (mostly rolled; the tensor-algebra extreme).
    Ru,
    /// + O-rank unrolling.
    Ou,
    /// + S/N swizzle and N-rank unrolling.
    Nu,
    /// + partial S-rank unrolling (8-wide ops, 24-wide writeback).
    Psu,
    /// + full I-rank unrolling (zero-iteration S loops eliminated).
    Iu,
    /// + full S-rank unrolling (OIM embedded in the instruction stream).
    Su,
    /// + tensor inlining (LI slots bound to virtual registers /
    ///   immediates; the straight-line extreme, like prior simulators).
    Ti,
}

/// All kernels in presentation order (x-axes of Figures 15/16, Tables 4–6).
pub const ALL_KERNELS: [KernelKind; 7] = [
    KernelKind::Ru,
    KernelKind::Ou,
    KernelKind::Nu,
    KernelKind::Psu,
    KernelKind::Iu,
    KernelKind::Su,
    KernelKind::Ti,
];

impl KernelKind {
    /// Upper-case label as the paper prints it.
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::Ru => "RU",
            KernelKind::Ou => "OU",
            KernelKind::Nu => "NU",
            KernelKind::Psu => "PSU",
            KernelKind::Iu => "IU",
            KernelKind::Su => "SU",
            KernelKind::Ti => "TI",
        }
    }

    /// Whether the kernel embeds the OIM in its instruction stream.
    pub fn is_unrolled(self) -> bool {
        matches!(self, KernelKind::Su | KernelKind::Ti)
    }

    /// Whether the kernel uses the S/N-swizzled format (Fig 12c).
    pub fn is_swizzled(self) -> bool {
        matches!(self, KernelKind::Nu | KernelKind::Psu | KernelKind::Iu)
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Compiler optimization analog: `Full` mirrors `clang -O3`, `None`
/// mirrors `clang -O0` (Figure 19). At `None` the generated kernel runs a
/// deliberately naive dispatch (no specialization, no forwarding) and the
/// compile path skips all optimization work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum OptLevel {
    /// `-O3` analog.
    #[default]
    Full,
    /// `-O0` analog.
    None,
}

/// A full kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Which kernel of the §5.2 sequence.
    pub kind: KernelKind,
    /// Compiler-optimization analog.
    pub opt: OptLevel,
    /// Partial-unroll factor for common-op S loops (paper: 8).
    pub psu_op_unroll: usize,
    /// Partial-unroll factor for the writeback S loop (paper: 24).
    pub psu_writeback_unroll: usize,
}

impl KernelConfig {
    /// The default configuration for a kernel kind (`-O3`, 8/24 unroll).
    pub fn new(kind: KernelKind) -> Self {
        KernelConfig {
            kind,
            opt: OptLevel::Full,
            psu_op_unroll: 8,
            psu_writeback_unroll: 24,
        }
    }

    /// Same kernel at the `-O0` analog.
    pub fn unoptimized(kind: KernelKind) -> Self {
        KernelConfig {
            opt: OptLevel::None,
            ..KernelConfig::new(kind)
        }
    }
}

impl fmt::Display for KernelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.opt {
            OptLevel::Full => write!(f, "{}", self.kind),
            OptLevel::None => write!(f, "{}-O0", self.kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_unroll_sequence() {
        for w in ALL_KERNELS.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(ALL_KERNELS[3].label(), "PSU");
    }

    #[test]
    fn classification() {
        assert!(!KernelKind::Ru.is_unrolled());
        assert!(KernelKind::Ti.is_unrolled());
        assert!(KernelKind::Psu.is_swizzled());
        assert!(!KernelKind::Ou.is_swizzled());
        assert!(!KernelKind::Su.is_swizzled()); // embedded, not traversed
    }

    #[test]
    fn config_defaults_match_paper() {
        let c = KernelConfig::new(KernelKind::Psu);
        assert_eq!(c.psu_op_unroll, 8);
        assert_eq!(c.psu_writeback_unroll, 24);
        assert_eq!(c.opt, OptLevel::Full);
        assert_eq!(c.to_string(), "PSU");
        assert_eq!(
            KernelConfig::unoptimized(KernelKind::Su).to_string(),
            "SU-O0"
        );
    }
}
