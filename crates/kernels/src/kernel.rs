//! The unified kernel facade: compile any of the seven configurations and
//! simulate with or without instrumentation.

use crate::config::{KernelConfig, KernelKind};
use crate::profile::{MemProbe, NoProbe};
use crate::rolled::RolledKernel;
use crate::state::LiState;
use crate::unrolled::UnrolledKernel;
use rteaal_dfg::SimPlan;
use rteaal_perfmodel::cache::MemSim;
use rteaal_perfmodel::topdown::ExecProfile;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// What compiling a kernel cost (Figure 15 / Table 7 inputs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CompileReport {
    /// Wall-clock seconds for kernel generation (excludes the shared
    /// front-end: parse / graph / plan).
    pub seconds: f64,
    /// Peak heap bytes during kernel generation (0 unless the counting
    /// allocator is installed; see `rteaal_perfmodel::memtrack`).
    pub peak_bytes: usize,
    /// Static code footprint (Table 4 analog).
    pub code_bytes: u64,
    /// OIM data resident in memory (0 for SU/TI — embedded in code).
    pub data_bytes: u64,
}

/// A compiled RTeAAL Sim kernel plus its simulation state.
#[derive(Debug, Clone)]
pub struct Kernel {
    config: KernelConfig,
    inner: Inner,
    state: LiState,
    report: CompileReport,
    /// Intrinsic branch-misprediction entropy of this kernel's dynamic
    /// branches (loop back-edges and a stable per-cycle dispatch pattern
    /// predict extremely well; the paper measures 0.12% for PSU).
    pub branch_entropy: f64,
}

#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // one kernel per design, never collections
enum Inner {
    Rolled(RolledKernel),
    Unrolled(UnrolledKernel),
}

impl Kernel {
    /// Compiles a plan under a kernel configuration, measuring the
    /// generation cost.
    pub fn compile(plan: &SimPlan, config: KernelConfig) -> Kernel {
        let t0 = Instant::now();
        let (inner, peak_bytes) = rteaal_perfmodel::memtrack::measure(|| {
            if config.kind.is_unrolled() {
                Inner::Unrolled(UnrolledKernel::compile(plan, config))
            } else {
                Inner::Rolled(RolledKernel::compile(plan, config))
            }
        });
        let seconds = t0.elapsed().as_secs_f64();
        let (code_bytes, data_bytes) = match &inner {
            Inner::Rolled(k) => (k.code_bytes(), k.data_bytes()),
            Inner::Unrolled(k) => (k.code_bytes(), k.data_bytes()),
        };
        let branch_entropy = match config.kind {
            // Dispatch on a per-cycle-stable opcode sequence plus loop
            // back-edges: highly predictable, but RU/OU's indirect jumps
            // retain a little entropy.
            KernelKind::Ru | KernelKind::Ou => 0.012,
            KernelKind::Nu | KernelKind::Psu | KernelKind::Iu => 0.0012,
            // Straight-line code barely branches at all.
            KernelKind::Su | KernelKind::Ti => 0.001,
        };
        Kernel {
            config,
            inner,
            state: LiState::new(plan),
            report: CompileReport {
                seconds,
                peak_bytes,
                code_bytes,
                data_bytes,
            },
            branch_entropy,
        }
    }

    /// The configuration this kernel was compiled under.
    pub fn config(&self) -> KernelConfig {
        self.config
    }

    /// The compile-cost report.
    pub fn compile_report(&self) -> CompileReport {
        self.report
    }

    /// Drives an input port for subsequent cycles.
    pub fn set_input(&mut self, idx: usize, value: u64) {
        self.state.set_input(idx, value);
    }

    /// Output value by port index.
    pub fn output(&self, idx: usize) -> u64 {
        self.state.output(idx)
    }

    /// Output value by port name.
    pub fn output_by_name(&self, name: &str) -> Option<u64> {
        self.state.output_by_name(name)
    }

    /// Reads a slot (probes / waveforms / DMI peek).
    pub fn slot(&self, s: u32) -> u64 {
        self.state.slot(s)
    }

    /// Writes a slot (DMI poke).
    pub fn poke_slot(&mut self, s: u32, value: u64) {
        self.state.poke_slot(s, value);
    }

    /// Cycles simulated.
    pub fn cycle(&self) -> u64 {
        self.state.cycle()
    }

    /// Resets registers to power-on values.
    pub fn reset(&mut self) {
        self.state.reset();
    }

    /// One cycle on the fast path.
    pub fn step(&mut self) {
        match &self.inner {
            Inner::Rolled(k) => k.step(&mut self.state, &mut NoProbe),
            Inner::Unrolled(k) => k.step(&mut self.state, &mut NoProbe),
        }
    }

    /// `n` cycles on the fast path.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// One cycle with full instrumentation into `mem`; counters accumulate
    /// into `profile`.
    pub fn step_profiled(&mut self, mem: &mut MemSim, profile: &mut ExecProfile) {
        let mut probe = MemProbe::new(mem);
        match &self.inner {
            Inner::Rolled(k) => k.step(&mut self.state, &mut probe),
            Inner::Unrolled(k) => k.step(&mut self.state, &mut probe),
        }
        profile.instructions += probe.counters.instructions;
        profile.branches += probe.counters.branches;
        profile.branch_entropy = self.branch_entropy;
        profile.mem = mem.stats();
    }

    /// Runs `n` instrumented cycles and returns the accumulated profile.
    pub fn run_profiled(&mut self, mem: &mut MemSim, n: u64) -> ExecProfile {
        let mut profile = ExecProfile::default();
        for _ in 0..n {
            self.step_profiled(mem, &mut profile);
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ALL_KERNELS;
    use rand::{Rng, SeedableRng};
    use rteaal_dfg::plan::{plan, PlanSim};
    use rteaal_firrtl::{lower::lower_typed, parser::parse};
    use rteaal_perfmodel::Machine;

    const DESIGN: &str = "\
circuit K :
  module K :
    input clock : Clock
    input x : UInt<32>
    input en : UInt<1>
    output out : UInt<32>
    reg acc : UInt<32>, clock
    reg cnt : UInt<8>, clock
    node nxt = tail(add(acc, x), 1)
    acc <= mux(en, nxt, acc)
    cnt <= tail(add(cnt, UInt<8>(1)), 1)
    out <= xor(acc, cat(cnt, bits(acc, 23, 0)))
";

    fn plan_of() -> SimPlan {
        plan(&rteaal_dfg::build(&lower_typed(&parse(DESIGN).unwrap()).unwrap()).unwrap())
    }

    #[test]
    fn all_seven_kernels_agree_with_golden() {
        let p = plan_of();
        let mut kernels: Vec<Kernel> = ALL_KERNELS
            .iter()
            .map(|&k| Kernel::compile(&p, KernelConfig::new(k)))
            .collect();
        let mut golden = PlanSim::new(&p);
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let x: u64 = rng.gen();
            let en: u64 = rng.gen();
            golden.set_input(0, x);
            golden.set_input(1, en);
            golden.step();
            for kernel in &mut kernels {
                kernel.set_input(0, x);
                kernel.set_input(1, en);
                kernel.step();
                assert_eq!(
                    kernel.output(0),
                    golden.output(0),
                    "{} diverged",
                    kernel.config()
                );
            }
        }
    }

    #[test]
    fn compile_reports_populated() {
        let p = plan_of();
        for &kind in &ALL_KERNELS {
            let k = Kernel::compile(&p, KernelConfig::new(kind));
            let r = k.compile_report();
            assert!(r.code_bytes > 0, "{kind:?}");
            if kind.is_unrolled() {
                assert_eq!(r.data_bytes, 0);
            } else {
                assert!(r.data_bytes > 0);
            }
        }
    }

    #[test]
    fn unrolled_kernels_shift_pressure_from_dcache_to_icache() {
        // Table 6's central phenomenon, on a design big enough to see it.
        let mut src = String::from(
            "\
circuit Big :
  module Big :
    input clock : Clock
    input x : UInt<32>
    output out : UInt<32>
",
        );
        for i in 0..400 {
            src.push_str(&format!("    reg r{i} : UInt<32>, clock\n"));
        }
        src.push_str("    r0 <= tail(add(r399, x), 1)\n");
        for i in 1..400 {
            src.push_str(&format!("    r{i} <= xor(r{}, x)\n", i - 1));
        }
        src.push_str("    out <= r399\n");
        let p = plan(&rteaal_dfg::build(&lower_typed(&parse(&src).unwrap()).unwrap()).unwrap());
        let machine = Machine::amd_ryzen(); // small caches show it fastest
        let run = |kind| {
            let mut k = Kernel::compile(&p, KernelConfig::new(kind));
            let mut mem = machine.mem_sim();
            k.run_profiled(&mut mem, 10)
        };
        let psu = run(KernelKind::Psu);
        let su = run(KernelKind::Su);
        // SU does far fewer data accesses (no OIM coordinate traversal) ...
        assert!(
            (su.mem.l1d.accesses as f64) < psu.mem.l1d.accesses as f64 * 0.75,
            "SU {} !<< PSU {}",
            su.mem.l1d.accesses,
            psu.mem.l1d.accesses
        );
        // ... but touches far more instruction bytes.
        assert!(
            su.mem.l1i.misses > 2 * psu.mem.l1i.misses,
            "SU {} !>> PSU {}",
            su.mem.l1i.misses,
            psu.mem.l1i.misses
        );
    }

    #[test]
    fn run_profiled_accumulates() {
        let p = plan_of();
        let mut k = Kernel::compile(&p, KernelConfig::new(KernelKind::Nu));
        let mut mem = Machine::intel_core().mem_sim();
        let p1 = k.run_profiled(&mut mem, 5);
        let mut mem2 = Machine::intel_core().mem_sim();
        let mut k2 = Kernel::compile(&p, KernelConfig::new(KernelKind::Nu));
        let p10 = k2.run_profiled(&mut mem2, 10);
        assert_eq!(p10.instructions, 2 * p1.instructions);
    }

    #[test]
    fn reset_and_poke_roundtrip() {
        let p = plan_of();
        let mut k = Kernel::compile(&p, KernelConfig::new(KernelKind::Ti));
        k.set_input(1, 1);
        k.set_input(0, 5);
        k.run(3);
        assert_eq!(k.cycle(), 3);
        k.reset();
        assert_eq!(k.cycle(), 0);
        k.poke_slot(0, 42); // register slots come first
        assert_eq!(k.slot(0), 42);
    }
}
