//! Reference cycle-level interpreter over the dataflow graph.
//!
//! This is the workspace's *ground truth*: it evaluates the graph directly
//! in topological order with a two-phase register commit (compute all next
//! states, then commit — exactly the `reg_next` discipline of paper
//! Figure 1). Every kernel, the Einsum golden model, and both baseline
//! simulators are differentially tested against it.

use crate::graph::{Graph, NodeId};
use crate::op::{canonicalize, eval_raw, DfgOp, OpClass};

/// A cycle-level simulator over a borrowed [`Graph`].
///
/// # Examples
///
/// ```
/// use rteaal_dfg::{build, interp::Interpreter};
/// use rteaal_firrtl::{parser::parse, lower::lower_typed};
///
/// let src = "\
/// circuit Acc :
///   module Acc :
///     input clock : Clock
///     input x : UInt<8>
///     output out : UInt<8>
///     reg acc : UInt<8>, clock
///     acc <= tail(add(acc, x), 1)
///     out <= acc
/// ";
/// let graph = build(&lower_typed(&parse(src)?)?)?;
/// let mut sim = Interpreter::new(&graph);
/// sim.set_input(0, 3);
/// sim.step();
/// sim.step();
/// assert_eq!(sim.output(0), 6); // out lags by a cycle: 0, 3, 6, ...
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Interpreter<'g> {
    graph: &'g Graph,
    /// Current value of every node, canonical form.
    values: Vec<u64>,
    /// Pending input values applied at the start of the next step.
    inputs: Vec<u64>,
    order: Vec<NodeId>,
    /// Scratch buffer for next-state values (two-phase commit).
    nexts: Vec<u64>,
    cycle: u64,
}

impl<'g> Interpreter<'g> {
    /// Creates an interpreter with registers at their power-on values and
    /// inputs at zero.
    pub fn new(graph: &'g Graph) -> Self {
        let mut values = vec![0u64; graph.len()];
        for reg in &graph.regs {
            let node = graph.node(reg.state);
            values[reg.state.index()] = canonicalize(reg.init, node.width, node.signed);
        }
        for (id, node) in graph.iter() {
            if node.op == DfgOp::Const {
                values[id.index()] = node.params[0];
            }
        }
        Interpreter {
            graph,
            values,
            inputs: vec![0; graph.inputs.len()],
            order: graph.topo_order(),
            nexts: vec![0; graph.regs.len()],
            cycle: 0,
        }
    }

    /// Sets the value driven onto input port `idx` (by port order) for
    /// subsequent cycles.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_input(&mut self, idx: usize, value: u64) {
        self.inputs[idx] = value;
    }

    /// Sets an input by port name. Returns `false` if no such input exists.
    pub fn set_input_by_name(&mut self, name: &str, value: u64) -> bool {
        for (idx, &id) in self.graph.inputs.iter().enumerate() {
            if self.graph.node(id).name.as_deref() == Some(name) {
                self.set_input(idx, value);
                return true;
            }
        }
        false
    }

    /// Advances the simulation by one clock cycle: applies inputs,
    /// evaluates all combinational logic, then commits register next
    /// states.
    pub fn step(&mut self) {
        for (idx, &id) in self.graph.inputs.iter().enumerate() {
            let node = self.graph.node(id);
            self.values[id.index()] = canonicalize(self.inputs[idx], node.width, node.signed);
        }
        let mut operand_buf: Vec<u64> = Vec::with_capacity(8);
        for &id in &self.order {
            let node = self.graph.node(id);
            debug_assert_ne!(node.op.class(), OpClass::Source);
            operand_buf.clear();
            operand_buf.extend(node.operands.iter().map(|o| self.values[o.index()]));
            let raw = eval_raw(node.op, &node.params, &operand_buf);
            self.values[id.index()] = canonicalize(raw, node.width, node.signed);
        }
        for (k, reg) in self.graph.regs.iter().enumerate() {
            let node = self.graph.node(reg.state);
            self.nexts[k] = canonicalize(self.values[reg.next.index()], node.width, node.signed);
        }
        for (k, reg) in self.graph.regs.iter().enumerate() {
            self.values[reg.state.index()] = self.nexts[k];
        }
        self.cycle += 1;
    }

    /// Runs `n` cycles with the current inputs.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// The value of output port `idx` (by port order) *as of the last
    /// evaluation* (combinational view after the most recent [`step`]).
    ///
    /// [`step`]: Interpreter::step
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn output(&self, idx: usize) -> u64 {
        let (_, id) = &self.graph.outputs[idx];
        self.values[id.index()]
    }

    /// Output value by port name.
    pub fn output_by_name(&self, name: &str) -> Option<u64> {
        self.graph
            .outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| self.values[id.index()])
    }

    /// Reads any node's current value (the XMR front door: internal signals
    /// remain addressable by hierarchical name).
    pub fn peek(&self, id: NodeId) -> u64 {
        self.values[id.index()]
    }

    /// Reads a named internal signal.
    pub fn peek_by_name(&self, name: &str) -> Option<u64> {
        self.graph.find_by_name(name).map(|id| self.peek(id))
    }

    /// Pokes a register's current state (the DMI write path).
    pub fn poke_reg(&mut self, reg_idx: usize, value: u64) {
        let reg = &self.graph.regs[reg_idx];
        let node = self.graph.node(reg.state);
        self.values[reg.state.index()] = canonicalize(value, node.width, node.signed);
    }

    /// Number of cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Snapshot of all register values, in register order.
    pub fn reg_values(&self) -> Vec<u64> {
        self.graph
            .regs
            .iter()
            .map(|r| self.values[r.state.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build;
    use rteaal_firrtl::{lower::lower_typed, parser::parse};

    fn graph_of(src: &str) -> Graph {
        build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn counter_counts() {
        let g = graph_of(
            "\
circuit C :
  module C :
    input clock : Clock
    input reset : UInt<1>
    output out : UInt<4>
    regreset r : UInt<4>, clock, reset, UInt<4>(0)
    r <= tail(add(r, UInt<4>(1)), 1)
    out <= r
",
        );
        let mut sim = Interpreter::new(&g);
        for expect in 0..20u64 {
            assert_eq!(sim.output_by_name("out"), Some(expect % 16));
            sim.step();
        }
        // Reset pulls it back to zero.
        sim.set_input_by_name("reset", 1);
        sim.step();
        assert_eq!(sim.output_by_name("out"), Some(0));
        assert_eq!(sim.cycle(), 21);
    }

    #[test]
    fn paper_figure_1_example() {
        // reg1 <= reg1 + reg2; reg2 <= (reg1+reg2) & (reg2-reg3);
        // reg3 <= reg2 - reg3  (8-bit wrapping, as in the paper's C++).
        let g = graph_of(
            "\
circuit F1 :
  module F1 :
    input clock : Clock
    output o1 : UInt<8>
    output o2 : UInt<8>
    output o3 : UInt<8>
    reg reg1 : UInt<8>, clock
    reg reg2 : UInt<8>, clock
    reg reg3 : UInt<8>, clock
    node sum = tail(add(reg1, reg2), 1)
    node diff = tail(sub(reg2, reg3), 1)
    reg1 <= sum
    reg2 <= and(sum, diff)
    reg3 <= diff
    o1 <= reg1
    o2 <= reg2
    o3 <= reg3
",
        );
        let mut sim = Interpreter::new(&g);
        // Seed registers with the paper's register inputs 1, 2, 4 and
        // cross-check against a direct software model.
        sim.poke_reg(0, 1);
        sim.poke_reg(1, 2);
        sim.poke_reg(2, 4);
        let (mut r1, mut r2, mut r3) = (1u8, 2u8, 4u8);
        for _ in 0..100 {
            sim.step();
            let sum = r1.wrapping_add(r2);
            let diff = r2.wrapping_sub(r3);
            (r1, r2, r3) = (sum, sum & diff, diff);
            assert_eq!(sim.peek_by_name("reg1"), Some(r1 as u64));
            assert_eq!(sim.peek_by_name("reg2"), Some(r2 as u64));
            assert_eq!(sim.peek_by_name("reg3"), Some(r3 as u64));
        }
    }

    #[test]
    fn two_phase_commit_reads_old_values() {
        // A swap: a <= b; b <= a must exchange, not duplicate.
        let g = graph_of(
            "\
circuit S :
  module S :
    input clock : Clock
    output oa : UInt<4>
    output ob : UInt<4>
    reg a : UInt<4>, clock
    reg b : UInt<4>, clock
    a <= b
    b <= a
    oa <= a
    ob <= b
",
        );
        let mut sim = Interpreter::new(&g);
        sim.poke_reg(0, 3);
        sim.poke_reg(1, 9);
        sim.step();
        assert_eq!(sim.output_by_name("oa"), Some(9));
        assert_eq!(sim.output_by_name("ob"), Some(3));
        sim.step();
        assert_eq!(sim.output_by_name("oa"), Some(3));
    }

    #[test]
    fn signed_datapath() {
        // `tail` yields UInt, so the SInt output needs an explicit asSInt.
        let g = graph_of(
            "\
circuit N :
  module N :
    input a : SInt<8>
    output out : SInt<8>
    out <= asSInt(tail(sub(SInt<8>(0), a), 1))
",
        );
        let mut sim = Interpreter::new(&g);
        sim.set_input(0, (-5i64) as u64);
        sim.step();
        assert_eq!(sim.output(0) as i64, 5);
        sim.set_input(0, 7);
        sim.step();
        assert_eq!(sim.output(0) as i64, -7);
    }

    #[test]
    fn memory_read_write_via_lowering() {
        let g = graph_of(
            "\
circuit M :
  module M :
    input clock : Clock
    input ra : UInt<2>
    input wa : UInt<2>
    input wd : UInt<8>
    input we : UInt<1>
    output rd : UInt<8>
    mem m : UInt<8>[4]
    m.raddr <= ra
    m.waddr <= wa
    m.wdata <= wd
    m.wen <= we
    rd <= m.rdata
",
        );
        let mut sim = Interpreter::new(&g);
        // Write 0xAB to cell 2.
        sim.set_input_by_name("wa", 2);
        sim.set_input_by_name("wd", 0xab);
        sim.set_input_by_name("we", 1);
        sim.step();
        sim.set_input_by_name("we", 0);
        sim.set_input_by_name("ra", 2);
        sim.step();
        assert_eq!(sim.output_by_name("rd"), Some(0xab));
        sim.set_input_by_name("ra", 1);
        sim.step();
        assert_eq!(sim.output_by_name("rd"), Some(0));
    }

    #[test]
    fn random_program_against_expression_oracle() {
        use rand::{Rng, SeedableRng};
        let g = graph_of(
            "\
circuit R :
  module R :
    input a : UInt<16>
    input b : UInt<16>
    output out : UInt<16>
    node s = tail(add(a, b), 1)
    node d = tail(sub(a, b), 1)
    node m = mux(gt(a, b), s, d)
    out <= xor(m, cat(bits(a, 7, 0), bits(b, 15, 8)))
",
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut sim = Interpreter::new(&g);
        for _ in 0..500 {
            let a: u64 = rng.gen_range(0..=0xffff);
            let b: u64 = rng.gen_range(0..=0xffff);
            sim.set_input(0, a);
            sim.set_input(1, b);
            sim.step();
            let s = (a + b) & 0xffff;
            let d = a.wrapping_sub(b) & 0xffff;
            let m = if a > b { s } else { d };
            let cat = ((a & 0xff) << 8) | ((b >> 8) & 0xff);
            assert_eq!(sim.output(0), m ^ cat);
        }
    }
}
