//! Error type for dataflow-graph construction.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, DfgError>;

/// Errors produced while building or transforming a dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfgError {
    /// A combinational cycle through wires/nodes (no register on the path).
    CombCycle(String),
    /// Reference to an undefined signal.
    Undefined(String),
    /// A width-inference failure bubbled up from the FIRRTL layer.
    Type(String),
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::CombCycle(name) => write!(f, "combinational cycle through {name}"),
            DfgError::Undefined(name) => write!(f, "undefined reference: {name}"),
            DfgError::Type(msg) => write!(f, "type error: {msg}"),
        }
    }
}

impl std::error::Error for DfgError {}

impl From<rteaal_firrtl::FirrtlError> for DfgError {
    fn from(err: rteaal_firrtl::FirrtlError) -> Self {
        DfgError::Type(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            DfgError::CombCycle("w".into()),
            DfgError::Undefined("x".into()),
            DfgError::Type("t".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
