//! Dataflow-graph construction from a flattened FIRRTL module.
//!
//! This is the "Dataflow Graph Construction" stage of the RTeAAL Sim
//! compiler (paper Figure 14). Expressions are resolved recursively with
//! memoization and combinational-cycle detection; FIRRTL's polymorphic
//! primitive ops are monomorphized into the [`DfgOp`] set; connect sites
//! insert [`DfgOp::Resize`] nodes only where widths actually narrow (the
//! canonical value form makes widening free).

use crate::error::{DfgError, Result};
use crate::graph::{Graph, NodeId, RegDef};
use crate::op::DfgOp;
use rteaal_firrtl::ast::Expr;
use rteaal_firrtl::lower::FlatModule;
use rteaal_firrtl::ops::PrimOp;
use rteaal_firrtl::ty::Type;
use std::collections::{HashMap, HashSet};

/// Builds the dataflow graph of a flat module.
///
/// # Errors
///
/// Returns [`DfgError::CombCycle`] if combinational logic forms a cycle and
/// [`DfgError::Undefined`] / [`DfgError::Type`] for malformed inputs
/// (which `lower_typed` should have rejected already).
pub fn build(flat: &FlatModule) -> Result<Graph> {
    let mut b = Builder {
        graph: Graph::new(flat.name.clone()),
        defs: HashMap::new(),
        resolved: HashMap::new(),
        visiting: HashSet::new(),
    };
    for (name, _, expr) in &flat.nodes {
        b.defs.insert(name.as_str(), expr);
    }
    for (name, _, expr) in &flat.outputs {
        b.defs.insert(name.as_str(), expr);
    }
    // Seed sources: inputs and register state nodes.
    for (name, ty) in &flat.inputs {
        let id = b
            .graph
            .add_source(DfgOp::Input, ty.width(), ty.is_signed(), name.clone());
        b.graph.inputs.push(id);
        b.resolved.insert(name.clone(), id);
    }
    for reg in &flat.regs {
        let id = b.graph.add_source(
            DfgOp::RegState,
            reg.ty.width(),
            reg.ty.is_signed(),
            reg.name.clone(),
        );
        b.resolved.insert(reg.name.clone(), id);
        // `next` is patched below once expressions are built.
        b.graph.regs.push(RegDef {
            state: id,
            next: id,
            init: reg.init,
            name: reg.name.clone(),
        });
    }
    // Register next-state expressions, coerced to the register type.
    for (idx, reg) in flat.regs.iter().enumerate() {
        let next = b.build_expr(&reg.next)?;
        let next = b.coerce(next, reg.ty.width(), reg.ty.is_signed());
        b.graph.regs[idx].next = next;
    }
    // Outputs, coerced to the port type.
    for (name, ty, expr) in &flat.outputs {
        let id = b.build_expr(expr)?;
        let id = b.coerce(id, ty.width(), ty.is_signed());
        if b.graph.node(id).name.is_none() {
            b.graph.set_name(id, name.clone());
        }
        b.graph.outputs.push((name.clone(), id));
    }
    // Give named combinational bindings their names (for waveforms / XMR),
    // but only when the binding actually materialized a node.
    for (name, _, _) in &flat.nodes {
        if let Some(&id) = b.resolved.get(name) {
            if b.graph.node(id).name.is_none() {
                b.graph.set_name(id, name.clone());
            }
        }
    }
    Ok(b.graph)
}

struct Builder<'a> {
    graph: Graph,
    defs: HashMap<&'a str, &'a Expr>,
    resolved: HashMap<String, NodeId>,
    visiting: HashSet<String>,
}

impl<'a> Builder<'a> {
    fn resolve(&mut self, name: &str) -> Result<NodeId> {
        if let Some(&id) = self.resolved.get(name) {
            return Ok(id);
        }
        if !self.visiting.insert(name.to_string()) {
            return Err(DfgError::CombCycle(name.to_string()));
        }
        let expr = *self
            .defs
            .get(name)
            .ok_or_else(|| DfgError::Undefined(name.to_string()))?;
        let id = self.build_expr(expr)?;
        self.visiting.remove(name);
        self.resolved.insert(name.to_string(), id);
        Ok(id)
    }

    fn ty_of(&self, id: NodeId) -> Type {
        let node = self.graph.node(id);
        if node.signed {
            Type::sint(node.width)
        } else {
            Type::uint(node.width)
        }
    }

    /// Inserts a resize only if the target is narrower (widening is free on
    /// the canonical form; signedness changes are also pure resizes).
    fn coerce(&mut self, id: NodeId, width: u32, signed: bool) -> NodeId {
        let node = self.graph.node(id);
        if node.signed == signed && node.width <= width {
            return id;
        }
        self.graph
            .add_op(DfgOp::Resize, vec![], vec![id], width, signed)
    }

    fn build_expr(&mut self, expr: &Expr) -> Result<NodeId> {
        match expr {
            Expr::Ref(name) => self.resolve(name),
            Expr::UIntLit { value, width } => Ok(self.graph.add_const(*value, *width, false)),
            Expr::SIntLit { value, width } => Ok(self.graph.add_const(*value as u64, *width, true)),
            Expr::Mux { cond, tval, fval } => {
                let c = self.build_expr(cond)?;
                let t = self.build_expr(tval)?;
                let f = self.build_expr(fval)?;
                let (tt, ft) = (self.ty_of(t), self.ty_of(f));
                let width = tt.width().max(ft.width());
                Ok(self
                    .graph
                    .add_op(DfgOp::Mux, vec![], vec![c, t, f], width, tt.is_signed()))
            }
            Expr::ValidIf { cond, value } => {
                let c = self.build_expr(cond)?;
                let v = self.build_expr(value)?;
                let vt = self.ty_of(v);
                Ok(self.graph.add_op(
                    DfgOp::ValidIf,
                    vec![],
                    vec![c, v],
                    vt.width(),
                    vt.is_signed(),
                ))
            }
            Expr::Prim { op, args, params } => {
                let arg_ids: Vec<NodeId> = args
                    .iter()
                    .map(|a| self.build_expr(a))
                    .collect::<Result<_>>()?;
                let arg_tys: Vec<Type> = arg_ids.iter().map(|&id| self.ty_of(id)).collect();
                let result = op
                    .result_type(&arg_tys, params)
                    .map_err(|e| DfgError::Type(e.to_string()))?;
                let (dfg_op, dfg_params) = monomorphize(*op, &arg_tys, params);
                Ok(self.graph.add_op(
                    dfg_op,
                    dfg_params,
                    arg_ids,
                    result.width(),
                    result.is_signed(),
                ))
            }
        }
    }
}

/// Maps a FIRRTL primitive op (plus operand types) to a concrete
/// [`DfgOp`] and its static parameters.
fn monomorphize(op: PrimOp, arg_tys: &[Type], params: &[u64]) -> (DfgOp, Vec<u64>) {
    let signed = arg_tys[0].is_signed();
    let w0 = arg_tys[0].width() as u64;
    match op {
        PrimOp::Add => (DfgOp::Add, vec![]),
        PrimOp::Sub => (DfgOp::Sub, vec![]),
        PrimOp::Mul => (DfgOp::Mul, vec![]),
        PrimOp::Div => (if signed { DfgOp::Divs } else { DfgOp::Divu }, vec![]),
        PrimOp::Rem => (if signed { DfgOp::Rems } else { DfgOp::Remu }, vec![]),
        PrimOp::Lt => (if signed { DfgOp::Lts } else { DfgOp::Ltu }, vec![]),
        PrimOp::Leq => (if signed { DfgOp::Les } else { DfgOp::Leu }, vec![]),
        PrimOp::Gt => (if signed { DfgOp::Gts } else { DfgOp::Gtu }, vec![]),
        PrimOp::Geq => (if signed { DfgOp::Ges } else { DfgOp::Geu }, vec![]),
        PrimOp::Eq => (DfgOp::Eq, vec![]),
        PrimOp::Neq => (DfgOp::Neq, vec![]),
        PrimOp::Pad | PrimOp::AsUInt | PrimOp::AsSInt | PrimOp::Cvt | PrimOp::Tail => {
            (DfgOp::Resize, vec![])
        }
        PrimOp::Shl => (DfgOp::Shl, params.to_vec()),
        PrimOp::Shr => (DfgOp::Shr, params.to_vec()),
        PrimOp::Dshl => (DfgOp::Dshl, vec![]),
        PrimOp::Dshr => (DfgOp::Dshr, vec![]),
        PrimOp::Neg => (DfgOp::Neg, vec![]),
        PrimOp::Not => (DfgOp::Not, vec![]),
        PrimOp::And => (DfgOp::And, vec![]),
        PrimOp::Or => (DfgOp::Or, vec![]),
        PrimOp::Xor => (DfgOp::Xor, vec![]),
        PrimOp::Andr => (DfgOp::Andr, vec![w0]),
        PrimOp::Orr => (DfgOp::Orr, vec![]),
        PrimOp::Xorr => (DfgOp::Xorr, vec![w0]),
        PrimOp::Cat => (DfgOp::Cat, vec![w0, arg_tys[1].width() as u64]),
        PrimOp::Bits => (DfgOp::Bits, params.to_vec()),
        PrimOp::Head => (DfgOp::Head, vec![params[0], w0]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rteaal_firrtl::{lower::lower_typed, parser::parse};

    fn graph_of(src: &str) -> Graph {
        build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn counter_graph_shape() {
        let g = graph_of(
            "\
circuit C :
  module C :
    input clock : Clock
    output out : UInt<8>
    reg r : UInt<8>, clock
    r <= tail(add(r, UInt<8>(1)), 1)
    out <= r
",
        );
        assert_eq!(g.regs.len(), 1);
        assert_eq!(g.outputs.len(), 1);
        // reg state, const 1, add, resize(tail) — resize at the connect is
        // not needed since tail already matches the reg width.
        let hist = g.op_histogram();
        assert_eq!(hist.get(&DfgOp::Add), Some(&1));
        assert_eq!(hist.get(&DfgOp::Resize), Some(&1));
    }

    #[test]
    fn comb_cycle_rejected() {
        // Two wires feeding each other.
        let src = "\
circuit C :
  module C :
    input a : UInt<4>
    output out : UInt<4>
    wire w1 : UInt<4>
    wire w2 : UInt<4>
    w1 <= and(w2, a)
    w2 <= or(w1, a)
    out <= w1
";
        let flat = lower_typed(&parse(src).unwrap()).unwrap_err();
        // lower_typed already refuses to type the cycle.
        let msg = flat.to_string();
        assert!(
            msg.contains("cycle") || msg.contains("could not type"),
            "{msg}"
        );
    }

    #[test]
    fn signedness_monomorphized() {
        let g = graph_of(
            "\
circuit C :
  module C :
    input a : SInt<8>
    input b : SInt<8>
    output lt : UInt<1>
    output q : SInt<9>
    lt <= lt(a, b)
    q <= div(a, b)
",
        );
        let hist = g.op_histogram();
        assert_eq!(hist.get(&DfgOp::Lts), Some(&1));
        assert_eq!(hist.get(&DfgOp::Divs), Some(&1));
        assert_eq!(hist.get(&DfgOp::Ltu), None);
    }

    #[test]
    fn widening_connect_is_free() {
        let g = graph_of(
            "\
circuit C :
  module C :
    input a : UInt<4>
    output out : UInt<8>
    out <= a
",
        );
        // No resize node: widening is a no-op on canonical values, so the
        // output is driven directly by the input node.
        assert_eq!(g.outputs[0].1, g.inputs[0]);
    }

    #[test]
    fn narrowing_connect_inserts_resize() {
        let g = graph_of(
            "\
circuit C :
  module C :
    input clock : Clock
    input a : UInt<8>
    output out : UInt<8>
    reg r : UInt<4>, clock
    r <= a
    out <= r
",
        );
        let hist = g.op_histogram();
        assert_eq!(hist.get(&DfgOp::Resize), Some(&1));
    }

    #[test]
    fn shared_subexpressions_hash_consed() {
        let g = graph_of(
            "\
circuit C :
  module C :
    input a : UInt<8>
    input b : UInt<8>
    output x : UInt<9>
    output y : UInt<9>
    x <= add(a, b)
    y <= add(a, b)
",
        );
        assert_eq!(g.outputs[0].1, g.outputs[1].1);
        assert_eq!(g.effectual_ops(), 1);
    }

    #[test]
    fn cat_params_capture_operand_widths() {
        let g = graph_of(
            "\
circuit C :
  module C :
    input a : UInt<4>
    input b : UInt<3>
    output out : UInt<7>
    out <= cat(a, b)
",
        );
        let (_, node) = g.iter().find(|(_, n)| n.op == DfgOp::Cat).unwrap();
        assert_eq!(node.params, vec![4, 3]);
    }
}
