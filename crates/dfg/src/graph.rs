//! The dataflow-graph IR.
//!
//! A [`Graph`] is the middle representation of Figure 1 (paper §2.1): nodes
//! are primitive operations, edges are data flow. Sources are inputs,
//! register state, and constants; sinks are output ports and register
//! next-state values.
//!
//! Construction hash-conses nodes (structural deduplication), so building
//! from a `FlatModule` with heavily shared expressions stays linear in the
//! number of distinct operations.

use crate::op::{DfgOp, OpClass};
use std::collections::HashMap;
use std::fmt;

/// Index of a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A dataflow-graph node: one primitive operation instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The operation.
    pub op: DfgOp,
    /// Static parameters (bit indices, shift amounts, widths, const value).
    pub params: Vec<u64>,
    /// Operand node ids, in operand order (the `O` rank).
    pub operands: Vec<NodeId>,
    /// Result width in bits.
    pub width: u32,
    /// Whether the result is signed (canonical form sign-extended).
    pub signed: bool,
    /// Source-level name, if the node corresponds to a named signal.
    pub name: Option<String>,
}

/// A register: its state node, next-state driver, and power-on value.
#[derive(Debug, Clone, PartialEq)]
pub struct RegDef {
    /// The `RegState` node read by consumers.
    pub state: NodeId,
    /// The node computing the next value (committed at cycle end).
    pub next: NodeId,
    /// Power-on value (canonical form).
    pub init: u64,
    /// Hierarchical register name.
    pub name: String,
}

/// Hash-consing key: the full structural identity of a node.
type ConsKey = (DfgOp, Vec<u64>, Vec<NodeId>, u32, bool);

/// The dataflow graph of a flattened design.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    /// Hash-consing table: structural key -> existing node.
    cons: HashMap<ConsKey, NodeId>,
    /// Input nodes, in port order.
    pub inputs: Vec<NodeId>,
    /// Registers, in declaration order.
    pub regs: Vec<RegDef>,
    /// Output ports: name and driving node.
    pub outputs: Vec<(String, NodeId)>,
    /// Design name.
    pub name: String,
}

impl Graph {
    /// Creates an empty graph for a design with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Graph {
            name: name.into(),
            ..Graph::default()
        }
    }

    /// Number of nodes (including sources and dead nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node (passes rewriting in place).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Iterates `(id, node)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Adds a *source* node (input/register state); never hash-consed.
    pub fn add_source(&mut self, op: DfgOp, width: u32, signed: bool, name: String) -> NodeId {
        debug_assert_eq!(op.class(), OpClass::Source);
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            op,
            params: vec![],
            operands: vec![],
            width,
            signed,
            name: Some(name),
        });
        id
    }

    /// Adds (or reuses, via hash-consing) an operation node.
    pub fn add_op(
        &mut self,
        op: DfgOp,
        params: Vec<u64>,
        operands: Vec<NodeId>,
        width: u32,
        signed: bool,
    ) -> NodeId {
        if let Some(arity) = op.arity() {
            debug_assert_eq!(operands.len(), arity, "{op}: wrong operand count");
        }
        let key = (op, params, operands, width, signed);
        if let Some(&id) = self.cons.get(&key) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        let (op, params, operands, width, signed) = key.clone();
        self.nodes.push(Node {
            op,
            params,
            operands,
            width,
            signed,
            name: None,
        });
        self.cons.insert(key, id);
        id
    }

    /// Adds a constant node with the given canonical value.
    pub fn add_const(&mut self, value: u64, width: u32, signed: bool) -> NodeId {
        let canonical = crate::op::canonicalize(value, width, signed);
        self.add_op(DfgOp::Const, vec![canonical], vec![], width, signed)
    }

    /// Attaches a source-level name to a node (used for waveforms / XMR).
    pub fn set_name(&mut self, id: NodeId, name: impl Into<String>) {
        self.nodes[id.index()].name = Some(name.into());
    }

    /// Finds a node by source-level name (linear scan; intended for tests
    /// and the XMR front door, not hot paths).
    pub fn find_by_name(&self, name: &str) -> Option<NodeId> {
        self.iter()
            .find(|(_, n)| n.name.as_deref() == Some(name))
            .map(|(id, _)| id)
    }

    /// Topological order of all *operation* nodes (sources excluded),
    /// following operand edges. Register state nodes are cut points, so the
    /// graph restricted to one cycle is acyclic by construction.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 visiting, 2 done
        let mut order = Vec::with_capacity(n);
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        let mut roots: Vec<NodeId> = self.outputs.iter().map(|(_, id)| *id).collect();
        roots.extend(self.regs.iter().map(|r| r.next));
        for root in roots {
            if state[root.index()] != 0 {
                continue;
            }
            stack.push((root, 0));
            state[root.index()] = 1;
            while let Some(&mut (id, ref mut child)) = stack.last_mut() {
                let node = &self.nodes[id.index()];
                if node.op.class() == OpClass::Source {
                    state[id.index()] = 2;
                    stack.pop();
                    continue;
                }
                if *child < node.operands.len() {
                    let next = node.operands[*child];
                    *child += 1;
                    match state[next.index()] {
                        0 => {
                            state[next.index()] = 1;
                            stack.push((next, 0));
                        }
                        1 => panic!(
                            "combinational cycle through {} (build should have rejected it)",
                            next
                        ),
                        _ => {}
                    }
                } else {
                    state[id.index()] = 2;
                    order.push(id);
                    stack.pop();
                }
            }
        }
        order
    }

    /// Histogram of live (reachable) operation counts per opcode, plus the
    /// total. Sources are excluded.
    pub fn op_histogram(&self) -> HashMap<DfgOp, usize> {
        let mut hist = HashMap::new();
        for id in self.topo_order() {
            *hist.entry(self.nodes[id.index()].op).or_insert(0) += 1;
        }
        hist
    }

    /// Number of live operation nodes (the paper's "effectual operations").
    pub fn effectual_ops(&self) -> usize {
        self.topo_order().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        // out = (a + r); r' = out
        let mut g = Graph::new("tiny");
        let a = g.add_source(DfgOp::Input, 8, false, "a".into());
        g.inputs.push(a);
        let r = g.add_source(DfgOp::RegState, 8, false, "r".into());
        let sum = g.add_op(DfgOp::Add, vec![], vec![a, r], 8, false);
        g.regs.push(RegDef {
            state: r,
            next: sum,
            init: 0,
            name: "r".into(),
        });
        g.outputs.push(("out".into(), sum));
        g
    }

    #[test]
    fn hash_consing_dedupes() {
        let mut g = tiny();
        let a = g.inputs[0];
        let r = g.regs[0].state;
        let before = g.len();
        let dup = g.add_op(DfgOp::Add, vec![], vec![a, r], 8, false);
        assert_eq!(g.len(), before);
        assert_eq!(dup, g.regs[0].next);
        // Different width is a different node.
        let other = g.add_op(DfgOp::Add, vec![], vec![a, r], 9, false);
        assert_ne!(other, dup);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let mut g = tiny();
        let sum = g.regs[0].next;
        let sq = g.add_op(DfgOp::Mul, vec![], vec![sum, sum], 8, false);
        g.outputs.push(("sq".into(), sq));
        let order = g.topo_order();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(sum) < pos(sq));
        // Sources do not appear.
        assert!(!order.contains(&g.inputs[0]));
    }

    #[test]
    fn histogram_counts_live_ops_only() {
        let mut g = tiny();
        // A dead node: never referenced by outputs or reg nexts.
        let a = g.inputs[0];
        g.add_op(DfgOp::Not, vec![], vec![a], 8, false);
        let hist = g.op_histogram();
        assert_eq!(hist.get(&DfgOp::Add), Some(&1));
        assert_eq!(hist.get(&DfgOp::Not), None);
        assert_eq!(g.effectual_ops(), 1);
    }

    #[test]
    fn const_nodes_store_canonical_values() {
        let mut g = Graph::new("c");
        let c = g.add_const(0b1100, 4, true); // -4 sign-extended
        assert_eq!(g.node(c).params[0] as i64, -4);
        let c2 = g.add_const((-4i64) as u64, 4, true);
        assert_eq!(c, c2); // canonical form makes them identical
    }

    #[test]
    fn find_by_name_works() {
        let g = tiny();
        assert_eq!(g.find_by_name("a"), Some(g.inputs[0]));
        assert_eq!(g.find_by_name("r"), Some(g.regs[0].state));
        assert_eq!(g.find_by_name("ghost"), None);
    }
}
