//! RepCut partition decomposition of a levelized [`SimPlan`] (paper
//! Appendix C, Cascade 2) — the plan-level stage the whole execution
//! stack threads through.
//!
//! RepCut [Wang & Beamer 2023] splits the dataflow graph into `C` fully
//! decoupled sectors by *replicating* each sector's shared fan-in cone.
//! Every register is *updated* in exactly one partition; at the end of
//! each cycle the register update map (`RUM`) tensor propagates the
//! committed values to every partition that reads them — the extra
//! `LI_{c+1} = LI_{c,I} · RUM` Einsum that distinguishes Cascade 2 from
//! Cascade 1.
//!
//! Where `rteaal_einsum::RepCutSim` is a standalone executable model of
//! that cascade, [`PartitionedPlan`] is the *compiler artifact*: pure
//! per-partition op schedules (same layer structure as the source plan,
//! so the levelization barrier argument carries over unchanged), the
//! owned commit list of each partition, the RUM, and a per-slot *home*
//! map naming the partition whose replica holds each slot's
//! authoritative value. `rteaal_kernels::BatchKernel` consumes it to run
//! a 2-D partition × lane work decomposition; `rteaal_core`,
//! `rteaal-sched`, and `rteaal-serve` thread it upward from there.
//!
//! Unlike the standalone model, the schedules here cover **every** op of
//! the plan: ops reachable from neither a register nor an output (named
//! probe cones kept for waveforms and halt conditions) are folded into
//! partition 0, so any probed slot reads the same value a scalar run
//! would report.

use crate::plan::SimPlan;
use crate::OpInst;
use std::collections::HashSet;

/// One partition's op schedule: the replicated cone needed to update its
/// owned registers (plus, for partition 0, the design outputs and any
/// probe-only cones).
#[derive(Debug, Clone)]
pub struct PartitionSchedule {
    /// Filtered layers, same layer count and intra-layer order as the
    /// source plan.
    pub layers: Vec<Vec<OpInst>>,
    /// Registers *owned* (updated) by this partition: `(slot, next slot)`
    /// pairs in plan commit order.
    pub commits: Vec<(u32, u32)>,
}

impl PartitionSchedule {
    /// Ops this partition evaluates per cycle.
    pub fn total_ops(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }
}

/// One entry of the register update map: where a register is committed
/// and which partitions read it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RumEntry {
    /// The register's `LI` slot.
    pub slot: u32,
    /// Partition that commits it.
    pub owner: u32,
    /// Partitions that read it (differential exchange: only actual
    /// readers receive the committed value).
    pub readers: Vec<u32>,
}

/// A RepCut decomposition of one [`SimPlan`]: per-partition schedules,
/// the register update map, and the per-slot home map.
///
/// Invariants the execution layers rely on:
///
/// - every op of the source plan appears in at least one partition, at
///   its original layer;
/// - each register is committed by exactly `partitions[home]`, and every
///   partition whose cone reads it appears in that register's
///   [`RumEntry::readers`];
/// - `home[s]` names a partition whose schedule computes slot `s` (for
///   register slots: the owner; for source slots — inputs, constants —
///   partition 0, since those rows are replicated identically).
#[derive(Debug, Clone)]
pub struct PartitionedPlan {
    /// The per-partition schedules; `[0]` additionally carries the
    /// design outputs and probe-only cones.
    pub partitions: Vec<PartitionSchedule>,
    /// The register update map, one entry per plan commit, in plan
    /// order.
    pub rum: Vec<RumEntry>,
    /// `slot -> partition` whose replica holds the slot's authoritative
    /// value (the read-indirection map for probes, outputs, and halt
    /// conditions).
    pub home: Vec<u32>,
    /// Total ops across partitions (>= the unpartitioned op count).
    pub replicated_ops: usize,
    /// Ops in the unpartitioned plan.
    pub base_ops: usize,
}

impl PartitionedPlan {
    /// Runs RepCut on a levelized plan: round-robin register ownership,
    /// backward cone closure per partition, RUM construction, and a
    /// final sweep folding uncovered (probe-only) ops into partition 0.
    ///
    /// # Panics
    ///
    /// Panics if `num_partitions` is zero.
    pub fn new(plan: &SimPlan, num_partitions: usize) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        // Producer map: slot -> (layer, index within layer).
        let mut producer: Vec<Option<(usize, usize)>> = vec![None; plan.num_slots];
        for (i, layer) in plan.layers.iter().enumerate() {
            for (k, op) in layer.iter().enumerate() {
                producer[op.out as usize] = Some((i, k));
            }
        }
        // Round-robin register ownership; outputs belong to partition 0.
        let mut roots: Vec<Vec<u32>> = vec![Vec::new(); num_partitions];
        let mut commits: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_partitions];
        for (r, &(dst, src)) in plan.commits.iter().enumerate() {
            let p = r % num_partitions;
            roots[p].push(src);
            commits[p].push((dst, src));
        }
        for (_, s) in &plan.output_slots {
            roots[0].push(*s);
        }
        let reg_slots: HashSet<u32> = plan.commits.iter().map(|&(dst, _)| dst).collect();
        // Backward closure per partition. Partitions 1.. first, so the
        // union of their cones tells partition 0 which leftover (probe
        // or otherwise unreachable) ops it must also carry.
        let mut included: Vec<HashSet<(usize, usize)>> = vec![HashSet::new(); num_partitions];
        let mut read_regs: Vec<HashSet<u32>> = vec![HashSet::new(); num_partitions];
        let mut seen0 = HashSet::new();
        for p in (0..num_partitions).rev() {
            let mut work = std::mem::take(&mut roots[p]);
            let mut seen: HashSet<u32> = HashSet::new();
            while let Some(slot) = work.pop() {
                if !seen.insert(slot) {
                    continue;
                }
                if reg_slots.contains(&slot) {
                    read_regs[p].insert(slot);
                }
                if let Some(loc) = producer[slot as usize] {
                    if included[p].insert(loc) {
                        work.extend(plan.layers[loc.0][loc.1].ins.iter().copied());
                    }
                }
            }
            if p == 0 {
                seen0 = seen;
            }
        }
        // Full coverage: ops in no partition (probe-only cones the plan
        // keeps for waveforms and halt conditions) close into partition
        // 0, so every slot has a partition that computes it.
        let mut uncovered: Vec<u32> = Vec::new();
        for (i, layer) in plan.layers.iter().enumerate() {
            for (k, op) in layer.iter().enumerate() {
                if !included.iter().any(|inc| inc.contains(&(i, k))) {
                    uncovered.push(op.out);
                }
            }
        }
        {
            let mut work = uncovered;
            while let Some(slot) = work.pop() {
                if !seen0.insert(slot) {
                    continue;
                }
                if reg_slots.contains(&slot) {
                    read_regs[0].insert(slot);
                }
                if let Some(loc) = producer[slot as usize] {
                    if included[0].insert(loc) {
                        work.extend(plan.layers[loc.0][loc.1].ins.iter().copied());
                    }
                }
            }
        }
        // Materialize the filtered schedules (plan order preserved).
        let mut replicated_ops = 0;
        let partitions: Vec<PartitionSchedule> = (0..num_partitions)
            .map(|p| {
                let layers: Vec<Vec<OpInst>> = plan
                    .layers
                    .iter()
                    .enumerate()
                    .map(|(i, layer)| {
                        layer
                            .iter()
                            .enumerate()
                            .filter(|(k, _)| included[p].contains(&(i, *k)))
                            .map(|(_, op)| op.clone())
                            .collect()
                    })
                    .collect();
                replicated_ops += included[p].len();
                PartitionSchedule {
                    layers,
                    commits: std::mem::take(&mut commits[p]),
                }
            })
            .collect();
        // The RUM: owner plus actual readers, per register.
        let rum: Vec<RumEntry> = plan
            .commits
            .iter()
            .enumerate()
            .map(|(r, &(dst, _))| {
                let owner = (r % num_partitions) as u32;
                let readers: Vec<u32> = (0..num_partitions as u32)
                    .filter(|&q| q != owner && read_regs[q as usize].contains(&dst))
                    .collect();
                RumEntry {
                    slot: dst,
                    owner,
                    readers,
                }
            })
            .collect();
        // Home map: registers live with their owner; computed slots with
        // the lowest partition that computes them; sources (inputs,
        // constants — replicated identically) with partition 0.
        let mut home = vec![0u32; plan.num_slots];
        for (i, layer) in plan.layers.iter().enumerate() {
            for (k, op) in layer.iter().enumerate() {
                let p = (0..num_partitions)
                    .find(|&p| included[p].contains(&(i, k)))
                    .expect("coverage sweep left no orphan ops");
                home[op.out as usize] = p as u32;
            }
        }
        for entry in &rum {
            home[entry.slot as usize] = entry.owner;
        }
        PartitionedPlan {
            partitions,
            rum,
            home,
            replicated_ops,
            base_ops: plan.total_ops(),
        }
    }

    /// A host-informed partition count: as many partitions as there are
    /// cores, clamped so each partition still has registers to own and a
    /// meaningful amount of work (tiny designs gain nothing from the
    /// barrier traffic), capped at 8.
    pub fn auto_partitions(plan: &SimPlan) -> usize {
        let cores = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        let by_regs = plan.commits.len().max(1);
        let by_work = (plan.total_ops() / 256).max(1);
        cores.min(by_regs).min(by_work).clamp(1, 8)
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Replication overhead: total replicated ops over the unpartitioned
    /// op count (1.0 = no replication).
    pub fn replication_factor(&self) -> f64 {
        if self.base_ops == 0 {
            1.0
        } else {
            self.replicated_ops as f64 / self.base_ops as f64
        }
    }

    /// Ops evaluated per cycle by each partition.
    pub fn op_counts(&self) -> Vec<usize> {
        self.partitions
            .iter()
            .map(PartitionSchedule::total_ops)
            .collect()
    }

    /// Registers whose committed value crosses a partition boundary
    /// (RUM entries with at least one reader) — the per-cycle exchange
    /// volume.
    pub fn cross_partition_registers(&self) -> usize {
        self.rum.iter().filter(|e| !e.readers.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan;
    use rteaal_firrtl::{lower::lower_typed, parser::parse};

    const CROSS: &str = "\
circuit X :
  module X :
    input clock : Clock
    input a : UInt<8>
    input b : UInt<8>
    output o1 : UInt<8>
    output o2 : UInt<8>
    reg r1 : UInt<8>, clock
    reg r2 : UInt<8>, clock
    reg r3 : UInt<8>, clock
    reg r4 : UInt<8>, clock
    node s = tail(add(r1, r2), 1)
    node d = tail(sub(r3, r4), 1)
    r1 <= tail(add(s, a), 1)
    r2 <= xor(d, b)
    r3 <= and(s, d)
    r4 <= or(r1, r2)
    o1 <= s
    o2 <= d
";

    fn plan_of(src: &str) -> SimPlan {
        plan(&crate::build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap())
    }

    #[test]
    fn single_partition_covers_the_whole_plan_without_replication() {
        let p = plan_of(CROSS);
        let pp = PartitionedPlan::new(&p, 1);
        assert_eq!(pp.num_partitions(), 1);
        assert_eq!(pp.replicated_ops, p.total_ops());
        assert!((pp.replication_factor() - 1.0).abs() < 1e-12);
        assert_eq!(pp.partitions[0].commits, p.commits);
        assert!(pp.rum.iter().all(|e| e.owner == 0 && e.readers.is_empty()));
        assert!(pp.home.iter().all(|&h| h == 0));
        // Same layer structure, same per-layer op counts.
        for (filtered, original) in pp.partitions[0].layers.iter().zip(&p.layers) {
            assert_eq!(filtered.len(), original.len());
        }
    }

    #[test]
    fn every_op_is_covered_and_every_register_owned_once() {
        let p = plan_of(CROSS);
        for parts in [2usize, 3, 4, 8] {
            let pp = PartitionedPlan::new(&p, parts);
            assert_eq!(pp.num_partitions(), parts);
            // Each op location appears in >= 1 partition: per-layer union
            // of outs covers the plan layer's outs.
            for (i, layer) in p.layers.iter().enumerate() {
                let mut outs: HashSet<u32> = HashSet::new();
                for sched in &pp.partitions {
                    outs.extend(sched.layers[i].iter().map(|op| op.out));
                }
                for op in layer {
                    assert!(outs.contains(&op.out), "op at layer {i} uncovered");
                }
            }
            // Commits partition the plan's commit list.
            let mut all: Vec<(u32, u32)> = pp
                .partitions
                .iter()
                .flat_map(|s| s.commits.iter().copied())
                .collect();
            all.sort_unstable();
            let mut expect = p.commits.clone();
            expect.sort_unstable();
            assert_eq!(all, expect);
            // RUM: one entry per commit, owner round-robin, no
            // self-reads.
            assert_eq!(pp.rum.len(), p.commits.len());
            for (r, e) in pp.rum.iter().enumerate() {
                assert_eq!(e.owner as usize, r % parts);
                assert!(!e.readers.contains(&e.owner));
            }
            // Homes point at partitions that actually compute the slot.
            for (i, layer) in p.layers.iter().enumerate() {
                for op in layer {
                    let h = pp.home[op.out as usize] as usize;
                    assert!(
                        pp.partitions[h].layers[i].iter().any(|o| o.out == op.out),
                        "home of slot {} does not compute it",
                        op.out
                    );
                }
            }
            for e in &pp.rum {
                assert_eq!(pp.home[e.slot as usize], e.owner);
            }
        }
    }

    #[test]
    fn cross_coupled_registers_force_replication() {
        let p = plan_of(CROSS);
        let pp = PartitionedPlan::new(&p, 4);
        assert!(
            pp.replication_factor() > 1.0,
            "factor = {}",
            pp.replication_factor()
        );
        assert!(pp.cross_partition_registers() > 0);
        // Differential exchange: not every register is broadcast.
        assert!(pp.rum.iter().any(|e| e.readers.len() < 3));
    }

    #[test]
    fn dangling_probe_cones_fold_into_partition_zero() {
        // A hand-built plan with an op reachable from neither a register
        // next-value nor an output — the shape a probe-keeping compile
        // mode produces. `build` prunes such nodes today, so this guards
        // the coverage sweep directly: the dangling cone must land in
        // partition 0, and the register it reads must gain partition 0
        // as a RUM reader.
        use crate::op::DfgOp;
        use crate::plan::PlanStats;
        // Slots: 0 = input a, 1 = reg r0, 2 = reg r1, 3 = r0.next,
        // 4 = r1.next, 5 = dangling = xor(a, r1).
        let mk = |op: DfgOp, out: u32, ins: Vec<u32>| OpInst {
            n: op.n_coord(),
            out,
            ins,
            params: Vec::new(),
            width: 8,
            signed: false,
        };
        let p = SimPlan {
            name: "dangling".to_string(),
            num_slots: 6,
            input_slots: vec![0],
            input_types: vec![(8, false)],
            output_slots: vec![("o".to_string(), 1)],
            const_slots: (0, 0),
            commits: vec![(1, 3), (2, 4)],
            init_values: vec![0; 6],
            layers: vec![vec![
                mk(DfgOp::Add, 3, vec![1, 0]),
                mk(DfgOp::Add, 4, vec![2, 0]),
                mk(DfgOp::Xor, 5, vec![0, 2]),
            ]],
            stats: PlanStats::default(),
            probes: vec![("dangling".to_string(), 5, 8)],
        };
        let pp = PartitionedPlan::new(&p, 2);
        // r0 -> partition 0, r1 -> partition 1; the dangling xor is in
        // neither cone and must fold into partition 0.
        assert_eq!(pp.home[5], 0);
        assert!(
            pp.partitions[0].layers[0].iter().any(|op| op.out == 5),
            "dangling cone unscheduled"
        );
        assert_eq!(pp.op_counts(), vec![2, 1]);
        // The fold makes partition 0 a genuine reader of r1: its
        // committed value must be RUM-delivered every cycle.
        let r1 = pp.rum.iter().find(|e| e.slot == 2).expect("r1 entry");
        assert_eq!(r1.owner, 1);
        assert_eq!(r1.readers, vec![0]);
    }

    #[test]
    fn more_partitions_than_registers_leaves_empty_schedules() {
        let p = plan_of(CROSS); // 4 registers
        let pp = PartitionedPlan::new(&p, 8);
        assert_eq!(pp.num_partitions(), 8);
        let counts = pp.op_counts();
        assert_eq!(counts.len(), 8);
        // Ownerless partitions carry no commits and (here) no ops.
        for sched in &pp.partitions[4..] {
            assert!(sched.commits.is_empty());
        }
        assert_eq!(pp.op_counts().iter().sum::<usize>(), pp.replicated_ops);
    }

    #[test]
    fn auto_partitions_is_sane() {
        let p = plan_of(CROSS);
        let n = PartitionedPlan::auto_partitions(&p);
        assert!((1..=8).contains(&n));
        // Tiny plan: the work clamp keeps it at 1 regardless of cores.
        assert_eq!(n, 1, "a ~10-op plan must not fan out");
    }
}
