//! Coordinate assignment: from a levelized graph to a [`SimPlan`].
//!
//! This is the "Coordinate Assignment" stage of the RTeAAL Sim compiler
//! (paper Figure 14 / §6.1). Every persistent signal — register state,
//! input, constant, and each operation output — receives one slot in the
//! layer-input tensor `LI`. An operation's output slot *is* its `S`
//! coordinate and the slot it is read from later *is* its `R` coordinate;
//! giving both the same value is exactly the identity-elision trick of
//! §4.3/§6.1 ("the compiler assigns the s coordinates so that all identity
//! operations can be elided").
//!
//! The resulting [`SimPlan`] is the logical content of the `OIM` tensor:
//! for each layer `i` (rank `I`), a list of operations (rank `S`), each
//! with an operation type (rank `N`) and ordered operands (ranks `O`, `R`).
//! The `rteaal-tensor` crate lowers this onto the concrete fibertree
//! formats of Figure 12; [`PlanSim`] interprets it directly as a second
//! reference model.

use crate::graph::Graph;
use crate::lane_kernel::LaneWindow;
use crate::level::{levelize, IdentityStats};
use crate::op::{canonicalize, eval_raw, DfgOp};
use serde::{Deserialize, Serialize};

/// One operation instance in the plan (one `s` coordinate of a layer).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpInst {
    /// Operation type (`N`-rank coordinate).
    pub n: u16,
    /// Output slot (`S` coordinate, identity-elided into the `LI` space).
    pub out: u32,
    /// Operand slots (`R` coordinates), in operand order (`O` rank).
    pub ins: Vec<u32>,
    /// Static parameters (bit indices, widths, shift amounts).
    pub params: Vec<u64>,
    /// Result width for canonicalization.
    pub width: u8,
    /// Result signedness for canonicalization.
    pub signed: bool,
}

impl OpInst {
    /// The operation as a [`DfgOp`].
    pub fn op(&self) -> DfgOp {
        DfgOp::from_n_coord(self.n).expect("valid opcode")
    }

    /// Evaluates the op against an `LI` slot array, writing its output.
    #[inline]
    pub fn eval_into(&self, li: &mut [u64], buf: &mut Vec<u64>) {
        buf.clear();
        buf.extend(self.ins.iter().map(|&r| li[r as usize]));
        let raw = eval_raw(self.op(), &self.params, buf);
        li[self.out as usize] = canonicalize(raw, self.width as u32, self.signed);
    }

    /// Evaluates the op lane-wise against a batched `LI` in slot-major
    /// layout: slot `s` occupies `li[s * w.stride .. s * w.stride +
    /// w.stride]`, one element per stimulus lane, and the `w.active`-lane
    /// prefix of each row is evaluated. Operand rows for fixed-arity ops
    /// are read as contiguous slices, so the inner lane loop is stride-1
    /// on every stream it touches.
    ///
    /// This is the *interpreted* lane walk — the golden model the
    /// compiled kernels of [`crate::lane_kernel`] are differentially
    /// tested against.
    #[inline]
    pub fn eval_lanes(&self, li: &mut [u64], w: LaneWindow, buf: &mut Vec<u64>) {
        // SAFETY: an exclusive borrow covers the whole matrix.
        unsafe { self.eval_lanes_ptr(li.as_mut_ptr(), w, buf) }
    }

    /// Lane-wise evaluation through a raw pointer — the layer-parallel
    /// engine's entry point, sharing the arity-specialized inner loops
    /// with [`eval_lanes`](Self::eval_lanes).
    ///
    /// # Safety
    ///
    /// `li` must point to a live slot-major `LI` matrix of `w.stride`
    /// lanes per slot covering every slot this op references, `w.active
    /// <= w.stride`, and no other thread may concurrently access the
    /// op's output row or mutate its operand rows for the duration of
    /// the call. (Within one levelized layer, output rows are disjoint
    /// per op and operand rows come from earlier layers, so
    /// layer-barriered workers satisfy this.)
    #[inline]
    pub unsafe fn eval_lanes_ptr(&self, li: *mut u64, w: LaneWindow, buf: &mut Vec<u64>) {
        let op = self.op();
        let (width, signed) = (self.width as u32, self.signed);
        let (stride, active) = (w.stride, w.active);
        let out = li.add(self.out as usize * stride);
        match *self.ins.as_slice() {
            [a] => {
                let a0 = li.add(a as usize * stride);
                for lane in 0..active {
                    let raw = eval_raw(op, &self.params, &[*a0.add(lane)]);
                    *out.add(lane) = canonicalize(raw, width, signed);
                }
            }
            [a, b] => {
                let (a0, b0) = (li.add(a as usize * stride), li.add(b as usize * stride));
                for lane in 0..active {
                    let raw = eval_raw(op, &self.params, &[*a0.add(lane), *b0.add(lane)]);
                    *out.add(lane) = canonicalize(raw, width, signed);
                }
            }
            [a, b, c] => {
                let (a0, b0, c0) = (
                    li.add(a as usize * stride),
                    li.add(b as usize * stride),
                    li.add(c as usize * stride),
                );
                for lane in 0..active {
                    let raw = eval_raw(
                        op,
                        &self.params,
                        &[*a0.add(lane), *b0.add(lane), *c0.add(lane)],
                    );
                    *out.add(lane) = canonicalize(raw, width, signed);
                }
            }
            _ => {
                // Variable-arity ops (mux chains, no-operand sources)
                // stage operands per lane.
                for lane in 0..active {
                    buf.clear();
                    buf.extend(
                        self.ins
                            .iter()
                            .map(|&r| *li.add(r as usize * stride + lane)),
                    );
                    let raw = eval_raw(op, &self.params, buf);
                    *out.add(lane) = canonicalize(raw, width, signed);
                }
            }
        }
    }
}

/// A list of register commits, each `(register slot, next-value slot)`.
pub type CommitList = Vec<(u32, u32)>;

/// Splits register commits into alias-free pairs (safe to copy directly)
/// and genuinely overlapping pairs (which need the two-phase staging
/// buffer).
///
/// A commit `(dst, src)` is alias-free when `dst` is not the source of
/// any commit: writing it early cannot clobber a value another commit
/// still needs to read. The safe execution order is therefore: stage the
/// overlapping pairs' sources, perform the direct copies (their
/// destinations are outside the source set by construction), then write
/// the staged values. Computed once at plan-load time by every batch
/// executor.
pub fn split_commits(commits: &[(u32, u32)]) -> (CommitList, CommitList) {
    let srcs: std::collections::HashSet<u32> = commits.iter().map(|&(_, src)| src).collect();
    commits.iter().partition(|&&(dst, _)| !srcs.contains(&dst))
}

/// Aggregate statistics about a plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanStats {
    /// Live (effectual) operations.
    pub effectual_ops: usize,
    /// Identity ops the strict cascade would need (all elided).
    pub identity_ops: usize,
    /// Number of layers (shape of the `I` rank).
    pub layers: usize,
    /// Number of `LI` slots (shape of the `R`/`S` coordinate space).
    pub slots: usize,
}

/// A complete execution plan for one design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimPlan {
    /// Design name.
    pub name: String,
    /// Size of the `LI` slot array.
    pub num_slots: usize,
    /// Slot of each top-level input, in port order.
    pub input_slots: Vec<u32>,
    /// Width and signedness of each input, in port order (set_input
    /// canonicalizes raw values through these).
    pub input_types: Vec<(u8, bool)>,
    /// Output ports: name and the slot their value lives in.
    pub output_slots: Vec<(String, u32)>,
    /// Slot range `[start, end)` holding materialized constants (TI's
    /// tensor inlining turns reads of these into immediates).
    pub const_slots: (u32, u32),
    /// Register commits: `(register slot, next-value slot)`, applied
    /// simultaneously at end of cycle (the final `LI_{i+1}` Einsum of
    /// Cascade 1).
    pub commits: Vec<(u32, u32)>,
    /// Initial `LI` contents (register power-on values and constants).
    pub init_values: Vec<u64>,
    /// Operations per layer.
    pub layers: Vec<Vec<OpInst>>,
    /// Summary statistics.
    pub stats: PlanStats,
    /// Named probe points `(signal name, slot, width)` for waveforms and
    /// XMR-style internal access.
    pub probes: Vec<(String, u32, u8)>,
}

impl SimPlan {
    /// Total number of operation instances across all layers.
    pub fn total_ops(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// Resolves a signal name to its slot, searching probes first and
    /// output ports second — the one namespace every halt-watch and
    /// serving-layer validation resolves against (keep them calling
    /// this so they can never drift).
    pub fn signal_slot(&self, name: &str) -> Option<u32> {
        self.probes
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|&(_, s, _)| s)
            .or_else(|| {
                self.output_slots
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|&(_, s)| s)
            })
    }

    /// Histogram of operations per opcode.
    pub fn op_histogram(&self) -> std::collections::HashMap<DfgOp, usize> {
        let mut h = std::collections::HashMap::new();
        for layer in &self.layers {
            for op in layer {
                *h.entry(op.op()).or_insert(0) += 1;
            }
        }
        h
    }
}

/// Builds a [`SimPlan`] from a graph (levelizing internally).
pub fn plan(graph: &Graph) -> SimPlan {
    let lv = levelize(graph);
    let mut slot_of = vec![u32::MAX; graph.len()];
    let mut init_values: Vec<u64> = Vec::new();
    let mut probes = Vec::new();
    let alloc = |init: u64, init_values: &mut Vec<u64>| -> u32 {
        let s = init_values.len() as u32;
        init_values.push(init);
        s
    };
    // Registers first (stable, so DMI pokes address them cheaply), then
    // inputs, then constants, then op outputs in layer order.
    for reg in &graph.regs {
        let node = graph.node(reg.state);
        let s = alloc(
            canonicalize(reg.init, node.width, node.signed),
            &mut init_values,
        );
        slot_of[reg.state.index()] = s;
        probes.push((reg.name.clone(), s, node.width as u8));
    }
    let mut input_slots = Vec::with_capacity(graph.inputs.len());
    let mut input_types = Vec::with_capacity(graph.inputs.len());
    for &input in &graph.inputs {
        let s = alloc(0, &mut init_values);
        slot_of[input.index()] = s;
        input_slots.push(s);
        let node = graph.node(input);
        input_types.push((node.width as u8, node.signed));
        if let Some(name) = &graph.node(input).name {
            probes.push((name.clone(), s, node.width as u8));
        }
    }
    let const_start = init_values.len() as u32;
    for (id, node) in graph.iter() {
        if node.op == DfgOp::Const && slot_of[id.index()] == u32::MAX {
            let s = alloc(node.params[0], &mut init_values);
            slot_of[id.index()] = s;
        }
    }
    let const_slots = (const_start, init_values.len() as u32);
    let mut layers: Vec<Vec<OpInst>> = Vec::with_capacity(lv.layers.len());
    for layer_nodes in &lv.layers {
        let mut layer = Vec::with_capacity(layer_nodes.len());
        for &id in layer_nodes {
            let node = graph.node(id);
            if node.op == DfgOp::Const {
                continue; // materialized in init_values
            }
            let out = alloc(0, &mut init_values);
            slot_of[id.index()] = out;
            if let Some(name) = &node.name {
                probes.push((name.clone(), out, node.width as u8));
            }
            layer.push(OpInst {
                n: node.op.n_coord(),
                out,
                ins: node.operands.iter().map(|o| slot_of[o.index()]).collect(),
                params: node.params.clone(),
                width: node.width as u8,
                signed: node.signed,
            });
        }
        if !layer.is_empty() {
            layers.push(layer);
        }
    }
    // Patch operand slots: operands in later layers were not yet allocated
    // when an early op was built — impossible by construction (operands
    // precede consumers in layer order), so assert instead.
    debug_assert!(layers
        .iter()
        .flatten()
        .all(|op| op.ins.iter().all(|&r| (r as usize) < init_values.len())));
    let commits: Vec<(u32, u32)> = graph
        .regs
        .iter()
        .map(|reg| (slot_of[reg.state.index()], slot_of[reg.next.index()]))
        .collect();
    let output_slots: Vec<(String, u32)> = graph
        .outputs
        .iter()
        .map(|(name, id)| (name.clone(), slot_of[id.index()]))
        .collect();
    let stats = PlanStats {
        effectual_ops: layers.iter().map(Vec::len).sum(),
        identity_ops: lv.identities.total(),
        layers: layers.len(),
        slots: init_values.len(),
    };
    SimPlan {
        name: graph.name.clone(),
        num_slots: init_values.len(),
        input_slots,
        input_types,
        const_slots,
        output_slots,
        commits,
        init_values,
        layers,
        stats,
        probes,
    }
}

/// Identity accounting for a graph without building the full plan
/// (Table 1 harness).
pub fn identity_stats(graph: &Graph) -> IdentityStats {
    levelize(graph).identities
}

/// Builds the *un-elided* plan: the strict Cascade 1 formulation in which
/// `LI_{i+1}` contains only the outputs of layer `i`, so every value that
/// must cross a layer boundary is carried by an explicit
/// [`DfgOp::Identity`] operation (paper §4.2–4.3, Figure 11b). This is the
/// ablation counterpart of [`plan`]: identical behavior, but with the
/// identity operations the coordinate assigner normally elides
/// materialized as real work — it makes Table 1's cost executable.
pub fn plan_unelided(graph: &Graph) -> SimPlan {
    use crate::op::OpClass;
    use std::collections::HashMap;
    let lv = levelize(graph);
    let depth = lv.layers.len() as u32;
    // avail[v]: first layer at which v's value exists in LI.
    // live_until[v]: last layer at which v must still be readable
    // (consumers read at their own layer; commits/outputs read at depth).
    let mut avail = vec![u32::MAX; graph.len()];
    let mut live_until = vec![0u32; graph.len()];
    for (id, node) in graph.iter() {
        if node.op.class() == OpClass::Source {
            avail[id.index()] = 0;
        }
    }
    let order = graph.topo_order();
    for &id in &order {
        avail[id.index()] = lv.layer_of[id.index()] + 1;
    }
    for &id in &order {
        let layer = lv.layer_of[id.index()];
        for &o in &graph.node(id).operands {
            let lu = &mut live_until[o.index()];
            *lu = (*lu).max(layer);
        }
    }
    for reg in &graph.regs {
        live_until[reg.next.index()] = depth;
    }
    for (_, out) in &graph.outputs {
        live_until[out.index()] = depth;
    }
    // Slot allocation: registers, inputs, constants get their layer-0
    // slots; every value additionally gets one slot per layer of its
    // live range.
    let mut init_values: Vec<u64> = Vec::new();
    let mut slot_at: HashMap<(u32, u32), u32> = HashMap::new();
    let mut probes = Vec::new();
    for reg in &graph.regs {
        let node = graph.node(reg.state);
        let s = init_values.len() as u32;
        init_values.push(canonicalize(reg.init, node.width, node.signed));
        slot_at.insert((reg.state.0, 0), s);
        probes.push((reg.name.clone(), s, node.width as u8));
    }
    let mut input_slots = Vec::new();
    let mut input_types = Vec::new();
    for &input in &graph.inputs {
        let node = graph.node(input);
        let s = init_values.len() as u32;
        init_values.push(0);
        slot_at.insert((input.0, 0), s);
        input_slots.push(s);
        input_types.push((node.width as u8, node.signed));
    }
    let const_start = init_values.len() as u32;
    for (id, node) in graph.iter() {
        if node.op == DfgOp::Const {
            let s = init_values.len() as u32;
            init_values.push(node.params[0]);
            slot_at.insert((id.0, 0), s);
        }
    }
    let const_slots = (const_start, init_values.len() as u32);
    for (id, _) in graph.iter() {
        let a = avail[id.index()];
        if a == u32::MAX {
            continue; // dead node
        }
        let until = live_until[id.index()].max(a);
        for layer in a.max(1)..=until {
            slot_at.entry((id.0, layer)).or_insert_with(|| {
                let s = init_values.len() as u32;
                init_values.push(0);
                s
            });
        }
    }
    let slot = |id: u32, layer: u32| -> u32 {
        *slot_at
            .get(&(id, layer))
            .unwrap_or_else(|| panic!("no slot for value {id} at layer {layer}"))
    };
    // Layers: real ops first, then the identity carries into layer i+1.
    let mut layers: Vec<Vec<OpInst>> = Vec::with_capacity(lv.layers.len());
    let mut identity_count = 0usize;
    for (i, layer_nodes) in lv.layers.iter().enumerate() {
        let i = i as u32;
        let mut layer = Vec::new();
        for &id in layer_nodes {
            let node = graph.node(id);
            if node.op == DfgOp::Const {
                continue;
            }
            layer.push(OpInst {
                n: node.op.n_coord(),
                out: slot(id.0, i + 1),
                ins: node.operands.iter().map(|o| slot(o.0, i)).collect(),
                params: node.params.clone(),
                width: node.width as u8,
                signed: node.signed,
            });
        }
        // Identity carries: v alive at layer i and still needed past it.
        for (id, node) in graph.iter() {
            let a = avail[id.index()];
            if a == u32::MAX || a > i || live_until[id.index()] <= i {
                continue;
            }
            identity_count += 1;
            layer.push(OpInst {
                n: DfgOp::Identity.n_coord(),
                out: slot(id.0, i + 1),
                ins: vec![slot(id.0, i)],
                params: vec![],
                width: node.width as u8,
                signed: node.signed,
            });
        }
        layers.push(layer);
    }
    let commits: Vec<(u32, u32)> = graph
        .regs
        .iter()
        .map(|reg| (slot(reg.state.0, 0), slot(reg.next.0, depth)))
        .collect();
    let output_slots: Vec<(String, u32)> = graph
        .outputs
        .iter()
        .map(|(name, id)| {
            // Outputs driven by sources (register state, inputs) read the
            // layer-0 slot so they observe the committed value, matching
            // the elided plan's sampling semantics.
            let layer = if graph.node(*id).op.class() == OpClass::Source {
                0
            } else {
                depth
            };
            (name.clone(), slot(id.0, layer))
        })
        .collect();
    let stats = PlanStats {
        effectual_ops: lv.effectual_ops(),
        identity_ops: identity_count,
        layers: layers.len(),
        slots: init_values.len(),
    };
    SimPlan {
        name: format!("{}-unelided", graph.name),
        num_slots: init_values.len(),
        input_slots,
        input_types,
        const_slots,
        output_slots,
        commits,
        init_values,
        layers,
        stats,
        probes,
    }
}

/// Direct interpreter over a [`SimPlan`]: the second reference model
/// (literally Algorithm 3 with the loop order `[I, S, N, O, R]`).
#[derive(Debug, Clone)]
pub struct PlanSim<'p> {
    plan: &'p SimPlan,
    li: Vec<u64>,
    buf: Vec<u64>,
    commit_buf: Vec<u64>,
    cycle: u64,
}

impl<'p> PlanSim<'p> {
    /// Creates a simulator with `LI` at its initial contents.
    pub fn new(plan: &'p SimPlan) -> Self {
        PlanSim {
            plan,
            li: plan.init_values.clone(),
            buf: Vec::with_capacity(8),
            commit_buf: vec![0; plan.commits.len()],
            cycle: 0,
        }
    }

    /// Drives input port `idx` (canonicalized to the port type).
    pub fn set_input(&mut self, idx: usize, value: u64) {
        let (w, signed) = self.plan.input_types[idx];
        self.li[self.plan.input_slots[idx] as usize] = canonicalize(value, w as u32, signed);
    }

    /// One clock cycle: evaluate every layer, then commit registers.
    pub fn step(&mut self) {
        for layer in &self.plan.layers {
            for op in layer {
                op.eval_into(&mut self.li, &mut self.buf);
            }
        }
        for (k, &(_, src)) in self.plan.commits.iter().enumerate() {
            self.commit_buf[k] = self.li[src as usize];
        }
        for (k, &(dst, _)) in self.plan.commits.iter().enumerate() {
            self.li[dst as usize] = self.commit_buf[k];
        }
        self.cycle += 1;
    }

    /// Output value by port index.
    pub fn output(&self, idx: usize) -> u64 {
        self.li[self.plan.output_slots[idx].1 as usize]
    }

    /// Reads any `LI` slot (probe / XMR path).
    pub fn slot(&self, s: u32) -> u64 {
        self.li[s as usize]
    }

    /// Cycles simulated.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The full `LI` array (waveform capture reads this).
    pub fn li(&self) -> &[u64] {
        &self.li
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build;
    use crate::interp::Interpreter;
    use crate::passes::{optimize, PassOptions};
    use rteaal_firrtl::{lower::lower_typed, parser::parse};

    fn graph_of(src: &str) -> Graph {
        build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap()
    }

    const MIXED: &str = "\
circuit Mixed :
  module Mixed :
    input clock : Clock
    input x : UInt<8>
    input sel : UInt<1>
    output out : UInt<8>
    output flag : UInt<1>
    reg acc : UInt<8>, clock
    reg cnt : UInt<4>, clock
    node nx = tail(add(acc, x), 1)
    node alt = xor(acc, x)
    acc <= mux(sel, nx, alt)
    cnt <= tail(add(cnt, UInt<4>(1)), 1)
    out <= acc
    flag <= andr(cnt)
";

    #[test]
    fn plan_matches_graph_interpreter() {
        use rand::{Rng, SeedableRng};
        let g = graph_of(MIXED);
        let p = plan(&g);
        let mut gi = Interpreter::new(&g);
        let mut ps = PlanSim::new(&p);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..300 {
            let x: u64 = rng.gen_range(0..256);
            let sel: u64 = rng.gen_range(0..2);
            gi.set_input(0, x);
            gi.set_input(1, sel);
            ps.set_input(0, x);
            ps.set_input(1, sel);
            gi.step();
            ps.step();
            assert_eq!(gi.output(0), ps.output(0));
            assert_eq!(gi.output(1), ps.output(1));
        }
    }

    #[test]
    fn plan_matches_after_optimization() {
        use rand::{Rng, SeedableRng};
        let g = graph_of(MIXED);
        let (opt, _) = optimize(&g, &PassOptions::default());
        let p = plan(&opt);
        let mut gi = Interpreter::new(&g);
        let mut ps = PlanSim::new(&p);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for _ in 0..300 {
            let x: u64 = rng.gen_range(0..256);
            let sel: u64 = rng.gen_range(0..2);
            gi.set_input(0, x);
            gi.set_input(1, sel);
            ps.set_input(0, x);
            ps.set_input(1, sel);
            gi.step();
            ps.step();
            assert_eq!(gi.output(0), ps.output(0));
        }
    }

    #[test]
    fn slots_are_ssa_within_a_cycle() {
        let g = graph_of(MIXED);
        let p = plan(&g);
        let mut written = std::collections::HashSet::new();
        for layer in &p.layers {
            for op in layer {
                assert!(written.insert(op.out), "slot {} written twice", op.out);
            }
        }
        // Register slots are never written by layer ops (only by commit).
        for &(dst, _) in &p.commits {
            assert!(!written.contains(&dst));
        }
    }

    #[test]
    fn operands_available_before_use() {
        let g = graph_of(MIXED);
        let p = plan(&g);
        // A slot is available if it is a source slot or written by an
        // earlier (or same, but ops are ordered) layer.
        let source_slots = p.num_slots - p.stats.effectual_ops;
        let mut available: std::collections::HashSet<u32> = (0..source_slots as u32).collect();
        for layer in &p.layers {
            for op in layer {
                for &r in &op.ins {
                    assert!(available.contains(&r), "slot {r} used before defined");
                }
            }
            for op in layer {
                available.insert(op.out);
            }
        }
    }

    #[test]
    fn stats_are_consistent() {
        let g = graph_of(MIXED);
        let p = plan(&g);
        assert_eq!(p.stats.effectual_ops, p.total_ops());
        assert_eq!(p.stats.layers, p.layers.len());
        assert_eq!(p.stats.slots, p.num_slots);
        assert!(p.stats.identity_ops > 0);
    }

    #[test]
    fn plan_serializes_to_json() {
        let g = graph_of(MIXED);
        let p = plan(&g);
        let json = serde_json::to_string(&p).unwrap();
        let back: SimPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn unelided_plan_is_equivalent_but_carries_identities() {
        use rand::{Rng, SeedableRng};
        let g = graph_of(MIXED);
        let elided = plan(&g);
        let unelided = plan_unelided(&g);
        // The strict cascade materializes identity work the coordinate
        // assigner normally removes.
        assert!(unelided.stats.identity_ops > 0);
        assert_eq!(unelided.stats.effectual_ops, elided.stats.effectual_ops);
        assert!(unelided.total_ops() > elided.total_ops());
        assert!(unelided.num_slots > elided.num_slots);
        // ... but behavior is identical.
        let mut a = PlanSim::new(&elided);
        let mut b = PlanSim::new(&unelided);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..300 {
            let x: u64 = rng.gen();
            let sel: u64 = rng.gen();
            a.set_input(0, x);
            a.set_input(1, sel);
            b.set_input(0, x);
            b.set_input(1, sel);
            a.step();
            b.step();
            assert_eq!(a.output(0), b.output(0));
            assert_eq!(a.output(1), b.output(1));
        }
    }

    #[test]
    fn unelided_identity_count_tracks_levelization_accounting() {
        let g = graph_of(MIXED);
        let unelided = plan_unelided(&g);
        let hist = unelided.op_histogram();
        let materialized = hist.get(&DfgOp::Identity).copied().unwrap_or(0);
        assert_eq!(materialized, unelided.stats.identity_ops);
        // Per-value-per-layer carries are bounded by the per-edge
        // accounting of `levelize` plus the carry-to-end terms.
        let lv = crate::level::levelize(&g);
        assert!(materialized <= lv.identities.total() + g.regs.len() * unelided.stats.layers);
    }

    #[test]
    fn probes_cover_named_signals() {
        let g = graph_of(MIXED);
        let p = plan(&g);
        let names: Vec<&str> = p.probes.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(names.contains(&"acc"));
        assert!(names.contains(&"cnt"));
        assert!(names.contains(&"x"));
    }
}
