//! Levelization of the dataflow graph (paper §4.2, Figure 11).
//!
//! Slices the graph into layers so that each operation depends only on
//! values available from layers above it: sources (inputs, register state,
//! constants) are available at layer 0, and an operation at layer `L`
//! makes its output available at layer `L+1`.
//!
//! Also accounts for the *identity operations* the strict cascade
//! formulation would need to break cross-layer dependencies (§4.3,
//! Table 1): one identity per layer a value must be carried across, both
//! for operand edges that skip layers and for produced values that must
//! reach the end-of-cycle writeback. The actual simulator elides all of
//! them via coordinate assignment (every signal keeps one `LI` slot for the
//! whole cycle), which is why [`IdentityStats`] is bookkeeping, not cost.

use crate::graph::{Graph, NodeId};
use crate::op::OpClass;

/// Identity-operation accounting (Table 1 reproduction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdentityStats {
    /// Identities needed to bridge operand edges that skip layers.
    pub edge_gap: usize,
    /// Identities needed to carry register next-states and outputs from
    /// their production layer to the end of the cycle.
    pub carry_to_end: usize,
}

impl IdentityStats {
    /// Total identity operations before elision.
    pub fn total(&self) -> usize {
        self.edge_gap + self.carry_to_end
    }
}

/// The result of levelizing a graph.
#[derive(Debug, Clone)]
pub struct Levelization {
    /// Operation node ids per layer, in dependency-safe order.
    pub layers: Vec<Vec<NodeId>>,
    /// Layer of each operation node (`u32::MAX` for sources and dead
    /// nodes).
    pub layer_of: Vec<u32>,
    /// Identity-op accounting before elision.
    pub identities: IdentityStats,
}

impl Levelization {
    /// Number of layers (the shape of the iterative `I` rank).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Number of effectual (live, non-identity) operations.
    pub fn effectual_ops(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }
}

/// Levelizes the live portion of the graph.
pub fn levelize(graph: &Graph) -> Levelization {
    let order = graph.topo_order();
    let mut layer_of = vec![u32::MAX; graph.len()];
    // Availability layer of a node's value: 0 for sources, layer+1 for ops.
    let avail = |layer_of: &[u32], graph: &Graph, id: NodeId| -> u32 {
        let node = graph.node(id);
        if node.op.class() == OpClass::Source {
            0
        } else {
            debug_assert_ne!(layer_of[id.index()], u32::MAX, "operand not yet levelized");
            layer_of[id.index()] + 1
        }
    };
    let mut layers: Vec<Vec<NodeId>> = Vec::new();
    let mut identities = IdentityStats::default();
    for &id in &order {
        let node = graph.node(id);
        let layer = node
            .operands
            .iter()
            .map(|&o| avail(&layer_of, graph, o))
            .max()
            .unwrap_or(0);
        layer_of[id.index()] = layer;
        if layers.len() <= layer as usize {
            layers.resize_with(layer as usize + 1, Vec::new);
        }
        layers[layer as usize].push(id);
    }
    // Identity accounting (pre-elision).
    let depth = layers.len() as u32;
    for &id in &order {
        let node = graph.node(id);
        let layer = layer_of[id.index()];
        for &o in &node.operands {
            identities.edge_gap += (layer - avail(&layer_of, graph, o)) as usize;
        }
    }
    let mut carry = |id: NodeId| {
        let a = avail(&layer_of, graph, id);
        identities.carry_to_end += depth.saturating_sub(a) as usize;
    };
    for reg in &graph.regs {
        carry(reg.next);
    }
    for (_, out) in &graph.outputs {
        carry(*out);
    }
    Levelization {
        layers,
        layer_of,
        identities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build;
    use crate::op::DfgOp;
    use rteaal_firrtl::{lower::lower_typed, parser::parse};

    fn graph_of(src: &str) -> Graph {
        build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn paper_figure_11_layering() {
        // Figure 11: a graph where (reg2 - reg3) feeds both reg3 directly
        // and an & at a later layer, requiring an identity before elision.
        let g = graph_of(
            "\
circuit F :
  module F :
    input clock : Clock
    output o : UInt<8>
    reg reg1 : UInt<8>, clock
    reg reg2 : UInt<8>, clock
    reg reg3 : UInt<8>, clock
    node sum = tail(add(reg1, reg2), 1)
    node diff = tail(sub(reg2, reg3), 1)
    reg1 <= sum
    reg2 <= and(sum, diff)
    reg3 <= diff
    o <= reg1
",
        );
        let lv = levelize(&g);
        // add/sub at layer 0, their tails at layer 1, `and` at layer 2.
        assert_eq!(lv.depth(), 3);
        let and_id = g.iter().find(|(_, n)| n.op == DfgOp::And).unwrap().0;
        assert_eq!(lv.layer_of[and_id.index()], 2);
        // diff (tail at layer 1, avail 2) feeds reg3's writeback: carried
        // 3-2 = 1 layer; edges into `and` are same-layer so no gap there.
        assert!(lv.identities.total() > 0);
    }

    #[test]
    fn single_layer_design() {
        let g = graph_of(
            "\
circuit S :
  module S :
    input a : UInt<8>
    input b : UInt<8>
    output o : UInt<9>
    o <= add(a, b)
",
        );
        let lv = levelize(&g);
        assert_eq!(lv.depth(), 1);
        assert_eq!(lv.effectual_ops(), 1);
        assert_eq!(lv.identities.edge_gap, 0);
        assert_eq!(lv.identities.carry_to_end, 0); // avail 1 == depth 1
    }

    #[test]
    fn layers_respect_dependencies() {
        let g = graph_of(
            "\
circuit D :
  module D :
    input a : UInt<8>
    output o : UInt<8>
    node n1 = not(a)
    node n2 = not(n1)
    node n3 = not(n2)
    o <= n3
",
        );
        let lv = levelize(&g);
        assert_eq!(lv.depth(), 3);
        for layer in &lv.layers {
            assert_eq!(layer.len(), 1);
        }
    }

    #[test]
    fn identity_count_grows_with_skipped_layers() {
        // `a` (avail 0) is consumed at layer 2 -> 2 identities on that edge.
        let g = graph_of(
            "\
circuit I :
  module I :
    input a : UInt<8>
    output o : UInt<8>
    node n1 = not(a)
    node n2 = not(n1)
    o <= and(n2, a)
",
        );
        let lv = levelize(&g);
        let and_id = g.iter().find(|(_, n)| n.op == DfgOp::And).unwrap().0;
        assert_eq!(lv.layer_of[and_id.index()], 2);
        assert_eq!(lv.identities.edge_gap, 2);
    }

    #[test]
    fn identities_dominate_effectual_in_deep_designs() {
        // Deep chains with wide fan-out at the top mimic the Table 1
        // pattern: identity count far exceeds effectual ops.
        let mut src = String::from(
            "\
circuit Deep :
  module Deep :
    input a : UInt<8>
    output o : UInt<8>
",
        );
        src.push_str("    node n0 = not(a)\n");
        for i in 1..32 {
            src.push_str(&format!("    node n{i} = not(n{})\n", i - 1));
        }
        // Broad consumers of early values at the deepest layer: each such
        // edge needs an identity per skipped layer.
        src.push_str("    node c0 = and(n31, a)\n");
        src.push_str("    node c1 = or(c0, n0)\n");
        src.push_str("    o <= xor(c1, n1)\n");
        let g = graph_of(&src);
        let lv = levelize(&g);
        assert!(lv.identities.total() > lv.effectual_ops());
    }
}
