//! Plan-load-time kernel compilation: from interpreted [`OpInst`]s to
//! specialized lane kernels.
//!
//! The batched interpreter pays full dispatch tax in its inner loop:
//! [`OpInst::eval_lanes_ptr`] re-enters the 40-way `eval_raw` opcode match
//! and re-derives the canonicalization mask *per lane, per op, per cycle*,
//! which blocks autovectorization. This module lowers each [`OpInst`] into
//! a [`CompiledOp`] once, at plan-load time: a monomorphized
//! `unsafe fn(*mut u64, &KernelArgs, LaneWindow, &mut Vec<u64>)` chosen from a
//! per-(opcode × arity × signedness) kernel table, with the opcode
//! dispatch, operand base offsets, static parameters, and the
//! width/sign canonicalization all resolved up front and folded into a
//! stride-1 inner loop. Fixed-arity kernels run 4-lane-chunked bodies
//! whose branch-free arithmetic LLVM autovectorizes to `u64x4`/`u64x8`;
//! variable-arity operations (mux chains) fall back to a generic per-lane
//! kernel that still skips the re-dispatch of the interpreted path.
//!
//! Semantics are bit-identical to `eval_raw` + [`canonicalize`] per lane
//! by construction, and enforced by differential tests (unit tests here,
//! a proptest sweep in `tests/lane_kernel_props.rs`, and the whole-design
//! equivalence suite in the workspace `tests/`). The interpreted walk is
//! retained as the golden model — see [`BatchEngine`].
//!
//! ## Unsafe audit
//!
//! Every kernel here is an `unsafe fn` over a raw `*mut u64` matrix; the
//! single safety contract is documented on [`CompiledOp::eval_lanes_ptr`]
//! and threaded through [`KernelFn`], `run{1,2,3}`, and each generated
//! body as explicit `// SAFETY:` blocks (`unsafe_op_in_unsafe_fn` is
//! denied). The bounds side of the contract — every folded slot offset
//! `< num_slots` — is *proven statically* per design by
//! [`crate::analyze::analyze_compiled`] and mirrored dynamically by
//! `debug_assert!`s on the safe entry points.

#![deny(unsafe_op_in_unsafe_fn)]

use crate::op::{canonicalize, eval_raw, DfgOp};
use crate::plan::{OpInst, SimPlan};
use rteaal_firrtl::ty::mask;

/// Which executor a batch simulator walks its layers with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BatchEngine {
    /// Per-lane `eval_raw` dispatch (the differential-testing golden
    /// model).
    Interpreted,
    /// Pre-specialized lane kernels compiled by this module.
    #[default]
    Compiled,
}

/// The active window of a slot-major lane matrix: slot `s` occupies
/// `li[s * stride .. s * stride + stride]`, and kernels evaluate the
/// `active`-lane prefix of every row (lane-liveness early exit shrinks
/// `active` below `stride` as lanes finish).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneWindow {
    /// Row stride: total allocated lanes per slot.
    pub stride: usize,
    /// Evaluated prefix (`active <= stride`).
    pub active: usize,
}

impl LaneWindow {
    /// A window covering every allocated lane.
    pub fn full(lanes: usize) -> Self {
        LaneWindow {
            stride: lanes,
            active: lanes,
        }
    }
}

/// Pre-resolved arguments of one compiled operation: everything the
/// interpreted path re-derived per lane, folded once at compile time.
#[derive(Debug, Clone)]
pub struct KernelArgs {
    /// Output slot.
    out: u32,
    /// First three operand slots (unused trail as 0; the kernel arity
    /// decides how many are read).
    a: u32,
    b: u32,
    c: u32,
    /// Static parameters 0/1 (bit indices, widths, shift amounts; for
    /// `Const`, `p0` holds the already-canonicalized value).
    p0: u64,
    p1: u64,
    /// Result width mask (unsigned canonicalization).
    msk: u64,
    /// `64 - width` (signed canonicalization shift).
    sh: u32,
    /// Opcode, for the generic fallback kernel.
    n: u16,
    /// Result signedness, for the generic fallback kernel (specialized
    /// kernels bake it into their function identity).
    signed: bool,
    /// Variable-arity payload — allocated only for ops the generic
    /// fallback serves (mux chains); specialized kernels never read it.
    var: Option<Box<VarArgs>>,
    /// Highest `LI` slot this op references (output or any operand) —
    /// the bound the static verifier proves and the safe entry points
    /// `debug_assert!`.
    max_slot: u32,
}

/// Full operand slot and parameter lists for the generic fallback
/// kernel.
#[derive(Debug, Clone)]
struct VarArgs {
    ins: Box<[u32]>,
    params: Box<[u64]>,
}

/// A specialized lane kernel: evaluates one operation over the active
/// lanes of a slot-major `LI` matrix. The final argument is a reusable
/// operand-staging scratch buffer only the variable-arity fallback
/// touches (threaded through so the hot loop never allocates).
///
/// # Safety
///
/// The contract every `KernelFn` body relies on (identical to
/// [`CompiledOp::eval_lanes_ptr`]; callers must uphold all three):
///
/// 1. the pointer addresses a live slot-major matrix of `w.stride` lanes
///    per slot with at least `KernelArgs::max_slot + 1` rows, so every
///    folded offset `slot * w.stride + lane` is in bounds;
/// 2. `w.active <= w.stride`, so the evaluated lane prefix never leaves
///    its row;
/// 3. no other thread concurrently accesses the output row or mutates an
///    operand row for the duration of the call.
///
/// (1) is exactly what [`crate::analyze::analyze_compiled`] proves per
/// design against the plan's `num_slots`.
pub type KernelFn = unsafe fn(*mut u64, &KernelArgs, LaneWindow, &mut Vec<u64>);

/// Unsigned canonicalization folded into a kernel body.
#[inline(always)]
fn cu(raw: u64, args: &KernelArgs) -> u64 {
    raw & args.msk
}

/// Signed canonicalization folded into a kernel body:
/// `sext(raw & mask, width)` as two shifts.
#[inline(always)]
fn cs(raw: u64, args: &KernelArgs) -> u64 {
    (((raw & args.msk) << args.sh) as i64 >> args.sh) as u64
}

/// Runs a unary body over the active lanes, 4-lane-chunked so branch-free
/// bodies autovectorize.
///
/// # Safety
///
/// As [`CompiledOp::eval_lanes_ptr`].
#[inline(always)]
unsafe fn run1(li: *mut u64, args: &KernelArgs, w: LaneWindow, f: impl Fn(u64) -> u64) {
    debug_assert!(w.active <= w.stride, "lane window outgrew its stride");
    debug_assert!(args.a <= args.max_slot && args.out <= args.max_slot);
    // SAFETY: per the `KernelFn` contract, `li` spans `>= max_slot + 1`
    // rows of `w.stride` lanes and `out`/`a` are `<= max_slot`, so every
    // `row + lane` offset below (`lane < w.active <= w.stride`) stays in
    // bounds; the output row is exclusively ours for the call.
    unsafe {
        let out = li.add(args.out as usize * w.stride);
        let pa = li.add(args.a as usize * w.stride);
        let n = w.active;
        let mut lane = 0;
        while lane + 4 <= n {
            let r0 = f(*pa.add(lane));
            let r1 = f(*pa.add(lane + 1));
            let r2 = f(*pa.add(lane + 2));
            let r3 = f(*pa.add(lane + 3));
            *out.add(lane) = r0;
            *out.add(lane + 1) = r1;
            *out.add(lane + 2) = r2;
            *out.add(lane + 3) = r3;
            lane += 4;
        }
        while lane < n {
            *out.add(lane) = f(*pa.add(lane));
            lane += 1;
        }
    }
}

/// Runs a binary body over the active lanes, 4-lane-chunked.
///
/// # Safety
///
/// As [`CompiledOp::eval_lanes_ptr`].
#[inline(always)]
unsafe fn run2(li: *mut u64, args: &KernelArgs, w: LaneWindow, f: impl Fn(u64, u64) -> u64) {
    debug_assert!(w.active <= w.stride, "lane window outgrew its stride");
    debug_assert!(args.a.max(args.b) <= args.max_slot && args.out <= args.max_slot);
    // SAFETY: as `run1` — all three rows are `<= max_slot`, lanes stay
    // below `w.stride`, and the output row is exclusively ours.
    unsafe {
        let out = li.add(args.out as usize * w.stride);
        let pa = li.add(args.a as usize * w.stride);
        let pb = li.add(args.b as usize * w.stride);
        let n = w.active;
        let mut lane = 0;
        while lane + 4 <= n {
            let r0 = f(*pa.add(lane), *pb.add(lane));
            let r1 = f(*pa.add(lane + 1), *pb.add(lane + 1));
            let r2 = f(*pa.add(lane + 2), *pb.add(lane + 2));
            let r3 = f(*pa.add(lane + 3), *pb.add(lane + 3));
            *out.add(lane) = r0;
            *out.add(lane + 1) = r1;
            *out.add(lane + 2) = r2;
            *out.add(lane + 3) = r3;
            lane += 4;
        }
        while lane < n {
            *out.add(lane) = f(*pa.add(lane), *pb.add(lane));
            lane += 1;
        }
    }
}

/// Runs a ternary body over the active lanes, 4-lane-chunked.
///
/// # Safety
///
/// As [`CompiledOp::eval_lanes_ptr`].
#[inline(always)]
unsafe fn run3(li: *mut u64, args: &KernelArgs, w: LaneWindow, f: impl Fn(u64, u64, u64) -> u64) {
    debug_assert!(w.active <= w.stride, "lane window outgrew its stride");
    debug_assert!(args.a.max(args.b).max(args.c) <= args.max_slot && args.out <= args.max_slot);
    // SAFETY: as `run1` — all four rows are `<= max_slot`, lanes stay
    // below `w.stride`, and the output row is exclusively ours.
    unsafe {
        let out = li.add(args.out as usize * w.stride);
        let pa = li.add(args.a as usize * w.stride);
        let pb = li.add(args.b as usize * w.stride);
        let pc = li.add(args.c as usize * w.stride);
        let n = w.active;
        let mut lane = 0;
        while lane + 4 <= n {
            let r0 = f(*pa.add(lane), *pb.add(lane), *pc.add(lane));
            let r1 = f(*pa.add(lane + 1), *pb.add(lane + 1), *pc.add(lane + 1));
            let r2 = f(*pa.add(lane + 2), *pb.add(lane + 2), *pc.add(lane + 2));
            let r3 = f(*pa.add(lane + 3), *pb.add(lane + 3), *pc.add(lane + 3));
            *out.add(lane) = r0;
            *out.add(lane + 1) = r1;
            *out.add(lane + 2) = r2;
            *out.add(lane + 3) = r3;
            lane += 4;
        }
        while lane < n {
            *out.add(lane) = f(*pa.add(lane), *pb.add(lane), *pc.add(lane));
            lane += 1;
        }
    }
}

/// Generates the unsigned/signed kernel pair for a unary body.
macro_rules! unary_kernels {
    ($($un:ident, $sn:ident: |$a:ident, $g:ident| $body:expr;)*) => {$(
        /// # Safety
        /// As [`CompiledOp::eval_lanes_ptr`].
        unsafe fn $un(li: *mut u64, args: &KernelArgs, w: LaneWindow, _scratch: &mut Vec<u64>) {
            let $g = args;
            // SAFETY: forwarding the caller's `KernelFn` contract intact.
            unsafe { run1(li, args, w, |$a| cu($body, $g)) };
        }
        /// # Safety
        /// As [`CompiledOp::eval_lanes_ptr`].
        unsafe fn $sn(li: *mut u64, args: &KernelArgs, w: LaneWindow, _scratch: &mut Vec<u64>) {
            let $g = args;
            // SAFETY: forwarding the caller's `KernelFn` contract intact.
            unsafe { run1(li, args, w, |$a| cs($body, $g)) };
        }
    )*};
}

/// Generates the unsigned/signed kernel pair for a binary body.
macro_rules! binary_kernels {
    ($($un:ident, $sn:ident: |$a:ident, $b:ident, $g:ident| $body:expr;)*) => {$(
        /// # Safety
        /// As [`CompiledOp::eval_lanes_ptr`].
        unsafe fn $un(li: *mut u64, args: &KernelArgs, w: LaneWindow, _scratch: &mut Vec<u64>) {
            let $g = args;
            // SAFETY: forwarding the caller's `KernelFn` contract intact.
            unsafe { run2(li, args, w, |$a, $b| cu($body, $g)) };
        }
        /// # Safety
        /// As [`CompiledOp::eval_lanes_ptr`].
        unsafe fn $sn(li: *mut u64, args: &KernelArgs, w: LaneWindow, _scratch: &mut Vec<u64>) {
            let $g = args;
            // SAFETY: forwarding the caller's `KernelFn` contract intact.
            unsafe { run2(li, args, w, |$a, $b| cs($body, $g)) };
        }
    )*};
}

// The bodies mirror `eval_raw` case-for-case, rewritten branch-free where
// the interpreted form branches (dynamic shifts, selects) so the chunked
// loops vectorize. Equivalence with `eval_raw` is asserted per opcode by
// the differential tests.
binary_kernels! {
    k_add_u, k_add_s: |a, b, _g| a.wrapping_add(b);
    k_sub_u, k_sub_s: |a, b, _g| a.wrapping_sub(b);
    k_mul_u, k_mul_s: |a, b, _g| a.wrapping_mul(b);
    k_divu_u, k_divu_s: |a, b, _g| a.checked_div(b).unwrap_or(0);
    k_divs_u, k_divs_s: |a, b, _g| if b == 0 {
        0
    } else {
        (a as i64).wrapping_div(b as i64) as u64
    };
    k_remu_u, k_remu_s: |a, b, _g| if b == 0 { 0 } else { a % b };
    k_rems_u, k_rems_s: |a, b, _g| if b == 0 {
        0
    } else {
        (a as i64).wrapping_rem(b as i64) as u64
    };
    k_and_u, k_and_s: |a, b, _g| a & b;
    k_or_u, k_or_s: |a, b, _g| a | b;
    k_xor_u, k_xor_s: |a, b, _g| a ^ b;
    k_ltu_u, k_ltu_s: |a, b, _g| (a < b) as u64;
    k_lts_u, k_lts_s: |a, b, _g| ((a as i64) < (b as i64)) as u64;
    k_leu_u, k_leu_s: |a, b, _g| (a <= b) as u64;
    k_les_u, k_les_s: |a, b, _g| ((a as i64) <= (b as i64)) as u64;
    k_gtu_u, k_gtu_s: |a, b, _g| (a > b) as u64;
    k_gts_u, k_gts_s: |a, b, _g| ((a as i64) > (b as i64)) as u64;
    k_geu_u, k_geu_s: |a, b, _g| (a >= b) as u64;
    k_ges_u, k_ges_s: |a, b, _g| ((a as i64) >= (b as i64)) as u64;
    k_eq_u, k_eq_s: |a, b, _g| (a == b) as u64;
    k_neq_u, k_neq_s: |a, b, _g| (a != b) as u64;
    // Branch-free out-of-range guard: `(b < 64)` widens to an all-ones /
    // all-zeros mask, so the lane loop stays a straight select.
    k_dshl_u, k_dshl_s: |a, b, _g| (a << (b & 63)) & ((b < 64) as u64).wrapping_neg();
    k_dshr_u, k_dshr_s: |a, b, _g| ((a as i64) >> b.min(63)) as u64;
    k_cat_u, k_cat_s: |a, b, g| {
        // p0/p1 = operand widths, truncated to u32 exactly as eval_raw
        // does; wb >= 64 passes b through.
        let (wa, wb) = (g.p0 as u32, g.p1 as u32);
        if wb >= 64 {
            b
        } else {
            ((a & mask(wa)) << wb) | (b & mask(wb))
        }
    };
    k_validif_u, k_validif_s: |a, b, _g| if a != 0 { b } else { 0 };
}

unary_kernels! {
    k_not_u, k_not_s: |a, _g| !a;
    k_neg_u, k_neg_s: |a, _g| a.wrapping_neg();
    // p0 = operand width for the reductions.
    k_andr_u, k_andr_s: |a, g| ((a & mask(g.p0 as u32)) == mask(g.p0 as u32)) as u64;
    k_orr_u, k_orr_s: |a, _g| (a != 0) as u64;
    k_xorr_u, k_xorr_s: |a, g| ((a & mask(g.p0 as u32)).count_ones() & 1) as u64;
    k_shl_u, k_shl_s: |a, g| {
        let n = g.p0 as u32; // eval_raw truncates before the range check
        (a << (n & 63)) & ((n < 64) as u64).wrapping_neg()
    };
    k_shr_u, k_shr_s: |a, g| ((a as i64) >> (g.p0 as u32).min(63)) as u64;
    // p0/p1 = hi/lo bit indices.
    k_bits_u, k_bits_s: |a, g| (a >> g.p1) & mask((g.p0 - g.p1 + 1) as u32);
    // p0/p1 = n/operand width.
    k_head_u, k_head_s: |a, g| (a & mask(g.p1 as u32)) >> (g.p1 - g.p0);
    k_resize_u, k_resize_s: |a, _g| a;
}

/// Mux kernels (the one ternary op): branch-free select bodies.
///
/// # Safety
///
/// As [`CompiledOp::eval_lanes_ptr`].
unsafe fn k_mux_u(li: *mut u64, args: &KernelArgs, w: LaneWindow, _scratch: &mut Vec<u64>) {
    // SAFETY: forwarding the caller's `KernelFn` contract intact.
    unsafe { run3(li, args, w, |c, t, f| cu(if c != 0 { t } else { f }, args)) };
}

/// # Safety
/// As [`CompiledOp::eval_lanes_ptr`].
unsafe fn k_mux_s(li: *mut u64, args: &KernelArgs, w: LaneWindow, _scratch: &mut Vec<u64>) {
    // SAFETY: forwarding the caller's `KernelFn` contract intact.
    unsafe { run3(li, args, w, |c, t, f| cs(if c != 0 { t } else { f }, args)) };
}

/// Constant kernel: `p0` already holds the canonical value, so the row is
/// a plain fill.
///
/// # Safety
///
/// As [`CompiledOp::eval_lanes_ptr`].
unsafe fn k_const(li: *mut u64, args: &KernelArgs, w: LaneWindow, _scratch: &mut Vec<u64>) {
    debug_assert!(w.active <= w.stride, "lane window outgrew its stride");
    // SAFETY: per the `KernelFn` contract the output row `args.out <=
    // max_slot` is in bounds and exclusively ours; `lane < w.active <=
    // w.stride` keeps the fill inside the row.
    unsafe {
        let out = li.add(args.out as usize * w.stride);
        for lane in 0..w.active {
            *out.add(lane) = args.p0;
        }
    }
}

/// Generic fallback for variable-arity operations (mux chains): stages
/// operands per lane into the caller's scratch buffer, but with the
/// opcode, params, and canonicalization already resolved — no
/// re-dispatch through the 40-way match per lane, and no allocation in
/// the hot loop.
///
/// # Safety
///
/// As [`CompiledOp::eval_lanes_ptr`].
unsafe fn k_generic(li: *mut u64, args: &KernelArgs, w: LaneWindow, scratch: &mut Vec<u64>) {
    debug_assert!(w.active <= w.stride, "lane window outgrew its stride");
    let op = DfgOp::from_n_coord(args.n).expect("valid opcode");
    let var = args.var.as_deref().expect("generic kernel has var payload");
    debug_assert!(var.ins.iter().all(|&r| r <= args.max_slot));
    // SAFETY: per the `KernelFn` contract every slot in `var.ins` and
    // `args.out` is `<= max_slot`, so each `slot * w.stride + lane`
    // offset (`lane < w.active <= w.stride`) is in bounds; the output
    // row is exclusively ours for the call.
    unsafe {
        let out = li.add(args.out as usize * w.stride);
        for lane in 0..w.active {
            scratch.clear();
            scratch.extend(
                var.ins
                    .iter()
                    .map(|&r| *li.add(r as usize * w.stride + lane)),
            );
            let raw = eval_raw(op, &var.params, scratch);
            *out.add(lane) = if args.signed {
                cs(raw, args)
            } else {
                cu(raw, args)
            };
        }
    }
}

/// Looks up the specialized kernel for an opcode/arity/signedness triple.
/// Returns `None` for combinations only the generic fallback serves
/// (variable arity).
fn kernel_table(op: DfgOp, arity: usize, signed: bool) -> Option<KernelFn> {
    use DfgOp::*;
    macro_rules! pick {
        ($u:ident, $s:ident) => {
            Some(if signed { $s } else { $u })
        };
    }
    match (op, arity) {
        (Const, 0) => Some(k_const),
        (Add, 2) => pick!(k_add_u, k_add_s),
        (Sub, 2) => pick!(k_sub_u, k_sub_s),
        (Mul, 2) => pick!(k_mul_u, k_mul_s),
        (Divu, 2) => pick!(k_divu_u, k_divu_s),
        (Divs, 2) => pick!(k_divs_u, k_divs_s),
        (Remu, 2) => pick!(k_remu_u, k_remu_s),
        (Rems, 2) => pick!(k_rems_u, k_rems_s),
        (And, 2) => pick!(k_and_u, k_and_s),
        (Or, 2) => pick!(k_or_u, k_or_s),
        (Xor, 2) => pick!(k_xor_u, k_xor_s),
        (Ltu, 2) => pick!(k_ltu_u, k_ltu_s),
        (Lts, 2) => pick!(k_lts_u, k_lts_s),
        (Leu, 2) => pick!(k_leu_u, k_leu_s),
        (Les, 2) => pick!(k_les_u, k_les_s),
        (Gtu, 2) => pick!(k_gtu_u, k_gtu_s),
        (Gts, 2) => pick!(k_gts_u, k_gts_s),
        (Geu, 2) => pick!(k_geu_u, k_geu_s),
        (Ges, 2) => pick!(k_ges_u, k_ges_s),
        (Eq, 2) => pick!(k_eq_u, k_eq_s),
        (Neq, 2) => pick!(k_neq_u, k_neq_s),
        (Dshl, 2) => pick!(k_dshl_u, k_dshl_s),
        (Dshr, 2) => pick!(k_dshr_u, k_dshr_s),
        (Cat, 2) => pick!(k_cat_u, k_cat_s),
        (ValidIf, 2) => pick!(k_validif_u, k_validif_s),
        (Not, 1) => pick!(k_not_u, k_not_s),
        (Neg, 1) => pick!(k_neg_u, k_neg_s),
        (Andr, 1) => pick!(k_andr_u, k_andr_s),
        (Orr, 1) => pick!(k_orr_u, k_orr_s),
        (Xorr, 1) => pick!(k_xorr_u, k_xorr_s),
        (Shl, 1) => pick!(k_shl_u, k_shl_s),
        (Shr, 1) => pick!(k_shr_u, k_shr_s),
        (Bits, 1) => pick!(k_bits_u, k_bits_s),
        (Head, 1) => pick!(k_head_u, k_head_s),
        (Resize, 1) | (Identity, 1) => pick!(k_resize_u, k_resize_s),
        (Mux, 3) => pick!(k_mux_u, k_mux_s),
        _ => None,
    }
}

/// One operation compiled to a specialized lane kernel: the executable
/// form of an [`OpInst`].
#[derive(Debug, Clone)]
pub struct CompiledOp {
    kernel: KernelFn,
    args: KernelArgs,
}

impl CompiledOp {
    /// Compiles an operation instance: resolves the kernel from the
    /// per-(opcode × arity × signedness) table and folds operand offsets,
    /// parameters, and the canonicalization mask into [`KernelArgs`].
    ///
    /// # Panics
    ///
    /// Panics on source ops ([`DfgOp::Input`], [`DfgOp::RegState`]) — they
    /// are never scheduled into layers and have no evaluation semantics.
    pub fn compile(op: &OpInst) -> CompiledOp {
        let d = op.op();
        assert!(
            !matches!(d, DfgOp::Input | DfgOp::RegState),
            "source op {d} is not compilable"
        );
        let width = (op.width as u32).clamp(1, 64);
        let p0 = op.params.first().copied().unwrap_or(0);
        let specialized = kernel_table(d, op.ins.len(), op.signed);
        let max_slot = op
            .ins
            .iter()
            .copied()
            .chain(std::iter::once(op.out))
            .max()
            .expect("chain is non-empty");
        let args = KernelArgs {
            out: op.out,
            a: op.ins.first().copied().unwrap_or(0),
            b: op.ins.get(1).copied().unwrap_or(0),
            c: op.ins.get(2).copied().unwrap_or(0),
            p0: if d == DfgOp::Const {
                canonicalize(p0, width, op.signed)
            } else {
                p0
            },
            p1: op.params.get(1).copied().unwrap_or(0),
            msk: mask(width),
            sh: 64 - width,
            n: op.n,
            signed: op.signed,
            max_slot,
            var: if specialized.is_some() {
                None
            } else {
                Some(Box::new(VarArgs {
                    ins: op.ins.clone().into_boxed_slice(),
                    params: op.params.clone().into_boxed_slice(),
                }))
            },
        };
        let kernel = specialized.unwrap_or(k_generic);
        CompiledOp { kernel, args }
    }

    /// Output slot this kernel writes.
    pub fn out_slot(&self) -> u32 {
        self.args.out
    }

    /// Decoded opcode, or `None` if the folded coordinate is corrupt.
    pub fn opcode(&self) -> Option<DfgOp> {
        DfgOp::from_n_coord(self.args.n)
    }

    /// Operand slots this kernel reads, in operand order.
    pub fn operand_slots(&self) -> Vec<u32> {
        if let Some(var) = self.args.var.as_deref() {
            return var.ins.to_vec();
        }
        let arity = self.opcode().and_then(|d| d.arity()).unwrap_or(0).min(3);
        [self.args.a, self.args.b, self.args.c][..arity].to_vec()
    }

    /// Folded canonicalization mask.
    pub fn mask(&self) -> u64 {
        self.args.msk
    }

    /// Folded sign-extension shift (`64 - width`).
    pub fn shift(&self) -> u32 {
        self.args.sh
    }

    /// Whether the op canonicalizes as a signed value.
    pub fn is_signed(&self) -> bool {
        self.args.signed
    }

    /// Highest LI slot this kernel reads or writes.
    pub fn max_slot(&self) -> u32 {
        self.args.max_slot
    }

    /// Evaluates over the active window of a slot-major `LI` matrix
    /// through a raw pointer — the layer-parallel engine's entry point.
    ///
    /// # Safety
    ///
    /// `li` must point to a live slot-major matrix of `w.stride` lanes
    /// per slot covering every slot this op references, `w.active <=
    /// w.stride`, and no other thread may concurrently access the op's
    /// output row or mutate its operand rows for the duration of the
    /// call. (Within one levelized layer, output rows are disjoint per op
    /// and operand rows come from earlier layers, so layer-barriered
    /// workers satisfy this.)
    #[inline]
    pub unsafe fn eval_lanes_ptr(&self, li: *mut u64, w: LaneWindow, scratch: &mut Vec<u64>) {
        debug_assert!(w.active <= w.stride, "lane window outgrew its stride");
        // SAFETY: the caller upholds this method's contract, which is
        // exactly the `KernelFn` contract the folded kernel requires.
        unsafe { (self.kernel)(li, &self.args, w, scratch) };
    }

    /// Evaluates over the active window of an exclusively borrowed `LI`
    /// matrix.
    #[inline]
    pub fn eval_lanes(&self, li: &mut [u64], w: LaneWindow, scratch: &mut Vec<u64>) {
        debug_assert!(w.active <= w.stride);
        debug_assert!(
            li.len() >= (self.args.max_slot as usize + 1) * w.stride,
            "LI matrix does not cover slot {}",
            self.args.max_slot
        );
        // SAFETY: an exclusive borrow covers the whole matrix, and the
        // debug-checked length bound is what `analyze_compiled` proves
        // statically for verifier-clean plans.
        unsafe { self.eval_lanes_ptr(li.as_mut_ptr(), w, scratch) }
    }
}

/// One layer of compiled operations (independent within the layer, as
/// guaranteed by levelization).
pub type CompiledLayer = Vec<CompiledOp>;

/// Compiles every layer of a plan. Layer and op order are preserved, so
/// swizzled traversals can compile their own reordered layer lists with
/// [`compile_layer`].
pub fn compile_plan(plan: &SimPlan) -> Vec<CompiledLayer> {
    plan.layers.iter().map(|l| compile_layer(l)).collect()
}

/// Compiles one layer's operations in order.
pub fn compile_layer(layer: &[OpInst]) -> CompiledLayer {
    layer.iter().map(CompiledOp::compile).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::ALL_OPS;

    /// Builds an `OpInst` with operands in slots `1..=arity` and output
    /// in slot 0.
    fn inst(op: DfgOp, arity: usize, params: Vec<u64>, width: u8, signed: bool) -> OpInst {
        OpInst {
            n: op.n_coord(),
            out: 0,
            ins: (1..=arity as u32).collect(),
            params,
            width,
            signed,
        }
    }

    /// Asserts the compiled kernel matches `eval_raw` + `canonicalize`
    /// lane-for-lane on a fixed stimulus matrix, for full and partial
    /// windows.
    fn assert_matches_interpreter(op: &OpInst, lanes: usize) {
        let compiled = CompiledOp::compile(op);
        let slots = (op.ins.iter().copied().max().unwrap_or(0).max(op.out) + 1) as usize;
        let mut li: Vec<u64> = (0..slots * lanes)
            .map(|i| {
                (i as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(0x1234_5678_9abc_def0)
            })
            .collect();
        for active in [lanes, lanes / 2, 1] {
            let mut got = li.clone();
            compiled.eval_lanes(
                &mut got,
                LaneWindow {
                    stride: lanes,
                    active,
                },
                &mut Vec::new(),
            );
            let mut want = li.clone();
            let mut ins = Vec::new();
            for lane in 0..active {
                ins.clear();
                ins.extend(op.ins.iter().map(|&r| want[r as usize * lanes + lane]));
                let raw = eval_raw(op.op(), &op.params, &ins);
                want[op.out as usize * lanes + lane] =
                    canonicalize(raw, op.width as u32, op.signed);
            }
            assert_eq!(got, want, "op {} active {active}", op.op());
            li.rotate_left(1); // fresh-ish data for the next window
        }
    }

    #[test]
    fn every_evaluable_opcode_matches_eval_raw() {
        for &op in &ALL_OPS {
            if matches!(op, DfgOp::Input | DfgOp::RegState) {
                continue;
            }
            let (arity, params) = match op {
                DfgOp::Const => (0, vec![0xdead_beef_cafe]),
                DfgOp::Andr | DfgOp::Orr | DfgOp::Xorr => (1, vec![13]),
                DfgOp::Shl | DfgOp::Shr => (1, vec![7]),
                DfgOp::Bits => (1, vec![9, 3]),
                DfgOp::Head => (1, vec![4, 11]),
                DfgOp::Cat => (2, vec![9, 6]),
                DfgOp::MuxChain => (7, vec![]),
                _ => (op.arity().unwrap(), vec![]),
            };
            for (width, signed) in [(1, false), (13, false), (13, true), (64, false), (64, true)] {
                assert_matches_interpreter(&inst(op, arity, params.clone(), width, signed), 9);
            }
        }
    }

    #[test]
    fn dynamic_shift_guards_match_at_extreme_amounts() {
        // The branch-free dshl/shl guard must agree with eval_raw's
        // branching form for shift amounts straddling and far past 64.
        for shift in [0u64, 1, 63, 64, 65, 127, 128, u64::MAX] {
            let op = inst(DfgOp::Dshl, 2, vec![], 64, false);
            let compiled = CompiledOp::compile(&op);
            let mut li = vec![0u64; 3];
            li[1] = 0xf0f0_f0f0_f0f0_f0f0;
            li[2] = shift;
            compiled.eval_lanes(&mut li, LaneWindow::full(1), &mut Vec::new());
            assert_eq!(
                li[0],
                eval_raw(DfgOp::Dshl, &[], &[li[1], li[2]]),
                "{shift}"
            );
        }
    }

    #[test]
    fn const_kernel_fills_the_canonical_value() {
        let op = inst(DfgOp::Const, 0, vec![0b1100], 4, true);
        let compiled = CompiledOp::compile(&op);
        let mut li = vec![0u64; 5];
        compiled.eval_lanes(&mut li, LaneWindow::full(5), &mut Vec::new());
        assert_eq!(li, vec![(-4i64) as u64; 5]);
    }

    #[test]
    fn partial_window_leaves_tail_lanes_untouched() {
        let op = inst(DfgOp::Not, 1, vec![], 8, false);
        let compiled = CompiledOp::compile(&op);
        let mut li = vec![0u64; 12];
        li[6..12].copy_from_slice(&[1, 2, 3, 4, 5, 6]);
        compiled.eval_lanes(
            &mut li,
            LaneWindow {
                stride: 6,
                active: 4,
            },
            &mut Vec::new(),
        );
        assert_eq!(&li[0..4], &[0xfe, 0xfd, 0xfc, 0xfb]);
        assert_eq!(&li[4..6], &[0, 0], "tail of the output row untouched");
    }

    #[test]
    #[should_panic(expected = "not compilable")]
    fn sources_are_not_compilable() {
        CompiledOp::compile(&inst(DfgOp::Input, 0, vec![], 8, false));
    }

    #[test]
    fn kernel_table_covers_every_fixed_arity_opcode() {
        for &op in &ALL_OPS {
            if matches!(op, DfgOp::Input | DfgOp::RegState | DfgOp::MuxChain) {
                continue;
            }
            let arity = op.arity().unwrap();
            for signed in [false, true] {
                assert!(
                    kernel_table(op, arity, signed).is_some(),
                    "no specialized kernel for {op} arity {arity} signed {signed}"
                );
            }
        }
        assert!(kernel_table(DfgOp::MuxChain, 5, false).is_none());
    }
}
