//! Static plan verifier: structural invariants of [`SimPlan`],
//! [`PartitionedPlan`], and compiled kernel tables, checked ahead of
//! execution and reported as typed [`Diagnostic`]s instead of panics.
//!
//! The pipeline's correctness was previously established only
//! *dynamically* — by running jobs and comparing against the interpreted
//! golden model. This module turns the invariants every execution layer
//! relies on into machine-checked facts with named-signal diagnostics:
//!
//! 1. **Schedule legality** — every operand of a layer-`L` op is produced
//!    at a strictly earlier layer or is a register/input/constant slot,
//!    each slot is written at most once per cycle (SSA within the cycle),
//!    and the commit list is alias-free in the sense
//!    [`split_commits`](crate::plan::split_commits) assumes (no two
//!    commits target the same register).
//! 2. **Combinational-cycle detection** ([`analyze_graph`]) with a
//!    named-signal cycle trace — a cyclic graph previously panicked deep
//!    inside levelization.
//! 3. **RUM coverage and single ownership** ([`analyze_partitioned`]) —
//!    every replicated register has exactly one owner, every
//!    cross-partition reader appears in its [`RumEntry`], and no
//!    partition commits a register it doesn't own.
//! 4. **Kernel-table consistency** ([`analyze_compiled`]) — every
//!    [`CompiledOp`]'s folded operand offsets are in-bounds for the `LI`
//!    tensor and its mask/shift matches the declared width/sign, making
//!    the `unsafe fn(*mut u64, ...)` kernels provably in-bounds by
//!    construction.
//! 5. **Dataflow analyses** — undriven-slot (uninitialized) reads,
//!    dead-op and never-toggling-signal detection, and a fan-in-weighted
//!    static activity estimate per layer, exported as [`AnalysisStats`].
//!
//! `rteaal_core::Compiler` runs [`analyze_design`] on every compile and
//! turns `Error`-level findings into a structured compile error;
//! `rteaal-serve` re-runs the partition checks at registration time and
//! surfaces the per-design [`AnalysisStats`] over the wire; `tables --
//! lint` sweeps the whole design corpus plus seeded-violation mutants.

use crate::graph::Graph;
use crate::lane_kernel::{compile_plan, CompiledLayer};
use crate::op::{DfgOp, OpClass};
use crate::partition::PartitionedPlan;
use crate::plan::SimPlan;
use rteaal_firrtl::ty::mask;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// How bad a finding is. `Error` means the plan must not be executed
/// (an engine invariant is broken); `Warn` flags suspicious but runnable
/// structure; `Info` is attribution data (e.g. never-toggling signals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Attribution / statistics finding; execution is unaffected.
    Info,
    /// Suspicious structure that still executes deterministically.
    Warn,
    /// Broken invariant: executing this plan would be unsound.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// The class of invariant a [`Diagnostic`] reports against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiagKind {
    /// A slot reference (operand, output, probe, commit, ...) is outside
    /// `[0, num_slots)` or `init_values` disagrees with `num_slots`.
    SlotOutOfBounds,
    /// An op reads a slot produced in its own or a later layer.
    UseBeforeDef,
    /// Two layer ops write the same slot in one cycle (SSA violation).
    DuplicateWrite,
    /// A layer op writes a register/input/constant slot directly,
    /// bypassing commit semantics.
    SourceOverwrite,
    /// An `OpInst` carries an opcode coordinate with no [`DfgOp`], a
    /// source opcode scheduled into a layer, or an operand count that
    /// contradicts the opcode's arity.
    MalformedOp,
    /// A commit references an out-of-range slot.
    CommitOutOfBounds,
    /// Two commits target the same register slot — the staging split in
    /// [`split_commits`](crate::plan::split_commits) assumes this never
    /// happens, so commit order would become observable.
    CommitAlias,
    /// A combinational cycle; the message carries the named-signal trace.
    CombCycle,
    /// The RUM's shape disagrees with the plan (entry count, slot pairing,
    /// or partition indices out of range).
    RumShapeMismatch,
    /// A RUM entry names an owner that does not commit the register, or
    /// lists the owner among its readers.
    RumOwnerMismatch,
    /// A partition commits a register it does not own, a register is
    /// committed by zero or multiple partitions, or a partition commits a
    /// pair absent from the plan.
    ForeignCommit,
    /// A partition reads a register replica without appearing in that
    /// register's [`RumEntry::readers`] — it would see stale values.
    MissingRumReader,
    /// A RUM entry lists a reader that never reads the register
    /// (harmless but wasteful exchange traffic).
    ExtraRumReader,
    /// A plan op appears in no partition at its original layer, or a
    /// partition schedules an op the plan's layer does not contain.
    UncoveredOp,
    /// `home[slot]` names a partition that does not compute/own the slot.
    HomeMismatch,
    /// The compiled kernel table's shape disagrees with the plan (layer
    /// or op counts, output slot, operand slots, opcode).
    KernelShapeMismatch,
    /// A compiled kernel's folded operand/output offset is outside the
    /// `LI` tensor.
    KernelOutOfBounds,
    /// A compiled kernel's folded mask/shift/signedness disagrees with
    /// the op's declared width/sign.
    KernelCanonMismatch,
    /// An op reads a slot that nothing ever drives (not an input, not a
    /// constant, not a committed register, not an op output) — it holds
    /// its power-on value forever.
    UninitRead,
    /// An op whose result reaches no output, probe, or register commit.
    DeadOp,
    /// A signal that constant-propagation proves can never toggle.
    NeverToggles,
}

impl fmt::Display for DiagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DiagKind::SlotOutOfBounds => "slot-out-of-bounds",
            DiagKind::UseBeforeDef => "use-before-def",
            DiagKind::DuplicateWrite => "duplicate-write",
            DiagKind::SourceOverwrite => "source-overwrite",
            DiagKind::MalformedOp => "malformed-op",
            DiagKind::CommitOutOfBounds => "commit-out-of-bounds",
            DiagKind::CommitAlias => "commit-alias",
            DiagKind::CombCycle => "comb-cycle",
            DiagKind::RumShapeMismatch => "rum-shape-mismatch",
            DiagKind::RumOwnerMismatch => "rum-owner-mismatch",
            DiagKind::ForeignCommit => "foreign-commit",
            DiagKind::MissingRumReader => "missing-rum-reader",
            DiagKind::ExtraRumReader => "extra-rum-reader",
            DiagKind::UncoveredOp => "uncovered-op",
            DiagKind::HomeMismatch => "home-mismatch",
            DiagKind::KernelShapeMismatch => "kernel-shape-mismatch",
            DiagKind::KernelOutOfBounds => "kernel-out-of-bounds",
            DiagKind::KernelCanonMismatch => "kernel-canon-mismatch",
            DiagKind::UninitRead => "uninit-read",
            DiagKind::DeadOp => "dead-op",
            DiagKind::NeverToggles => "never-toggles",
        })
    }
}

/// One verifier finding, locatable by signal name, layer, op index,
/// partition, and/or slot (whichever apply).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Which invariant class it reports against.
    pub kind: DiagKind,
    /// Human-readable description (includes the cycle trace for
    /// [`DiagKind::CombCycle`]).
    pub message: String,
    /// Source-level signal name, when the slot resolves to one.
    pub signal: Option<String>,
    /// Layer index, for schedule findings.
    pub layer: Option<usize>,
    /// Op index within the layer, for schedule findings.
    pub op: Option<usize>,
    /// Partition id, for RepCut findings.
    pub partition: Option<u32>,
    /// The `LI` slot involved.
    pub slot: Option<u32>,
}

impl Diagnostic {
    /// A bare diagnostic with no location attached.
    pub fn new(severity: Severity, kind: DiagKind, message: impl Into<String>) -> Self {
        Diagnostic {
            severity,
            kind,
            message: message.into(),
            signal: None,
            layer: None,
            op: None,
            partition: None,
            slot: None,
        }
    }

    /// Attaches a signal name.
    pub fn with_signal(mut self, signal: Option<String>) -> Self {
        self.signal = signal;
        self
    }

    /// Attaches a `(layer, op index)` location.
    pub fn at_op(mut self, layer: usize, op: usize) -> Self {
        self.layer = Some(layer);
        self.op = Some(op);
        self
    }

    /// Attaches a partition id.
    pub fn in_partition(mut self, partition: u32) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Attaches a slot.
    pub fn on_slot(mut self, slot: u32) -> Self {
        self.slot = Some(slot);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.kind, self.message)?;
        if let Some(sig) = &self.signal {
            write!(f, " (signal `{sig}`)")?;
        }
        if let (Some(l), Some(k)) = (self.layer, self.op) {
            write!(f, " at layer {l} op {k}")?;
        }
        if let Some(p) = self.partition {
            write!(f, " in partition {p}")?;
        }
        Ok(())
    }
}

/// Aggregate statistics of one analysis run — the attribution data
/// ROADMAP's whole-design specialization work consumes, and what the
/// `designs` verb reports per registered design.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AnalysisStats {
    /// Scheduled operations.
    pub ops: usize,
    /// Layers.
    pub layers: usize,
    /// `LI` slots.
    pub slots: usize,
    /// Registers (commits).
    pub registers: usize,
    /// Ops whose result reaches no output, probe, or commit.
    pub dead_ops: usize,
    /// Ops constant-propagation proves never toggle.
    pub never_toggling: usize,
    /// Error-level diagnostics found.
    pub errors: usize,
    /// Warn-level diagnostics found.
    pub warnings: usize,
    /// Fan-in-weighted static activity per layer: each live, non-constant
    /// op contributes `1 + fan_in` to its layer's estimate.
    pub layer_activity: Vec<f64>,
    /// Sum of `layer_activity`.
    pub total_activity: f64,
}

/// The result of a verifier run: every finding plus aggregate stats.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Findings, in discovery order (capped per kind; the stats counters
    /// are exact).
    pub diagnostics: Vec<Diagnostic>,
    /// Aggregate statistics.
    pub stats: AnalysisStats,
}

impl AnalysisReport {
    /// Whether the plan may be executed: no `Error`-level findings.
    pub fn is_clean(&self) -> bool {
        self.stats.errors == 0
    }

    /// Error-level findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Whether any finding of the given kind was reported.
    pub fn has(&self, kind: DiagKind) -> bool {
        self.diagnostics.iter().any(|d| d.kind == kind)
    }

    /// Folds another report's findings and counters into this one
    /// (activity/shape stats keep the first non-empty values).
    pub fn merge(&mut self, other: AnalysisReport) {
        self.stats.errors += other.stats.errors;
        self.stats.warnings += other.stats.warnings;
        self.stats.dead_ops += other.stats.dead_ops;
        self.stats.never_toggling += other.stats.never_toggling;
        if self.stats.layer_activity.is_empty() {
            self.stats.layer_activity = other.stats.layer_activity;
            self.stats.total_activity = other.stats.total_activity;
        }
        if self.stats.ops == 0 {
            self.stats.ops = other.stats.ops;
            self.stats.layers = other.stats.layers;
            self.stats.slots = other.stats.slots;
            self.stats.registers = other.stats.registers;
        }
        self.diagnostics.extend(other.diagnostics);
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} error(s), {} warning(s)",
            self.stats.errors, self.stats.warnings
        )?;
        for d in self.errors().take(3) {
            write!(f, "; {d}")?;
        }
        if self.stats.errors > 3 {
            write!(f, "; ...")?;
        }
        Ok(())
    }
}

/// Emission cap per diagnostic kind: counters stay exact, but a single
/// systemic defect in a million-op design cannot flood the report.
const MAX_DIAGS_PER_KIND: usize = 32;

/// Collects diagnostics with exact severity counters and per-kind
/// emission capping.
#[derive(Default)]
struct Reporter {
    diags: Vec<Diagnostic>,
    per_kind: HashMap<DiagKind, usize>,
    errors: usize,
    warnings: usize,
}

impl Reporter {
    fn push(&mut self, d: Diagnostic) {
        match d.severity {
            Severity::Error => self.errors += 1,
            Severity::Warn => self.warnings += 1,
            Severity::Info => {}
        }
        let seen = self.per_kind.entry(d.kind).or_insert(0);
        *seen += 1;
        if *seen <= MAX_DIAGS_PER_KIND {
            self.diags.push(d);
        }
    }

    fn finish(self, mut stats: AnalysisStats) -> AnalysisReport {
        stats.errors = self.errors;
        stats.warnings = self.warnings;
        AnalysisReport {
            diagnostics: self.diags,
            stats,
        }
    }
}

/// Validates one [`OpInst`]'s shape: a real non-source opcode, the right
/// operand count, and enough (ordered) static parameters for the opcode's
/// kernel body to be panic-free. Everything downstream — constant
/// folding here, `OpInst::op()`, the `k_bits`/`k_head` kernels — may
/// index what this function has checked.
fn check_op_shape(op: &crate::plan::OpInst) -> Result<DfgOp, String> {
    let d = DfgOp::from_n_coord(op.n)
        .ok_or_else(|| format!("opcode coordinate {} is not a DfgOp", op.n))?;
    if d.class() == OpClass::Source {
        return Err(format!("source op `{d}` scheduled into a layer"));
    }
    match d.arity() {
        Some(a) if op.ins.len() != a => {
            return Err(format!("`{d}` takes {a} operand(s), got {}", op.ins.len()));
        }
        None if op.ins.len().is_multiple_of(2) => {
            return Err(format!(
                "`{d}` takes an odd operand count, got {}",
                op.ins.len()
            ));
        }
        _ => {}
    }
    let need = match d {
        DfgOp::Cat | DfgOp::Bits | DfgOp::Head => 2,
        DfgOp::Andr | DfgOp::Xorr | DfgOp::Shl | DfgOp::Shr => 1,
        _ => 0,
    };
    if op.params.len() < need {
        return Err(format!(
            "`{d}` needs {need} parameter(s), got {}",
            op.params.len()
        ));
    }
    if d == DfgOp::Bits && op.params[0] < op.params[1] {
        return Err(format!(
            "bits range [{}:{}] is inverted",
            op.params[0], op.params[1]
        ));
    }
    if d == DfgOp::Head && op.params[1] < op.params[0] {
        return Err(format!(
            "head takes {} bits from a {}-bit operand",
            op.params[0], op.params[1]
        ));
    }
    Ok(d)
}

/// Resolves a slot to its source-level name (probes first, then output
/// ports — the same namespace as [`SimPlan::signal_slot`]).
fn slot_name(plan: &SimPlan, slot: u32) -> Option<String> {
    plan.probes
        .iter()
        .find(|&&(_, s, _)| s == slot)
        .map(|(n, _, _)| n.clone())
        .or_else(|| {
            plan.output_slots
                .iter()
                .find(|&&(_, s)| s == slot)
                .map(|(n, _)| n.clone())
        })
}

/// Combinational-cycle detection over a [`Graph`], with a named-signal
/// trace — the panic-free counterpart of `Graph::topo_order`, for graphs
/// corrupted after `build`'s own cycle rejection (e.g. by a buggy pass).
pub fn analyze_graph(graph: &Graph) -> AnalysisReport {
    let mut rep = Reporter::default();
    let n = graph.len();
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    let mut stack: Vec<(crate::NodeId, usize)> = Vec::new();
    let mut roots: Vec<crate::NodeId> = graph.outputs.iter().map(|(_, id)| *id).collect();
    roots.extend(graph.regs.iter().map(|r| r.next));
    let label = |id: crate::NodeId| {
        let node = graph.node(id);
        node.name
            .clone()
            .unwrap_or_else(|| format!("{}:{}", node.op, id))
    };
    'roots: for root in roots {
        if state[root.index()] != 0 {
            continue;
        }
        stack.push((root, 0));
        state[root.index()] = 1;
        while let Some(&mut (id, ref mut child)) = stack.last_mut() {
            let node = graph.node(id);
            if node.op.class() == OpClass::Source {
                state[id.index()] = 2;
                stack.pop();
                continue;
            }
            if *child < node.operands.len() {
                let next = node.operands[*child];
                *child += 1;
                match state[next.index()] {
                    0 => {
                        state[next.index()] = 1;
                        stack.push((next, 0));
                    }
                    1 => {
                        // Back edge: the cycle is the stack suffix from
                        // `next` back to `id`, closed by this edge.
                        let start = stack
                            .iter()
                            .position(|&(s, _)| s == next)
                            .unwrap_or(stack.len() - 1);
                        let mut trace: Vec<String> =
                            stack[start..].iter().map(|&(s, _)| label(s)).collect();
                        trace.push(label(next));
                        rep.push(
                            Diagnostic::new(
                                Severity::Error,
                                DiagKind::CombCycle,
                                format!("combinational cycle: {}", trace.join(" -> ")),
                            )
                            .with_signal(
                                stack[start..]
                                    .iter()
                                    .find_map(|&(s, _)| graph.node(s).name.clone()),
                            ),
                        );
                        break 'roots;
                    }
                    _ => {}
                }
            } else {
                state[id.index()] = 2;
                stack.pop();
            }
        }
    }
    rep.finish(AnalysisStats::default())
}

/// Schedule-legality and dataflow analysis of one [`SimPlan`].
pub fn analyze_plan(plan: &SimPlan) -> AnalysisReport {
    let mut rep = Reporter::default();
    let n = plan.num_slots;
    if plan.init_values.len() != n {
        rep.push(Diagnostic::new(
            Severity::Error,
            DiagKind::SlotOutOfBounds,
            format!(
                "init_values holds {} entries for {} slots",
                plan.init_values.len(),
                n
            ),
        ));
    }
    let named = |slot: u32| slot_name(plan, slot);

    // --- Slot write map: who produces what, duplicate writes. ---
    let mut written_by: Vec<Option<(usize, usize)>> = vec![None; n];
    for (i, layer) in plan.layers.iter().enumerate() {
        for (k, op) in layer.iter().enumerate() {
            let out = op.out as usize;
            if out >= n {
                rep.push(
                    Diagnostic::new(
                        Severity::Error,
                        DiagKind::SlotOutOfBounds,
                        format!("op output slot {} out of bounds ({} slots)", op.out, n),
                    )
                    .at_op(i, k)
                    .on_slot(op.out),
                );
                continue;
            }
            if let Some((pl, pk)) = written_by[out] {
                rep.push(
                    Diagnostic::new(
                        Severity::Error,
                        DiagKind::DuplicateWrite,
                        format!(
                            "slot {} written at layer {} op {} and again here",
                            op.out, pl, pk
                        ),
                    )
                    .with_signal(named(op.out))
                    .at_op(i, k)
                    .on_slot(op.out),
                );
            } else {
                written_by[out] = Some((i, k));
            }
        }
    }
    let op_written = |s: u32| (s as usize) < n && written_by[s as usize].is_some();

    // --- Source-slot classification. ---
    let reg_slots: HashSet<u32> = plan.commits.iter().map(|&(dst, _)| dst).collect();
    let input_slots: HashSet<u32> = plan.input_slots.iter().copied().collect();
    let in_consts = |s: u32| s >= plan.const_slots.0 && s < plan.const_slots.1;

    // A layer op writing a register/input/constant slot bypasses commit
    // semantics (registers must only change at end of cycle).
    for &s in reg_slots.iter().chain(input_slots.iter()) {
        if op_written(s) {
            let (i, k) = written_by[s as usize].unwrap();
            rep.push(
                Diagnostic::new(
                    Severity::Error,
                    DiagKind::SourceOverwrite,
                    format!(
                        "layer op writes {} slot {} directly",
                        if reg_slots.contains(&s) {
                            "register"
                        } else {
                            "input"
                        },
                        s
                    ),
                )
                .with_signal(named(s))
                .at_op(i, k)
                .on_slot(s),
            );
        }
    }

    // --- Schedule legality: strictly-earlier-layer availability. ---
    let mut available: Vec<bool> = (0..n as u32).map(|s| !op_written(s)).collect();
    for (i, layer) in plan.layers.iter().enumerate() {
        for (k, op) in layer.iter().enumerate() {
            if let Err(msg) = check_op_shape(op) {
                rep.push(Diagnostic::new(Severity::Error, DiagKind::MalformedOp, msg).at_op(i, k));
            }
            for &r in &op.ins {
                if r as usize >= n {
                    rep.push(
                        Diagnostic::new(
                            Severity::Error,
                            DiagKind::SlotOutOfBounds,
                            format!("operand slot {} out of bounds ({} slots)", r, n),
                        )
                        .at_op(i, k)
                        .on_slot(r),
                    );
                } else if !available[r as usize] {
                    let produced = written_by[r as usize]
                        .map(|(l, _)| format!("layer {l}"))
                        .unwrap_or_else(|| "nowhere".into());
                    rep.push(
                        Diagnostic::new(
                            Severity::Error,
                            DiagKind::UseBeforeDef,
                            format!(
                                "operand slot {} read at layer {} but produced at {}",
                                r, i, produced
                            ),
                        )
                        .with_signal(named(r))
                        .at_op(i, k)
                        .on_slot(r),
                    );
                }
            }
        }
        // Outputs become readable only from the *next* layer: ops within
        // a layer must be independent (the levelization barrier).
        for op in layer {
            if (op.out as usize) < n {
                available[op.out as usize] = true;
            }
        }
    }

    // --- Commit staging: bounds and alias-freedom. ---
    let mut commit_dst: HashMap<u32, usize> = HashMap::new();
    for (c, &(dst, src)) in plan.commits.iter().enumerate() {
        for (what, s) in [("destination", dst), ("source", src)] {
            if s as usize >= n {
                rep.push(
                    Diagnostic::new(
                        Severity::Error,
                        DiagKind::CommitOutOfBounds,
                        format!("commit {} {} slot {} out of bounds", c, what, s),
                    )
                    .on_slot(s),
                );
            }
        }
        if let Some(prev) = commit_dst.insert(dst, c) {
            rep.push(
                Diagnostic::new(
                    Severity::Error,
                    DiagKind::CommitAlias,
                    format!(
                        "commits {} and {} both target register slot {} — \
                         split_commits assumes register destinations are unique",
                        prev, c, dst
                    ),
                )
                .with_signal(named(dst))
                .on_slot(dst),
            );
        }
    }

    // --- Port/probe tables stay inside the tensor. ---
    for (name, s) in plan
        .output_slots
        .iter()
        .map(|(nm, s)| (nm.as_str(), *s))
        .chain(plan.probes.iter().map(|(nm, s, _)| (nm.as_str(), *s)))
        .chain(plan.input_slots.iter().map(|&s| ("", s)))
    {
        if s as usize >= n {
            rep.push(
                Diagnostic::new(
                    Severity::Error,
                    DiagKind::SlotOutOfBounds,
                    format!("port/probe slot {} out of bounds ({} slots)", s, n),
                )
                .with_signal((!name.is_empty()).then(|| name.to_string()))
                .on_slot(s),
            );
        }
    }

    // --- Uninitialized reads: reads of slots nothing ever drives. ---
    let driven = |s: u32| {
        op_written(s) || reg_slots.contains(&s) || input_slots.contains(&s) || in_consts(s)
    };
    for (i, layer) in plan.layers.iter().enumerate() {
        for (k, op) in layer.iter().enumerate() {
            for &r in &op.ins {
                if (r as usize) < n && !driven(r) {
                    rep.push(
                        Diagnostic::new(
                            Severity::Warn,
                            DiagKind::UninitRead,
                            format!(
                                "slot {} is never driven (not an input, constant, \
                                 register, or op output); reads see its power-on value",
                                r
                            ),
                        )
                        .with_signal(named(r))
                        .at_op(i, k)
                        .on_slot(r),
                    );
                }
            }
        }
    }

    // --- Dead ops: backward liveness from everything observable. ---
    let mut live: Vec<bool> = vec![false; n];
    for &(_, s) in &plan.output_slots {
        if (s as usize) < n {
            live[s as usize] = true;
        }
    }
    for &(_, s, _) in &plan.probes {
        if (s as usize) < n {
            live[s as usize] = true;
        }
    }
    for &(dst, src) in &plan.commits {
        for s in [dst, src] {
            if (s as usize) < n {
                live[s as usize] = true;
            }
        }
    }
    let mut dead_ops = 0usize;
    for (i, layer) in plan.layers.iter().enumerate().rev() {
        for (k, op) in layer.iter().enumerate().rev() {
            if (op.out as usize) < n && live[op.out as usize] {
                for &r in &op.ins {
                    if (r as usize) < n {
                        live[r as usize] = true;
                    }
                }
            } else {
                dead_ops += 1;
                rep.push(
                    Diagnostic::new(
                        Severity::Warn,
                        DiagKind::DeadOp,
                        format!("op result in slot {} reaches nothing observable", op.out),
                    )
                    .at_op(i, k)
                    .on_slot(op.out),
                );
            }
        }
    }

    // --- Never-toggling signals + fan-in-weighted activity estimate. ---
    // Constant propagation: constants are known; inputs and registers are
    // not (a register's init may be displaced any cycle).
    let mut known: HashMap<u32, u64> = HashMap::new();
    for s in plan.const_slots.0..plan.const_slots.1 {
        if let Some(&v) = plan.init_values.get(s as usize) {
            known.insert(s, v);
        }
    }
    let mut never_toggling = 0usize;
    let mut layer_activity: Vec<f64> = Vec::with_capacity(plan.layers.len());
    let mut ins_buf: Vec<u64> = Vec::new();
    for layer in &plan.layers {
        let mut activity = 0.0f64;
        for op in layer {
            let mut folded = false;
            // Only fold shape-checked ops: `eval` indexes operands and
            // params, and this pass must never panic on corrupted input.
            if let Ok(d) = check_op_shape(op) {
                ins_buf.clear();
                if op
                    .ins
                    .iter()
                    .all(|r| known.get(r).map(|&v| ins_buf.push(v)).is_some())
                {
                    let v = crate::op::eval(d, &op.params, &ins_buf, op.width as u32, op.signed);
                    known.insert(op.out, v);
                    folded = true;
                }
            }
            if folded {
                never_toggling += 1;
                if let Some(name) = named(op.out) {
                    rep.push(
                        Diagnostic::new(
                            Severity::Info,
                            DiagKind::NeverToggles,
                            "signal is constant every cycle",
                        )
                        .with_signal(Some(name))
                        .on_slot(op.out),
                    );
                }
            } else {
                activity += 1.0 + op.ins.len() as f64;
            }
        }
        layer_activity.push(activity);
    }
    let total_activity = layer_activity.iter().sum();

    rep.finish(AnalysisStats {
        ops: plan.total_ops(),
        layers: plan.layers.len(),
        slots: n,
        registers: plan.commits.len(),
        dead_ops,
        never_toggling,
        errors: 0,
        warnings: 0,
        layer_activity,
        total_activity,
    })
}

/// RUM coverage, single ownership, and home-map verification of a
/// [`PartitionedPlan`] against its source plan.
pub fn analyze_partitioned(plan: &SimPlan, pp: &PartitionedPlan) -> AnalysisReport {
    let mut rep = Reporter::default();
    let np = pp.partitions.len() as u32;
    let named = |slot: u32| slot_name(plan, slot);
    let reg_slots: HashSet<u32> = plan.commits.iter().map(|&(dst, _)| dst).collect();

    // --- RUM shape: one entry per plan commit, in plan order. ---
    if pp.rum.len() != plan.commits.len() {
        rep.push(Diagnostic::new(
            Severity::Error,
            DiagKind::RumShapeMismatch,
            format!(
                "RUM has {} entries for {} commits",
                pp.rum.len(),
                plan.commits.len()
            ),
        ));
    }
    let mut owner_of: HashMap<u32, u32> = HashMap::new();
    for (r, entry) in pp.rum.iter().enumerate() {
        if let Some(&(dst, _)) = plan.commits.get(r) {
            if entry.slot != dst {
                rep.push(
                    Diagnostic::new(
                        Severity::Error,
                        DiagKind::RumShapeMismatch,
                        format!(
                            "RUM entry {} covers slot {} but commit {} targets slot {}",
                            r, entry.slot, r, dst
                        ),
                    )
                    .on_slot(entry.slot),
                );
            }
        }
        if entry.owner >= np {
            rep.push(
                Diagnostic::new(
                    Severity::Error,
                    DiagKind::RumOwnerMismatch,
                    format!(
                        "RUM entry {} owner {} out of range ({} partitions)",
                        r, entry.owner, np
                    ),
                )
                .on_slot(entry.slot),
            );
        }
        if entry.readers.contains(&entry.owner) {
            rep.push(
                Diagnostic::new(
                    Severity::Error,
                    DiagKind::RumOwnerMismatch,
                    format!("RUM entry {} lists its owner among its readers", r),
                )
                .with_signal(named(entry.slot))
                .on_slot(entry.slot)
                .in_partition(entry.owner),
            );
        }
        if let Some(prev) = owner_of.insert(entry.slot, entry.owner) {
            if prev != entry.owner {
                rep.push(
                    Diagnostic::new(
                        Severity::Error,
                        DiagKind::RumOwnerMismatch,
                        format!(
                            "register slot {} claimed by owners {} and {}",
                            entry.slot, prev, entry.owner
                        ),
                    )
                    .with_signal(named(entry.slot))
                    .on_slot(entry.slot),
                );
            }
        }
    }

    // --- Single ownership: commits partition exactly by RUM owner. ---
    let mut committed_by: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
    for (p, part) in pp.partitions.iter().enumerate() {
        for &(dst, src) in &part.commits {
            committed_by.entry((dst, src)).or_default().push(p as u32);
            match owner_of.get(&dst) {
                Some(&owner) if owner != p as u32 => {
                    rep.push(
                        Diagnostic::new(
                            Severity::Error,
                            DiagKind::ForeignCommit,
                            format!(
                                "partition {} commits register slot {} owned by partition {}",
                                p, dst, owner
                            ),
                        )
                        .with_signal(named(dst))
                        .on_slot(dst)
                        .in_partition(p as u32),
                    );
                }
                Some(_) => {}
                None => {
                    rep.push(
                        Diagnostic::new(
                            Severity::Error,
                            DiagKind::ForeignCommit,
                            format!("partition {} commits slot {} with no RUM entry", p, dst),
                        )
                        .on_slot(dst)
                        .in_partition(p as u32),
                    );
                }
            }
        }
    }
    for (c, &pair) in plan.commits.iter().enumerate() {
        match committed_by.get(&pair).map(Vec::len).unwrap_or(0) {
            1 => {}
            0 => {
                rep.push(
                    Diagnostic::new(
                        Severity::Error,
                        DiagKind::ForeignCommit,
                        format!(
                            "no partition commits register slot {} (commit {})",
                            pair.0, c
                        ),
                    )
                    .with_signal(named(pair.0))
                    .on_slot(pair.0),
                );
            }
            m => {
                rep.push(
                    Diagnostic::new(
                        Severity::Error,
                        DiagKind::ForeignCommit,
                        format!(
                            "register slot {} committed by {} partitions (commit {})",
                            pair.0, m, c
                        ),
                    )
                    .with_signal(named(pair.0))
                    .on_slot(pair.0),
                );
            }
        }
    }

    // --- Coverage: every plan op in >= 1 partition at its layer, and no
    //     partition op absent from the plan layer. ---
    let nl = plan.layers.len();
    let mut covered: Vec<HashSet<u32>> = vec![HashSet::new(); nl];
    for (p, part) in pp.partitions.iter().enumerate() {
        if part.layers.len() != nl {
            rep.push(
                Diagnostic::new(
                    Severity::Error,
                    DiagKind::UncoveredOp,
                    format!(
                        "partition {} has {} layers, plan has {}",
                        p,
                        part.layers.len(),
                        nl
                    ),
                )
                .in_partition(p as u32),
            );
        }
        for (i, layer) in part.layers.iter().enumerate().take(nl) {
            let plan_outs: HashSet<u32> = plan.layers[i].iter().map(|o| o.out).collect();
            for op in layer {
                if !plan_outs.contains(&op.out) {
                    rep.push(
                        Diagnostic::new(
                            Severity::Error,
                            DiagKind::UncoveredOp,
                            format!(
                                "partition {} schedules slot {} at layer {} \
                                 but the plan layer has no such op",
                                p, op.out, i
                            ),
                        )
                        .at_op(i, 0)
                        .on_slot(op.out)
                        .in_partition(p as u32),
                    );
                } else {
                    covered[i].insert(op.out);
                }
            }
        }
    }
    for (i, layer) in plan.layers.iter().enumerate() {
        for (k, op) in layer.iter().enumerate() {
            if !covered[i].contains(&op.out) {
                rep.push(
                    Diagnostic::new(
                        Severity::Error,
                        DiagKind::UncoveredOp,
                        format!("op writing slot {} appears in no partition", op.out),
                    )
                    .with_signal(named(op.out))
                    .at_op(i, k)
                    .on_slot(op.out),
                );
            }
        }
    }

    // --- Reader completeness: recompute who reads each register replica
    //     and check both directions against the RUM. ---
    let mut reads: Vec<HashSet<u32>> = Vec::with_capacity(pp.partitions.len());
    for (p, part) in pp.partitions.iter().enumerate() {
        let mut r: HashSet<u32> = part
            .layers
            .iter()
            .flatten()
            .flat_map(|op| op.ins.iter().copied())
            .filter(|s| reg_slots.contains(s))
            .collect();
        r.extend(
            part.commits
                .iter()
                .map(|&(_, src)| src)
                .filter(|s| reg_slots.contains(s)),
        );
        if p == 0 {
            r.extend(
                plan.output_slots
                    .iter()
                    .map(|&(_, s)| s)
                    .filter(|s| reg_slots.contains(s)),
            );
        }
        reads.push(r);
    }
    for entry in &pp.rum {
        for (q, read) in reads.iter().enumerate() {
            let q = q as u32;
            if q == entry.owner {
                continue;
            }
            let is_reader = entry.readers.contains(&q);
            if read.contains(&entry.slot) && !is_reader {
                rep.push(
                    Diagnostic::new(
                        Severity::Error,
                        DiagKind::MissingRumReader,
                        format!(
                            "partition {} reads register slot {} but is not in its RUM readers",
                            q, entry.slot
                        ),
                    )
                    .with_signal(named(entry.slot))
                    .on_slot(entry.slot)
                    .in_partition(q),
                );
            } else if !read.contains(&entry.slot) && is_reader {
                rep.push(
                    Diagnostic::new(
                        Severity::Warn,
                        DiagKind::ExtraRumReader,
                        format!(
                            "RUM lists partition {} as a reader of slot {} but it never reads it",
                            q, entry.slot
                        ),
                    )
                    .on_slot(entry.slot)
                    .in_partition(q),
                );
            }
        }
    }

    // --- Home map: every slot's authoritative replica exists. ---
    if pp.home.len() != plan.num_slots {
        rep.push(Diagnostic::new(
            Severity::Error,
            DiagKind::HomeMismatch,
            format!(
                "home map covers {} slots, plan has {}",
                pp.home.len(),
                plan.num_slots
            ),
        ));
    } else {
        for (s, &h) in pp.home.iter().enumerate() {
            if h >= np {
                rep.push(
                    Diagnostic::new(
                        Severity::Error,
                        DiagKind::HomeMismatch,
                        format!("home[{}] = {} out of range ({} partitions)", s, h, np),
                    )
                    .on_slot(s as u32),
                );
            }
        }
        for entry in &pp.rum {
            if let Some(&h) = pp.home.get(entry.slot as usize) {
                if h != entry.owner {
                    rep.push(
                        Diagnostic::new(
                            Severity::Error,
                            DiagKind::HomeMismatch,
                            format!(
                                "home[{}] = {} but RUM owner is {}",
                                entry.slot, h, entry.owner
                            ),
                        )
                        .with_signal(named(entry.slot))
                        .on_slot(entry.slot),
                    );
                }
            }
        }
        for (i, layer) in plan.layers.iter().enumerate() {
            for op in layer {
                let h = pp.home[op.out as usize] as usize;
                let computes = pp
                    .partitions
                    .get(h)
                    .and_then(|part| part.layers.get(i))
                    .map(|l| l.iter().any(|o| o.out == op.out))
                    .unwrap_or(false);
                if !computes {
                    rep.push(
                        Diagnostic::new(
                            Severity::Error,
                            DiagKind::HomeMismatch,
                            format!(
                                "home[{}] = {} but that partition never computes the slot",
                                op.out, h
                            ),
                        )
                        .with_signal(named(op.out))
                        .on_slot(op.out),
                    );
                }
            }
        }
    }

    rep.finish(AnalysisStats {
        ops: pp.replicated_ops,
        layers: plan.layers.len(),
        slots: plan.num_slots,
        registers: plan.commits.len(),
        ..AnalysisStats::default()
    })
}

/// Kernel-table verification: the compiled layers' folded offsets,
/// masks, and shifts against the source plan. A clean report here is what
/// makes the raw-pointer kernels in-bounds by construction (the engines
/// allocate `num_slots` rows and `debug_assert!` the same bounds).
pub fn analyze_compiled(plan: &SimPlan, compiled: &[CompiledLayer]) -> AnalysisReport {
    let mut rep = Reporter::default();
    let n = plan.num_slots;
    if compiled.len() != plan.layers.len() {
        rep.push(Diagnostic::new(
            Severity::Error,
            DiagKind::KernelShapeMismatch,
            format!(
                "compiled table has {} layers, plan has {}",
                compiled.len(),
                plan.layers.len()
            ),
        ));
    }
    for (i, (player, clayer)) in plan.layers.iter().zip(compiled.iter()).enumerate() {
        if player.len() != clayer.len() {
            rep.push(
                Diagnostic::new(
                    Severity::Error,
                    DiagKind::KernelShapeMismatch,
                    format!(
                        "layer {} compiles {} ops for {} plan ops",
                        i,
                        clayer.len(),
                        player.len()
                    ),
                )
                .at_op(i, 0),
            );
            continue;
        }
        for (k, (op, c)) in player.iter().zip(clayer.iter()).enumerate() {
            if c.out_slot() != op.out || c.opcode() != DfgOp::from_n_coord(op.n) {
                rep.push(
                    Diagnostic::new(
                        Severity::Error,
                        DiagKind::KernelShapeMismatch,
                        format!(
                            "compiled op (out {}, opcode {:?}) disagrees with plan \
                             (out {}, opcode {:?})",
                            c.out_slot(),
                            c.opcode(),
                            op.out,
                            DfgOp::from_n_coord(op.n)
                        ),
                    )
                    .at_op(i, k),
                );
            }
            let slots = c.operand_slots();
            if slots.as_slice() != op.ins.get(..slots.len()).unwrap_or(&[]) {
                rep.push(
                    Diagnostic::new(
                        Severity::Error,
                        DiagKind::KernelShapeMismatch,
                        format!(
                            "compiled operand slots {:?} disagree with plan {:?}",
                            slots, op.ins
                        ),
                    )
                    .at_op(i, k),
                );
            }
            for &s in std::iter::once(&c.out_slot()).chain(slots.iter()) {
                if s as usize >= n {
                    rep.push(
                        Diagnostic::new(
                            Severity::Error,
                            DiagKind::KernelOutOfBounds,
                            format!(
                                "compiled kernel references slot {} outside the \
                                 {}-slot LI tensor",
                                s, n
                            ),
                        )
                        .at_op(i, k)
                        .on_slot(s),
                    );
                }
            }
            let width = (op.width as u32).clamp(1, 64);
            if c.mask() != mask(width) || c.shift() != 64 - width || c.is_signed() != op.signed {
                rep.push(
                    Diagnostic::new(
                        Severity::Error,
                        DiagKind::KernelCanonMismatch,
                        format!(
                            "folded canonicalization (mask {:#x}, shift {}, signed {}) \
                             disagrees with declared width {} signed {}",
                            c.mask(),
                            c.shift(),
                            c.is_signed(),
                            op.width,
                            op.signed
                        ),
                    )
                    .with_signal(slot_name(plan, op.out))
                    .at_op(i, k)
                    .on_slot(op.out),
                );
            }
        }
    }
    rep.finish(AnalysisStats {
        ops: plan.total_ops(),
        layers: plan.layers.len(),
        slots: n,
        registers: plan.commits.len(),
        ..AnalysisStats::default()
    })
}

/// The full single-design verification the compiler runs on every
/// compile: plan legality + dataflow analyses, then — only when the plan
/// is structurally sound enough to lower safely — the compiled kernel
/// table check.
pub fn analyze_design(plan: &SimPlan) -> AnalysisReport {
    let mut report = analyze_plan(plan);
    // Lowering calls `OpInst::op()`, which panics on malformed opcodes,
    // so only compile a shape-valid plan (out-of-bounds *slots* are fine
    // to lower — the kernel check flags them without executing anything).
    if !report.has(DiagKind::MalformedOp) {
        report.merge(analyze_compiled(plan, &compile_plan(plan)));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RegDef;
    use crate::plan::{plan, OpInst, PlanStats};
    use crate::{build, passes};
    use rteaal_firrtl::{lower::lower_typed, parser::parse};

    const MIXED: &str = "\
circuit Mixed :
  module Mixed :
    input clock : Clock
    input en : UInt<1>
    input x : SInt<8>
    output y : SInt<8>
    output flag : UInt<1>
    reg acc : SInt<8>, clock
    reg cnt : UInt<8>, clock
    node sum = add(acc, x)
    node nxt = mux(en, asSInt(tail(sum, 1)), acc)
    acc <= nxt
    cnt <= tail(add(cnt, UInt<8>(1)), 1)
    y <= acc
    flag <= gt(cnt, UInt<8>(10))
";

    fn mixed_plan() -> SimPlan {
        let g = build(&lower_typed(&parse(MIXED).unwrap()).unwrap()).unwrap();
        let (g, _) = passes::optimize(&g, &passes::PassOptions::default());
        plan(&g)
    }

    #[test]
    fn corpus_plan_is_clean() {
        let p = mixed_plan();
        let report = analyze_design(&p);
        assert!(report.is_clean(), "unexpected errors: {report}");
        assert_eq!(report.stats.dead_ops, 0);
        assert_eq!(report.stats.layers, p.layers.len());
        assert!(report.stats.total_activity > 0.0);
        assert_eq!(report.stats.layer_activity.len(), p.layers.len());
    }

    #[test]
    fn partitioned_corpus_is_clean() {
        let p = mixed_plan();
        for parts in 1..=3 {
            let pp = PartitionedPlan::new(&p, parts);
            let report = analyze_partitioned(&p, &pp);
            assert!(report.is_clean(), "{parts} partitions: {report}");
        }
    }

    #[test]
    fn shuffled_layer_is_use_before_def() {
        let mut p = mixed_plan();
        assert!(p.layers.len() >= 2, "fixture needs >= 2 layers");
        p.layers.reverse();
        let report = analyze_plan(&p);
        assert!(report.has(DiagKind::UseBeforeDef), "{report}");
        assert!(!report.is_clean());
    }

    #[test]
    fn out_of_bounds_operand_is_caught_in_plan_and_kernels() {
        let mut p = mixed_plan();
        p.layers[0][0].ins[0] = p.num_slots as u32 + 7;
        let report = analyze_plan(&p);
        assert!(report.has(DiagKind::SlotOutOfBounds), "{report}");
        // The kernel check catches the same corruption independently.
        let compiled = compile_plan(&p);
        let kreport = analyze_compiled(&p, &compiled);
        assert!(kreport.has(DiagKind::KernelOutOfBounds), "{kreport}");
    }

    #[test]
    fn corrupted_rum_owner_is_caught() {
        let p = mixed_plan();
        let mut pp = PartitionedPlan::new(&p, 2);
        assert!(!pp.rum.is_empty());
        let np = pp.partitions.len() as u32;
        pp.rum[0].owner = (pp.rum[0].owner + 1) % np;
        let report = analyze_partitioned(&p, &pp);
        assert!(!report.is_clean(), "{report}");
        assert!(
            report.has(DiagKind::ForeignCommit) || report.has(DiagKind::RumOwnerMismatch),
            "{report}"
        );
    }

    #[test]
    fn dropped_rum_reader_is_caught() {
        let p = mixed_plan();
        let mut pp = PartitionedPlan::new(&p, 2);
        let target = pp
            .rum
            .iter()
            .position(|e| !e.readers.is_empty())
            .expect("fixture has a cross-partition register");
        pp.rum[target].readers.clear();
        let report = analyze_partitioned(&p, &pp);
        assert!(report.has(DiagKind::MissingRumReader), "{report}");
    }

    #[test]
    fn injected_comb_cycle_has_named_trace() {
        // Build a legal graph, then corrupt it into a cycle the way a
        // buggy pass could: a -> b -> a.
        let mut g = Graph::new("cyclic");
        let x = g.add_source(DfgOp::Input, 8, false, "x".into());
        g.inputs.push(x);
        let a = g.add_op(DfgOp::Add, vec![], vec![x, x], 8, false);
        let b = g.add_op(DfgOp::Not, vec![], vec![a], 8, false);
        g.set_name(a, "sig_a");
        g.set_name(b, "sig_b");
        g.outputs.push(("y".into(), b));
        g.node_mut(a).operands[0] = b;
        let report = analyze_graph(&g);
        assert!(report.has(DiagKind::CombCycle));
        let diag = report
            .diagnostics
            .iter()
            .find(|d| d.kind == DiagKind::CombCycle)
            .unwrap();
        assert!(
            diag.message.contains("sig_a") && diag.message.contains("sig_b"),
            "trace should name the signals: {}",
            diag.message
        );
        assert_eq!(diag.severity, Severity::Error);
        // An intact graph reports nothing.
        let clean = build(&lower_typed(&parse(MIXED).unwrap()).unwrap()).unwrap();
        assert!(analyze_graph(&clean).is_clean());
        assert!(analyze_graph(&clean).diagnostics.is_empty());
    }

    #[test]
    fn hand_built_violations_have_typed_kinds() {
        // A tiny hand-built plan exercising kinds the compiler-produced
        // corpus can never contain.
        let mk = |op: DfgOp, out: u32, ins: Vec<u32>| OpInst {
            n: op.n_coord(),
            out,
            ins,
            params: Vec::new(),
            width: 8,
            signed: false,
        };
        let base = SimPlan {
            name: "hand".into(),
            num_slots: 6,
            input_slots: vec![0],
            input_types: vec![(8, false)],
            output_slots: vec![("o".into(), 4)],
            const_slots: (0, 0),
            commits: vec![(1, 4)],
            init_values: vec![0; 6],
            layers: vec![
                vec![mk(DfgOp::Add, 3, vec![0, 1])],
                vec![mk(DfgOp::Not, 4, vec![3])],
            ],
            stats: PlanStats::default(),
            probes: vec![("r".into(), 1, 8)],
        };
        assert!(analyze_plan(&base).is_clean());

        // Duplicate write.
        let mut p = base.clone();
        p.layers[1].push(mk(DfgOp::Not, 3, vec![0]));
        assert!(analyze_plan(&p).has(DiagKind::DuplicateWrite));

        // Register slot written by a layer op.
        let mut p = base.clone();
        p.layers[1][0].out = 1;
        assert!(analyze_plan(&p).has(DiagKind::SourceOverwrite));

        // Aliased commits.
        let mut p = base.clone();
        p.commits.push((1, 3));
        assert!(analyze_plan(&p).has(DiagKind::CommitAlias));

        // Arity violation.
        let mut p = base.clone();
        p.layers[0][0].ins.push(0);
        assert!(analyze_plan(&p).has(DiagKind::MalformedOp));

        // Same-layer read: strictly-earlier-layer rule.
        let mut p = base.clone();
        p.layers[0].push(mk(DfgOp::Not, 5, vec![3]));
        p.layers[1][0].ins[0] = 5;
        assert!(analyze_plan(&p).has(DiagKind::UseBeforeDef));

        // Undriven slot read.
        let mut p = base.clone();
        p.layers[0][0].ins[1] = 2;
        let r = analyze_plan(&p);
        assert!(r.has(DiagKind::UninitRead));
        assert!(r.is_clean(), "uninit read is a warning: {r}");

        // Dead op.
        let mut p = base.clone();
        p.layers[0].push(mk(DfgOp::Not, 5, vec![0]));
        let r = analyze_plan(&p);
        assert!(r.has(DiagKind::DeadOp));
        assert_eq!(r.stats.dead_ops, 1);
    }

    #[test]
    fn never_toggling_registers_in_stats() {
        // y = 3 + 4 over constant slots: folds to a constant.
        let mut g = Graph::new("consts");
        let a = g.add_const(3, 8, false);
        let b = g.add_const(4, 8, false);
        let sum = g.add_op(DfgOp::Add, vec![], vec![a, b], 8, false);
        g.set_name(sum, "const_sum");
        g.outputs.push(("y".into(), sum));
        let state = g.add_source(DfgOp::RegState, 8, false, "r".into());
        g.regs.push(RegDef {
            state,
            next: sum,
            init: 0,
            name: "r".into(),
        });
        let p = plan(&g);
        let report = analyze_plan(&p);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.stats.never_toggling, 1);
        assert!(report.has(DiagKind::NeverToggles));
    }

    #[test]
    fn diagnostics_serialize_round_trip() {
        let d = Diagnostic::new(Severity::Error, DiagKind::UseBeforeDef, "msg")
            .with_signal(Some("sig".into()))
            .at_op(2, 3)
            .on_slot(7);
        let json = serde_json::to_string(&d).unwrap();
        let back: Diagnostic = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
        let report = analyze_design(&mixed_plan());
        let json = serde_json::to_string(&report.stats).unwrap();
        let back: AnalysisStats = serde_json::from_str(&json).unwrap();
        assert_eq!(report.stats, back);
    }
}
