//! The concrete dataflow-graph operation set.
//!
//! FIRRTL's polymorphic primitive ops are resolved into a flat, monomorphic
//! op set during graph construction: signedness is baked into the opcode
//! (e.g. [`DfgOp::Ltu`] vs [`DfgOp::Lts`]) and static parameters (bit
//! indices, shift amounts, operand widths) travel with each operation
//! instance. This op set is the coordinate space of the `OIM` tensor's `N`
//! rank (paper §4.1, "Evaluating Multiple Operation Types").
//!
//! ## Canonical value representation
//!
//! Every signal value is a `u64`. Unsigned signals hold their width-masked
//! bits; signed signals hold their value **sign-extended to 64 bits**. This
//! canonical form makes most signed ops parameter-free (`i64` arithmetic is
//! exact) and is restored after every op by [`canonicalize`].
//!
//! ## Operation classes
//!
//! Following §4.1, every op belongs to one of three classes — *reducible*
//! (pairwise-combinable via the reduce compute operator `op_r[n]`), *unary*
//! (handled by the map compute operator `op_u[n]`), or *select* (handled by
//! the populate coordinate operator `op_s[n]`) — exposed via
//! [`DfgOp::class`].

use rteaal_firrtl::ty::{mask, sext};
use std::fmt;

/// Operation class per paper §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Combinable pairwise by the reduce compute operator (`op_r[n]`).
    Reducible,
    /// Single-input, handled by the map compute operator (`op_u[n]`).
    Unary,
    /// Collects all inputs before choosing (`op_s[n]`): mux, validif,
    /// fused mux chains.
    Select,
    /// Sources: inputs, register state, constants. Never appear in layers.
    Source,
}

/// A concrete dataflow-graph operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u16)]
pub enum DfgOp {
    // --- Sources (never scheduled into layers) ---
    /// Top-level input port value.
    Input = 0,
    /// Register state (read side).
    RegState,
    /// Constant (canonical value in `params[0]`).
    Const,
    // --- Reducible binary ops ---
    Add,
    Sub,
    Mul,
    Divu,
    Divs,
    Remu,
    Rems,
    And,
    Or,
    Xor,
    Ltu,
    Lts,
    Leu,
    Les,
    Gtu,
    Gts,
    Geu,
    Ges,
    Eq,
    Neq,
    Dshl,
    Dshr,
    /// Concatenation; `params = [wa, wb]`.
    Cat,
    // --- Unary ops ---
    Not,
    Neg,
    /// And-reduction; `params = [wa]`.
    Andr,
    Orr,
    /// Xor-reduction; `params = [wa]`.
    Xorr,
    /// Static left shift; `params = [n]`.
    Shl,
    /// Static right shift (arithmetic on canonical form); `params = [n]`.
    Shr,
    /// Bit extraction; `params = [hi, lo]`.
    Bits,
    /// High bits; `params = [n, wa]`.
    Head,
    /// Width/sign adjustment with identity raw semantics: covers FIRRTL
    /// `tail`, `pad`, `asUInt`, `asSInt`, `cvt`, and connect-site
    /// truncation. The node's result width/signedness do the work.
    Resize,
    /// Pure copy at identical width/signedness (the paper's *identity
    /// operation*, §4.2–4.3; elided by coordinate assignment).
    Identity,
    // --- Select ops ---
    /// 2-way select: operands `[cond, tval, fval]`.
    Mux,
    /// `validif`: operands `[cond, value]`; 0 when invalid.
    ValidIf,
    /// Fused priority mux chain (operator fusion, Box 1): operands
    /// `[c0, v0, c1, v1, …, default]`.
    MuxChain,
}

/// Total number of opcodes (shape of the `N` rank).
pub const NUM_OPCODES: usize = DfgOp::MuxChain as usize + 1;

/// All opcodes in `N`-coordinate order.
pub const ALL_OPS: [DfgOp; NUM_OPCODES] = [
    DfgOp::Input,
    DfgOp::RegState,
    DfgOp::Const,
    DfgOp::Add,
    DfgOp::Sub,
    DfgOp::Mul,
    DfgOp::Divu,
    DfgOp::Divs,
    DfgOp::Remu,
    DfgOp::Rems,
    DfgOp::And,
    DfgOp::Or,
    DfgOp::Xor,
    DfgOp::Ltu,
    DfgOp::Lts,
    DfgOp::Leu,
    DfgOp::Les,
    DfgOp::Gtu,
    DfgOp::Gts,
    DfgOp::Geu,
    DfgOp::Ges,
    DfgOp::Eq,
    DfgOp::Neq,
    DfgOp::Dshl,
    DfgOp::Dshr,
    DfgOp::Cat,
    DfgOp::Not,
    DfgOp::Neg,
    DfgOp::Andr,
    DfgOp::Orr,
    DfgOp::Xorr,
    DfgOp::Shl,
    DfgOp::Shr,
    DfgOp::Bits,
    DfgOp::Head,
    DfgOp::Resize,
    DfgOp::Identity,
    DfgOp::Mux,
    DfgOp::ValidIf,
    DfgOp::MuxChain,
];

impl DfgOp {
    /// The op's `N`-rank coordinate.
    pub fn n_coord(self) -> u16 {
        self as u16
    }

    /// Recovers an op from its `N`-rank coordinate.
    pub fn from_n_coord(n: u16) -> Option<DfgOp> {
        ALL_OPS.get(n as usize).copied()
    }

    /// Operation class (paper §4.1).
    pub fn class(self) -> OpClass {
        use DfgOp::*;
        match self {
            Input | RegState | Const => OpClass::Source,
            Add | Sub | Mul | Divu | Divs | Remu | Rems | And | Or | Xor | Ltu | Lts | Leu
            | Les | Gtu | Gts | Geu | Ges | Eq | Neq | Dshl | Dshr | Cat => OpClass::Reducible,
            Not | Neg | Andr | Orr | Xorr | Shl | Shr | Bits | Head | Resize | Identity => {
                OpClass::Unary
            }
            Mux | ValidIf | MuxChain => OpClass::Select,
        }
    }

    /// Number of operands, or `None` for variable arity ([`DfgOp::MuxChain`]).
    pub fn arity(self) -> Option<usize> {
        use DfgOp::*;
        match self {
            Input | RegState | Const => Some(0),
            Not | Neg | Andr | Orr | Xorr | Shl | Shr | Bits | Head | Resize | Identity => Some(1),
            Mux => Some(3),
            ValidIf => Some(2),
            MuxChain => None,
            _ => Some(2),
        }
    }

    /// Short mnemonic for display and codegen.
    pub fn mnemonic(self) -> &'static str {
        use DfgOp::*;
        match self {
            Input => "input",
            RegState => "reg",
            Const => "const",
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Divu => "divu",
            Divs => "divs",
            Remu => "remu",
            Rems => "rems",
            And => "and",
            Or => "or",
            Xor => "xor",
            Ltu => "ltu",
            Lts => "lts",
            Leu => "leu",
            Les => "les",
            Gtu => "gtu",
            Gts => "gts",
            Geu => "geu",
            Ges => "ges",
            Eq => "eq",
            Neq => "neq",
            Dshl => "dshl",
            Dshr => "dshr",
            Cat => "cat",
            Not => "not",
            Neg => "neg",
            Andr => "andr",
            Orr => "orr",
            Xorr => "xorr",
            Shl => "shl",
            Shr => "shr",
            Bits => "bits",
            Head => "head",
            Resize => "resize",
            Identity => "id",
            Mux => "mux",
            ValidIf => "validif",
            MuxChain => "muxchain",
        }
    }
}

impl fmt::Display for DfgOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Restores the canonical representation after an op: width-masked for
/// unsigned, sign-extended for signed.
#[inline]
pub fn canonicalize(raw: u64, width: u32, signed: bool) -> u64 {
    if signed {
        sext(raw & mask(width), width) as u64
    } else {
        raw & mask(width)
    }
}

/// Evaluates an op on canonical operand values, producing the *raw* result
/// (callers must [`canonicalize`] with the node's width/signedness).
///
/// This is the `op_u[n]` / `op_r[n]` / `op_s[n]` case statement of paper
/// Algorithm 2, shared by every simulator in the workspace.
///
/// # Panics
///
/// Debug-panics on operand-count mismatches; sources ([`DfgOp::Input`],
/// [`DfgOp::RegState`]) are not evaluable and panic.
#[inline]
pub fn eval_raw(op: DfgOp, params: &[u64], ins: &[u64]) -> u64 {
    use DfgOp::*;
    match op {
        Const => params[0],
        Add => ins[0].wrapping_add(ins[1]),
        Sub => ins[0].wrapping_sub(ins[1]),
        Mul => ins[0].wrapping_mul(ins[1]),
        Divu => ins[0].checked_div(ins[1]).unwrap_or(0),
        Divs => {
            if ins[1] == 0 {
                0
            } else {
                (ins[0] as i64).wrapping_div(ins[1] as i64) as u64
            }
        }
        Remu => {
            if ins[1] == 0 {
                0
            } else {
                ins[0] % ins[1]
            }
        }
        Rems => {
            if ins[1] == 0 {
                0
            } else {
                (ins[0] as i64).wrapping_rem(ins[1] as i64) as u64
            }
        }
        And => ins[0] & ins[1],
        Or => ins[0] | ins[1],
        Xor => ins[0] ^ ins[1],
        Ltu => (ins[0] < ins[1]) as u64,
        Lts => ((ins[0] as i64) < (ins[1] as i64)) as u64,
        Leu => (ins[0] <= ins[1]) as u64,
        Les => ((ins[0] as i64) <= (ins[1] as i64)) as u64,
        Gtu => (ins[0] > ins[1]) as u64,
        Gts => ((ins[0] as i64) > (ins[1] as i64)) as u64,
        Geu => (ins[0] >= ins[1]) as u64,
        Ges => ((ins[0] as i64) >= (ins[1] as i64)) as u64,
        Eq => (ins[0] == ins[1]) as u64,
        Neq => (ins[0] != ins[1]) as u64,
        Dshl => {
            if ins[1] >= 64 {
                0
            } else {
                ins[0] << ins[1]
            }
        }
        Dshr => ((ins[0] as i64) >> ins[1].min(63)) as u64,
        Cat => {
            let (wa, wb) = (params[0] as u32, params[1] as u32);
            if wb >= 64 {
                ins[1]
            } else {
                ((ins[0] & mask(wa)) << wb) | (ins[1] & mask(wb))
            }
        }
        Not => !ins[0],
        Neg => ins[0].wrapping_neg(),
        Andr => ((ins[0] & mask(params[0] as u32)) == mask(params[0] as u32)) as u64,
        Orr => (ins[0] != 0) as u64,
        Xorr => ((ins[0] & mask(params[0] as u32)).count_ones() & 1) as u64,
        Shl => {
            let n = params[0] as u32;
            if n >= 64 {
                0
            } else {
                ins[0] << n
            }
        }
        Shr => ((ins[0] as i64) >> (params[0] as u32).min(63)) as u64,
        Bits => (ins[0] >> params[1]) & mask((params[0] - params[1] + 1) as u32),
        Head => (ins[0] & mask(params[1] as u32)) >> (params[1] - params[0]),
        Resize | Identity => ins[0],
        Mux => {
            if ins[0] != 0 {
                ins[1]
            } else {
                ins[2]
            }
        }
        ValidIf => {
            if ins[0] != 0 {
                ins[1]
            } else {
                0
            }
        }
        MuxChain => {
            let pairs = (ins.len() - 1) / 2;
            for k in 0..pairs {
                if ins[2 * k] != 0 {
                    return ins[2 * k + 1];
                }
            }
            ins[ins.len() - 1]
        }
        Input | RegState => panic!("source op {op} is not evaluable"),
    }
}

/// Evaluates an op and canonicalizes the result in one step.
#[inline]
pub fn eval(op: DfgOp, params: &[u64], ins: &[u64], width: u32, signed: bool) -> u64 {
    canonicalize(eval_raw(op, params, ins), width, signed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_coords_roundtrip() {
        for (i, &op) in ALL_OPS.iter().enumerate() {
            assert_eq!(op.n_coord() as usize, i);
            assert_eq!(DfgOp::from_n_coord(op.n_coord()), Some(op));
        }
        assert_eq!(DfgOp::from_n_coord(NUM_OPCODES as u16), None);
    }

    #[test]
    fn classes_partition_the_op_set() {
        let mut by_class = [0usize; 4];
        for op in ALL_OPS {
            let idx = match op.class() {
                OpClass::Reducible => 0,
                OpClass::Unary => 1,
                OpClass::Select => 2,
                OpClass::Source => 3,
            };
            by_class[idx] += 1;
        }
        assert_eq!(by_class.iter().sum::<usize>(), NUM_OPCODES);
        assert_eq!(by_class[2], 3); // mux, validif, muxchain
        assert_eq!(by_class[3], 3); // input, reg, const
    }

    #[test]
    fn canonical_signed_values() {
        // SInt<4> value -3 stored sign-extended.
        assert_eq!(canonicalize(0b1101, 4, true), (-3i64) as u64);
        assert_eq!(canonicalize((-3i64) as u64, 4, true), (-3i64) as u64);
        assert_eq!(canonicalize(0xfff, 8, false), 0xff);
    }

    #[test]
    fn signed_arithmetic_is_exact_on_canonical_form() {
        let a = canonicalize(0b1101, 4, true); // -3
        let b = canonicalize(0b0101, 4, true); // 5
        assert_eq!(eval(DfgOp::Add, &[], &[a, b], 5, true) as i64, 2);
        assert_eq!(eval(DfgOp::Sub, &[], &[a, b], 5, true) as i64, -8);
        assert_eq!(eval(DfgOp::Mul, &[], &[a, b], 8, true) as i64, -15);
        assert_eq!(eval(DfgOp::Lts, &[], &[a, b], 1, false), 1);
        assert_eq!(eval(DfgOp::Ltu, &[], &[3, 5], 1, false), 1);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(eval(DfgOp::Divu, &[], &[7, 0], 8, false), 0);
        assert_eq!(eval(DfgOp::Divs, &[], &[(-7i64) as u64, 0], 8, true), 0);
        assert_eq!(eval(DfgOp::Remu, &[], &[7, 0], 8, false), 0);
    }

    #[test]
    fn shifts_on_canonical_form() {
        assert_eq!(eval(DfgOp::Shl, &[2], &[0b101], 5, false), 0b10100);
        assert_eq!(eval(DfgOp::Shr, &[1], &[0b100], 2, false), 0b10);
        // Arithmetic shift of a signed value preserves sign.
        let v = canonicalize(0b1000, 4, true); // -8
        assert_eq!(eval(DfgOp::Shr, &[1], &[v], 3, true) as i64, -4);
        assert_eq!(eval(DfgOp::Dshr, &[], &[v, 2], 2, true) as i64, -2);
        assert_eq!(eval(DfgOp::Dshl, &[], &[1, 70], 8, false), 0);
    }

    #[test]
    fn cat_masks_operands() {
        let a = canonicalize((-1i64) as u64, 4, true); // all-ones pattern
        assert_eq!(eval(DfgOp::Cat, &[4, 3], &[a, 0b010], 7, false), 0b1111010);
    }

    #[test]
    fn reductions() {
        assert_eq!(eval(DfgOp::Andr, &[4], &[0b1111], 1, false), 1);
        assert_eq!(eval(DfgOp::Andr, &[4], &[0b0111], 1, false), 0);
        assert_eq!(eval(DfgOp::Orr, &[], &[0], 1, false), 0);
        // Signed -1 has all bits set at any width.
        let m1 = canonicalize(1, 1, true);
        assert_eq!(eval(DfgOp::Andr, &[1], &[m1], 1, false), 1);
        assert_eq!(eval(DfgOp::Xorr, &[3], &[0b110], 1, false), 0);
    }

    #[test]
    fn bitfield_ops() {
        assert_eq!(eval(DfgOp::Bits, &[5, 2], &[0b110100], 4, false), 0b1101);
        assert_eq!(eval(DfgOp::Head, &[2, 6], &[0b110100], 2, false), 0b11);
        // Resize narrows unsigned by masking ...
        assert_eq!(eval(DfgOp::Resize, &[], &[0xabc], 8, false), 0xbc);
        // ... and re-canonicalizes signed.
        assert_eq!(eval(DfgOp::Resize, &[], &[0b1100], 3, true) as i64, -4);
    }

    #[test]
    fn select_ops() {
        assert_eq!(eval(DfgOp::Mux, &[], &[1, 7, 9], 4, false), 7);
        assert_eq!(eval(DfgOp::Mux, &[], &[0, 7, 9], 4, false), 9);
        assert_eq!(eval(DfgOp::ValidIf, &[], &[0, 42], 8, false), 0);
        // Priority chain: first true selector wins.
        let ins = [0u64, 10, 1, 20, 1, 30, 99];
        assert_eq!(eval(DfgOp::MuxChain, &[], &ins, 8, false), 20);
        let ins = [0u64, 10, 0, 20, 0, 30, 99];
        assert_eq!(eval(DfgOp::MuxChain, &[], &ins, 8, false), 99);
    }

    #[test]
    #[should_panic(expected = "not evaluable")]
    fn sources_are_not_evaluable() {
        eval_raw(DfgOp::Input, &[], &[]);
    }
}
