//! # rteaal-dfg
//!
//! Dataflow-graph middle end of the RTeAAL Sim reproduction.
//!
//! Implements the compiler pipeline of paper Figure 14 between the FIRRTL
//! front end and `OIM` generation:
//!
//! - [`build`]: dataflow-graph construction from a flattened module, with
//!   hash-consing (CSE) and monomorphization of FIRRTL's polymorphic ops
//!   into the [`op::DfgOp`] set.
//! - [`passes`]: constant folding, copy propagation, mux-chain operator
//!   fusion, and dead-code elimination (paper §6.1, Box 1, Appendix B).
//! - [`level`]: levelization (§4.2) and identity-operation accounting
//!   (§4.3, Table 1).
//! - [`plan`]: coordinate assignment for the `I, S, N, O, R` ranks with
//!   identity elision, producing a [`plan::SimPlan`] — the logical content
//!   of the `OIM` tensor.
//! - [`partition`]: the RepCut decomposition of a plan (Appendix C,
//!   Cascade 2) — per-partition op schedules with replicated fan-in
//!   cones, the register update map, and the per-slot home map the
//!   partition-parallel engine in `rteaal-kernels` executes.
//! - [`interp`]: the reference cycle-level interpreter every other
//!   simulator in the workspace is differentially tested against.
//! - [`batch`]: the lane-batched plan simulator — `B` independent
//!   stimulus vectors evaluated through one slot-major `LI` matrix, the
//!   reference model for the parallel engine in `rteaal-kernels`.
//! - [`lane_kernel`]: the kernel-compilation stage between a
//!   [`plan::SimPlan`] and execution — every operation lowered once into
//!   a specialized, autovectorizable lane kernel with dispatch, operand
//!   offsets, and canonicalization folded in.
//! - [`analyze`]: the static plan verifier — schedule legality,
//!   combinational-cycle traces, RUM ownership/coverage, kernel-table
//!   bounds, and dataflow statistics as typed [`analyze::Diagnostic`]s
//!   instead of panics.
//!
//! ## Example
//!
//! ```
//! use rteaal_firrtl::{parser::parse, lower::lower_typed};
//! use rteaal_dfg::{build, passes, plan};
//!
//! let src = "\
//! circuit Blinky :
//!   module Blinky :
//!     input clock : Clock
//!     output led : UInt<1>
//!     reg r : UInt<4>, clock
//!     r <= tail(add(r, UInt<4>(1)), 1)
//!     led <= bits(r, 3, 3)
//! ";
//! let graph = build(&lower_typed(&parse(src)?)?)?;
//! let (graph, stats) = passes::optimize(&graph, &passes::PassOptions::default());
//! assert_eq!(stats.chains_fused, 0);
//! let plan = plan::plan(&graph);
//! assert!(plan.stats.layers >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analyze;
pub mod batch;
pub mod build;
pub mod error;
pub mod graph;
pub mod interp;
pub mod lane_kernel;
pub mod level;
pub mod op;
pub mod partition;
pub mod passes;
pub mod plan;
pub mod specialize;

pub use analyze::{
    analyze_design, analyze_graph, analyze_partitioned, analyze_plan, AnalysisReport,
    AnalysisStats, DiagKind, Diagnostic, Severity,
};
pub use batch::BatchPlanSim;
pub use build::build;
pub use error::{DfgError, Result};
pub use graph::{Graph, Node, NodeId, RegDef};
pub use lane_kernel::{BatchEngine, CompiledLayer, CompiledOp, KernelArgs, LaneWindow};
pub use op::{DfgOp, OpClass};
pub use partition::{PartitionSchedule, PartitionedPlan, RumEntry};
pub use plan::{OpInst, PlanSim, SimPlan};
pub use specialize::{specialize, SpecProgram, SpecStats, Specialization, SpecializedPlan};
