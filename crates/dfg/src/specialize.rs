//! Whole-design specialization: the compile tier between coordinate
//! assignment and the batched lane walk.
//!
//! The static verifier ([`crate::analyze`]) already *names* the waste in
//! a plan — `dead_ops`, `never_toggling`, per-layer `layer_activity` —
//! and the profiled walk (`BatchKernel::step_profiled`) attributes the
//! dynamic cost layer by layer. This module *spends* that attribution,
//! in two stages:
//!
//! 1. **Plan specialization** ([`specialize`]): a plan→plan transform
//!    that constant-folds operations whose inputs can never toggle
//!    (their outputs become power-on constants in `init_values`),
//!    deduplicates structurally identical operations (classic value
//!    numbering, guarded by observability), removes operations no
//!    output, probe, or register commit can ever see (dead-code
//!    elimination over the same roots the verifier uses), and drops the
//!    layers this empties. The result is still an ordinary [`SimPlan`]
//!    over the *same* slot numbering — every downstream consumer
//!    (partitioner, verifier, kernel compiler, batched state, DMI
//!    pokes, waveforms) works unchanged, and observable slots keep
//!    their meaning.
//!
//! 2. **Superblock compilation** ([`SpecProgram`]): the specialized
//!    layers are lowered to a flat bytecode the walker executes as
//!    straight-line superblocks (ESSENT-style, without per-op
//!    function-pointer dispatch for the packed portion). Slots whose
//!    canonicalization mask is a single bit are *bit-packed*: 64 lanes
//!    per `u64` word in a sidecar bit-plane matrix, with `Pack`
//!    (gather) and `Unpack` (scatter) moves folded into the layer
//!    bodies at the packed region's boundary. A packed AND/OR/XOR/MUX
//!    processes 64 stimulus lanes per instruction instead of one.
//!
//! The program also splits every layer into an *input cone* prefix
//! (operations that depend only on inputs and constants, never on
//! register state) and a sequential remainder. When no input has
//! changed since the last full evaluation — the common case in a
//! free-running batch — the cone's results are still valid and the
//! walker skips it: the activity-conditional layer gating of the
//! roadmap, driven by the same dependence analysis that powers
//! `layer_activity`.
//!
//! # What stays bit-exact
//!
//! Specialized execution guarantees bit-identical *observables* versus
//! the interpreted golden model: output ports, probed signals (and
//! therefore halt conditions, waveforms, and DMI pokes), and register
//! state — every slot the verifier treats as a liveness root.
//! Interior wires that were folded, deduplicated, dead, or packed are
//! exactly the slots no public API observes.
//!
//! # Safety model
//!
//! Packed rows live in a sidecar `bits` buffer (rows × words, where
//! `words = ⌈stride/64⌉`). Within one layer the program is executed in
//! two phases — phase A moves values across the wide/packed boundary
//! (`Pack`/`Unpack`), phase B evaluates wide and packed bodies — and
//! every instruction of a phase writes a row (wide `LI` row or bit
//! row) no other instruction of the same phase touches, while reading
//! only rows sealed by an earlier layer or the previous phase. That is
//! the same disjointness argument the layer-parallel walk already
//! relies on, so the threaded walk needs one extra barrier per layer
//! and nothing else.

use crate::lane_kernel::{CompiledOp, LaneWindow};
use crate::op::{canonicalize, DfgOp};
use crate::plan::{OpInst, SimPlan};
use rteaal_firrtl::ty::mask;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Whether the execution stack applies the specialization tier.
///
/// `Off` is the seed behavior (and the golden model's): the plan is
/// executed exactly as coordinate assignment produced it. `Auto`
/// applies [`specialize`] and lets each constructor decide whether the
/// superblock/bit-packing program pays for the lane count at hand (it
/// packs when `lanes >= 32`; below that the gather/scatter boundary
/// costs more than 64-lanes-per-word saves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Specialization {
    /// Execute the plan as-is.
    #[default]
    Off,
    /// Fold, dedup, eliminate, fuse — and bit-pack when it pays.
    Auto,
}

/// What the plan transform did, for reports and telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SpecStats {
    /// Operations before specialization.
    pub ops_before: usize,
    /// Operations after specialization.
    pub ops_after: usize,
    /// Ops constant-folded into `init_values` (never-toggling cones).
    pub folded: usize,
    /// Ops removed by value-numbering deduplication.
    pub deduped: usize,
    /// Ops removed as unobservable (dead-code elimination).
    pub dead_removed: usize,
    /// Layers dropped because specialization emptied them.
    pub layers_dropped: usize,
}

/// A specialized plan: the transformed [`SimPlan`] plus the transform's
/// accounting. The plan keeps the original slot numbering, so every
/// observable (outputs, probes, registers) resolves unchanged.
#[derive(Debug, Clone)]
pub struct SpecializedPlan {
    /// The transformed plan.
    pub plan: SimPlan,
    /// What the transform removed.
    pub stats: SpecStats,
}

/// Slots the transform must preserve verbatim: output ports, probed
/// signals (pokeable via DMI), and both sides of every register commit
/// — the same roots the static verifier's liveness walk uses.
fn observed_slots(plan: &SimPlan) -> HashSet<u32> {
    let mut obs = HashSet::new();
    for &(_, s) in &plan.output_slots {
        obs.insert(s);
    }
    for &(_, s, _) in &plan.probes {
        obs.insert(s);
    }
    for &(dst, src) in &plan.commits {
        obs.insert(dst);
        obs.insert(src);
    }
    obs
}

/// The op's declared arity matches its operand list (analyzer-clean
/// plans always pass; this guards [`crate::op::eval`] against malformed
/// hand-built plans).
fn shape_ok(op: &OpInst) -> bool {
    op.op()
        .arity()
        .map_or(!op.ins.is_empty(), |a| a == op.ins.len())
}

/// Specializes a plan: constant-folds never-toggling ops into
/// `init_values`, deduplicates structurally identical ops, removes
/// unobservable ops, and drops emptied layers. Slot numbering is
/// preserved; the result is a valid plan for every downstream stage
/// (including RepCut partitioning and the static verifier).
///
/// Folding is *observability-guarded*: an op whose output is probed is
/// evaluated but kept, because a DMI poke may overwrite the slot
/// between cycles and the golden model re-establishes the value on the
/// next evaluation — so must we. Deduplication likewise only drops an
/// op whose output no output port, probe, or commit reads.
pub fn specialize(plan: &SimPlan) -> SpecializedPlan {
    let mut plan = plan.clone();
    let mut stats = SpecStats {
        ops_before: plan.total_ops(),
        ..SpecStats::default()
    };
    let observed = observed_slots(&plan);
    let probed: HashSet<u32> = plan.probes.iter().map(|&(_, s, _)| s).collect();

    // Pass 1: constant propagation rooted at the materialized constant
    // slots. An op whose operands are all known evaluates now; if its
    // slot is not pokeable the op itself disappears and the value
    // becomes part of the power-on image (which `reset`/`reset_lane`
    // restore, keeping lane recycling exact).
    let mut known: HashMap<u32, u64> = (plan.const_slots.0..plan.const_slots.1)
        .map(|s| (s, plan.init_values[s as usize]))
        .collect();
    {
        let SimPlan {
            layers,
            init_values,
            ..
        } = &mut plan;
        for layer in layers {
            layer.retain(|op| {
                if !shape_ok(op) {
                    return true;
                }
                let Some(ins) = op
                    .ins
                    .iter()
                    .map(|r| known.get(r).copied())
                    .collect::<Option<Vec<u64>>>()
                else {
                    return true;
                };
                let v = crate::op::eval(op.op(), &op.params, &ins, op.width as u32, op.signed);
                known.insert(op.out, v);
                if probed.contains(&op.out) {
                    return true; // pokeable: keep re-establishing the value
                }
                init_values[op.out as usize] = v;
                stats.folded += 1;
                false
            });
        }
    }

    // Pass 2: value numbering. Two ops with the same opcode, operands,
    // parameters, and result type compute the same value every cycle;
    // the later one's consumers are rewritten to the earlier output
    // (always from a strictly earlier or equal layer, so the value is
    // sealed before any consumer runs).
    type Key = (u16, Vec<u32>, Vec<u64>, u8, bool);
    let mut seen: HashMap<Key, u32> = HashMap::new();
    let mut rewrite: HashMap<u32, u32> = HashMap::new();
    for layer in &mut plan.layers {
        layer.retain_mut(|op| {
            for r in &mut op.ins {
                if let Some(&c) = rewrite.get(r) {
                    *r = c;
                }
            }
            let key = (op.n, op.ins.clone(), op.params.clone(), op.width, op.signed);
            match seen.get(&key) {
                Some(&canon) if !observed.contains(&op.out) => {
                    rewrite.insert(op.out, canon);
                    stats.deduped += 1;
                    false
                }
                Some(_) => true,
                None => {
                    seen.insert(key, op.out);
                    true
                }
            }
        });
    }

    // Pass 3: dead-code elimination, backward from the verifier's
    // liveness roots (outputs, probes, commit sources *and*
    // destinations).
    let mut live = vec![false; plan.num_slots];
    for &s in &observed {
        live[s as usize] = true;
    }
    for layer in plan.layers.iter_mut().rev() {
        // Within a layer ops are independent, so a reverse sweep of the
        // layer list is a valid topological order.
        let kept: Vec<OpInst> = layer
            .iter()
            .filter(|op| live[op.out as usize])
            .cloned()
            .collect();
        for op in &kept {
            for &r in &op.ins {
                live[r as usize] = true;
            }
        }
        stats.dead_removed += layer.len() - kept.len();
        *layer = kept;
    }

    // Pass 4: drop emptied layers and refresh the summary stats.
    let before = plan.layers.len();
    plan.layers.retain(|l| !l.is_empty());
    stats.layers_dropped = before - plan.layers.len();
    plan.stats.layers = plan.layers.len();
    plan.stats.effectual_ops = plan.total_ops();
    stats.ops_after = plan.total_ops();
    SpecializedPlan { plan, stats }
}

// ---------------------------------------------------------------------------
// Superblock program: flat bytecode + bit-packed lanes
// ---------------------------------------------------------------------------

/// A packed bitwise body: one instruction processes 64 lanes per word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BitBody {
    /// `d = a` (1-bit resize / reductions over a 1-bit field).
    Copy,
    /// `d = !a`.
    Not,
    /// `d = a & b` (also `validif`).
    And,
    /// `d = a | b`.
    Or,
    /// `d = a ^ b` (also 1-bit `neq`).
    Xor,
    /// `d = !(a ^ b)` (1-bit `eq`).
    Xnor,
    /// `d = (a & b) | (!a & c)` (1-bit `mux`; `a` is the selector).
    Mux,
}

/// One packed instruction: a body over bit-plane rows.
#[derive(Debug, Clone, Copy)]
struct BitInst {
    body: BitBody,
    /// Destination row.
    d: u32,
    /// Operand rows (unused trail as 0).
    a: u32,
    b: u32,
    c: u32,
}

/// A boundary move: `Pack` gathers bit 0 of a wide `LI` row into a bit
/// row; `Unpack` scatters a bit row back into a wide `LI` row.
#[derive(Debug, Clone, Copy)]
struct MoveInst {
    row: u32,
    slot: u32,
}

/// A wide body with a fused superblock lowering: the opcode set the
/// flat-bytecode walker executes without per-op function-pointer
/// dispatch, chunked through lane-local registers so the bodies
/// autovectorize (the indirect-call kernels defeat LLVM's alias
/// analysis; staging each 8-lane chunk in local arrays restores it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WideBody {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Ltu,
    Lts,
    Leu,
    Les,
    Gtu,
    Gts,
    Geu,
    Ges,
    Eq,
    Neq,
    Dshl,
    Dshr,
    Cat,
    ValidIf,
    Not,
    Neg,
    Andr,
    Orr,
    Xorr,
    Shl,
    Shr,
    Bits,
    Head,
    Resize,
    Mux,
    Const,
}

/// One fused wide instruction: the flat-bytecode form of an op with a
/// [`WideBody`] lowering. Field meanings mirror the compiled kernels'
/// `KernelArgs` (p0/p1 are the op's static parameters; `msk`/`sh` the
/// canonicalization constants).
#[derive(Debug, Clone, Copy)]
struct WideInst {
    body: WideBody,
    out: u32,
    a: u32,
    b: u32,
    c: u32,
    p0: u64,
    p1: u64,
    msk: u64,
    sh: u32,
    signed: bool,
    max_slot: u32,
}

/// One specialized layer: phase A crosses the wide/packed boundary,
/// phase B evaluates the bodies — fused flat bytecode (`fast`), the
/// compiled per-op kernels no fused body exists for (`slow`: variable
/// arity, division), then the packed bit-plane bodies. Each list is
/// partitioned input-cone first so the cone prefix can be skipped when
/// inputs are unchanged; within each cone half the fast stream is
/// sorted by body so the interpreter's dispatch branch runs in
/// predictable same-opcode runs (ops within a layer are
/// order-independent by construction).
#[derive(Debug, Clone, Default)]
struct SpecLayer {
    packs: Vec<MoveInst>,
    cone_packs: usize,
    unpacks: Vec<MoveInst>,
    cone_unpacks: usize,
    fast: Vec<WideInst>,
    cone_fast: usize,
    slow: Vec<CompiledOp>,
    cone_slow: usize,
    bits: Vec<BitInst>,
    cone_bits: usize,
}

/// The compiled superblock program for one (unpartitioned) plan: a
/// flat, layer-structured bytecode with bit-packed 1-bit interior
/// wires. Built by [`SpecProgram::build`]; executed by the batched
/// kernel's specialized walk.
#[derive(Debug, Clone)]
pub struct SpecProgram {
    layers: Vec<SpecLayer>,
    bit_rows: usize,
    packed_ops: usize,
    pack_moves: usize,
    unpack_moves: usize,
    cone_ops: usize,
    fused_ops: usize,
    slow_ops: usize,
}

/// How a slot's value is produced, for packability classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotKind {
    /// Top-level input (index into `input_types`).
    Input(usize),
    /// Register (commit destination).
    Register,
    /// Output of a scheduled op (width, signed).
    OpOut(u8, bool),
    /// Never written after power-on: constants and folded slots.
    Static,
}

impl SpecProgram {
    /// Lowers a plan's layers into the superblock bytecode. With
    /// `pack = false` every op stays wide (the program still buys the
    /// dispatch-free walk and the input-cone skip); with `pack = true`,
    /// eligible 1-bit interior wires are packed 64 lanes per word.
    pub fn build(plan: &SimPlan, pack: bool) -> SpecProgram {
        let n = plan.num_slots;
        let mut kind = vec![SlotKind::Static; n];
        let mut producer_layer = vec![usize::MAX; n];
        for (i, layer) in plan.layers.iter().enumerate() {
            for op in layer {
                kind[op.out as usize] = SlotKind::OpOut(op.width, op.signed);
                producer_layer[op.out as usize] = i;
            }
        }
        for (idx, &s) in plan.input_slots.iter().enumerate() {
            kind[s as usize] = SlotKind::Input(idx);
        }
        for &(dst, _) in &plan.commits {
            kind[dst as usize] = SlotKind::Register;
        }
        let mut probe_width = vec![None; n];
        for &(_, s, w) in &plan.probes {
            probe_width[s as usize] = Some(w);
        }
        let observed = observed_slots(plan);
        let probed: Vec<bool> = {
            let mut v = vec![false; n];
            for &(_, s, _) in &plan.probes {
                v[s as usize] = true;
            }
            v
        };

        // Declared-1-bit slots: their canonical value's bit 0 is the
        // whole value. `canon` additionally promises the *stored word*
        // is that canonical value — which a probed slot cannot, because
        // a DMI poke writes raw words. Bitwise bodies (and/or/xor/not)
        // only ever look at bit 0 positionally, so `bit0` operands
        // suffice for them; comparisons and selectors test whole words
        // in the golden model and therefore demand `canon` operands.
        let mut bit0 = vec![false; n];
        let mut canon = vec![false; n];
        for s in 0..n {
            let one = match kind[s] {
                SlotKind::Input(i) => plan.input_types[i] == (1, false),
                SlotKind::OpOut(w, _) => w == 1,
                SlotKind::Register => probe_width[s] == Some(1),
                SlotKind::Static => plan.init_values[s] <= 1,
            };
            bit0[s] = one;
            canon[s] = one
                && !probed[s]
                && match kind[s] {
                    SlotKind::OpOut(_, signed) => !signed,
                    _ => true,
                };
        }

        // Candidate selection: 1-bit unsigned unobserved outputs of
        // bodies with a packed lowering whose operands satisfy the
        // body's bit0/canon requirements.
        let packable = |op: &OpInst| -> Option<BitBody> {
            if !pack || op.width != 1 || op.signed || observed.contains(&op.out) || !shape_ok(op) {
                return None;
            }
            let b0 = |i: usize| bit0[op.ins[i] as usize];
            let cn = |i: usize| canon[op.ins[i] as usize];
            match op.op() {
                DfgOp::And if b0(0) && b0(1) => Some(BitBody::And),
                DfgOp::Or if b0(0) && b0(1) => Some(BitBody::Or),
                DfgOp::Xor if b0(0) && b0(1) => Some(BitBody::Xor),
                DfgOp::Not if b0(0) => Some(BitBody::Not),
                DfgOp::Eq if cn(0) && cn(1) => Some(BitBody::Xnor),
                DfgOp::Neq if cn(0) && cn(1) => Some(BitBody::Xor),
                DfgOp::Mux if cn(0) && b0(1) && b0(2) => Some(BitBody::Mux),
                DfgOp::ValidIf if cn(0) && b0(1) => Some(BitBody::And),
                DfgOp::Orr if cn(0) => Some(BitBody::Copy),
                DfgOp::Resize if b0(0) => Some(BitBody::Copy),
                DfgOp::Andr | DfgOp::Xorr if b0(0) && op.params.first() == Some(&1) => {
                    Some(BitBody::Copy)
                }
                _ => None,
            }
        };
        let mut body_of: HashMap<u32, BitBody> = HashMap::new();
        for layer in &plan.layers {
            for op in layer {
                if let Some(b) = packable(op) {
                    body_of.insert(op.out, b);
                }
            }
        }

        // Packing profitability: a packed body replaces one wide pass
        // with a 64-lanes-per-word instruction, but every boundary move
        // is a scalar bit gather/scatter the vectorized wide walk
        // outruns — worth roughly two wide passes. Candidates form
        // clusters (connected components over packed-value edges; a
        // candidate consuming a candidate is by construction the same
        // component, so clusters never feed each other), and each
        // cluster pays its own boundary: one pack per distinct wide
        // source its members read, one unpack per member a wide op
        // consumes. A cluster whose boundary costs as much as the
        // passes it saves is dropped whole — shallow control fragments
        // (rv32i decode's eq→and→mux-sel sprinkles) fall back to the
        // fused wide walk, dense interiors keep their 64×.
        const MOVE_COST: usize = 2;
        if !body_of.is_empty() {
            let outs: Vec<u32> = body_of.keys().copied().collect();
            let idx: HashMap<u32, usize> = outs.iter().enumerate().map(|(i, &s)| (s, i)).collect();
            let mut parent: Vec<usize> = (0..outs.len()).collect();
            fn find(parent: &mut [usize], i: usize) -> usize {
                let mut r = i;
                while parent[r] != r {
                    parent[r] = parent[parent[r]];
                    r = parent[r];
                }
                r
            }
            for layer in &plan.layers {
                for op in layer {
                    let Some(&i) = idx.get(&op.out) else { continue };
                    for &r in &op.ins {
                        if let Some(&j) = idx.get(&r) {
                            let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                            parent[a] = b;
                        }
                    }
                }
            }
            // Per-cluster accounting: members, pack sources, unpacked outs.
            let mut members: HashMap<usize, usize> = HashMap::new();
            let mut packs: HashMap<usize, HashSet<u32>> = HashMap::new();
            let mut unpacks: HashMap<usize, HashSet<u32>> = HashMap::new();
            for layer in &plan.layers {
                for op in layer {
                    if let Some(&i) = idx.get(&op.out) {
                        let root = find(&mut parent, i);
                        *members.entry(root).or_insert(0) += 1;
                        for &r in &op.ins {
                            if !body_of.contains_key(&r) {
                                packs.entry(root).or_default().insert(r);
                            }
                        }
                    } else {
                        for &r in &op.ins {
                            if let Some(&j) = idx.get(&r) {
                                let root = find(&mut parent, j);
                                unpacks.entry(root).or_default().insert(r);
                            }
                        }
                    }
                }
            }
            let doomed: HashSet<usize> = members
                .iter()
                .filter(|&(&root, &n)| {
                    let moves = packs.get(&root).map_or(0, |s| s.len())
                        + unpacks.get(&root).map_or(0, |s| s.len());
                    MOVE_COST * moves >= n
                })
                .map(|(&root, _)| root)
                .collect();
            for (s, &i) in &idx {
                if doomed.contains(&find(&mut parent, i)) {
                    body_of.remove(s);
                }
            }
        }

        // Input cone: transitively dependent on inputs and static slots
        // only (never register state). Valid across steps while no
        // input changes.
        let mut cone = vec![false; n];
        for s in 0..n {
            cone[s] = matches!(kind[s], SlotKind::Input(_) | SlotKind::Static);
        }
        for layer in &plan.layers {
            for op in layer {
                cone[op.out as usize] = op.ins.iter().all(|&r| cone[r as usize]);
            }
        }

        // Row assignment: every packed output gets a bit row, and every
        // wide slot a packed body reads gets a gather row.
        let mut row_of: HashMap<u32, u32> = HashMap::new();
        let mut next_row = 0u32;
        let row = |s: u32, next_row: &mut u32, row_of: &mut HashMap<u32, u32>| -> u32 {
            *row_of.entry(s).or_insert_with(|| {
                let r = *next_row;
                *next_row += 1;
                r
            })
        };
        let mut layers: Vec<SpecLayer> = (0..plan.layers.len())
            .map(|_| SpecLayer::default())
            .collect();
        // First-use bookkeeping for boundary moves.
        let mut pack_at: HashMap<u32, usize> = HashMap::new(); // wide source -> first packed-consumer layer
        let mut unpack_at: HashMap<u32, usize> = HashMap::new(); // packed out -> first wide-consumer layer
        for (i, layer) in plan.layers.iter().enumerate() {
            for op in layer {
                if body_of.contains_key(&op.out) {
                    for &r in &op.ins {
                        if !body_of.contains_key(&r) {
                            pack_at.entry(r).or_insert(i);
                        }
                    }
                } else {
                    for &r in &op.ins {
                        if body_of.contains_key(&r) {
                            unpack_at.entry(r).or_insert(i);
                        }
                    }
                }
            }
        }
        for (&slot, &at) in &pack_at {
            let r = row(slot, &mut next_row, &mut row_of);
            layers[at].packs.push(MoveInst { row: r, slot });
        }
        for (&slot, &at) in &unpack_at {
            let r = row(slot, &mut next_row, &mut row_of);
            layers[at].unpacks.push(MoveInst { row: r, slot });
        }
        // Deterministic phase-A order (HashMap iteration is not).
        for l in &mut layers {
            l.packs.sort_by_key(|m| m.slot);
            l.unpacks.sort_by_key(|m| m.slot);
        }
        let mut packed_ops = 0usize;
        let mut cone_ops = 0usize;
        let mut fused_ops = 0usize;
        let mut slow_ops = 0usize;
        for (i, layer) in plan.layers.iter().enumerate() {
            for op in layer {
                cone_ops += cone[op.out as usize] as usize;
                if let Some(&body) = body_of.get(&op.out) {
                    let d = row(op.out, &mut next_row, &mut row_of);
                    let r = |k: usize| row_of[&op.ins[k]];
                    let (a, b, c) = match body {
                        BitBody::Copy | BitBody::Not => (r(0), 0, 0),
                        BitBody::Mux => (r(0), r(1), r(2)),
                        _ => (r(0), r(1), 0),
                    };
                    layers[i].bits.push(BitInst { body, d, a, b, c });
                    packed_ops += 1;
                } else if let Some(inst) = lower_wide(op) {
                    fused_ops += 1;
                    layers[i].fast.push(inst);
                } else {
                    slow_ops += 1;
                    layers[i].slow.push(CompiledOp::compile(op));
                }
            }
        }

        // Cone-first partition of every list, recording the prefix
        // length the skip path elides.
        let mut pack_moves = 0;
        let mut unpack_moves = 0;
        for l in &mut layers {
            l.cone_packs = partition_cone(&mut l.packs, |m| cone[m.slot as usize]);
            l.cone_unpacks = partition_cone(&mut l.unpacks, |m| cone[m.slot as usize]);
            l.cone_fast = partition_cone(&mut l.fast, |g| cone[g.out as usize]);
            l.cone_slow = partition_cone(&mut l.slow, |op| cone[op.out_slot() as usize]);
            // Opcode-sorted within each cone half: ops in a layer are
            // order-independent, and same-body runs keep the walker's
            // dispatch branch predicted.
            let nc = l.cone_fast;
            l.fast[..nc].sort_by_key(|g| (g.body as u8, g.out));
            l.fast[nc..].sort_by_key(|g| (g.body as u8, g.out));
            let out_of: HashMap<u32, u32> = row_of.iter().map(|(&slot, &r)| (r, slot)).collect();
            l.cone_bits = partition_cone(&mut l.bits, |b| cone[out_of[&b.d] as usize]);
            pack_moves += l.packs.len();
            unpack_moves += l.unpacks.len();
        }
        SpecProgram {
            layers,
            bit_rows: next_row as usize,
            packed_ops,
            pack_moves,
            unpack_moves,
            cone_ops,
            fused_ops,
            slow_ops,
        }
    }

    /// Number of layers (matches the plan's).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Bit-plane rows the sidecar buffer needs.
    pub fn bit_rows(&self) -> usize {
        self.bit_rows
    }

    /// Ops lowered to packed 64-lanes-per-word bodies.
    pub fn packed_ops(&self) -> usize {
        self.packed_ops
    }

    /// Gather/scatter moves at the packed-region boundary.
    pub fn boundary_moves(&self) -> (usize, usize) {
        (self.pack_moves, self.unpack_moves)
    }

    /// Ops in the input cone (skippable while inputs are unchanged).
    pub fn cone_ops(&self) -> usize {
        self.cone_ops
    }

    /// Wide ops lowered to fused flat bytecode vs. ops that fell back
    /// to the compiled per-op kernels: `(fused, fallback)`.
    pub fn fused_ops(&self) -> (usize, usize) {
        (self.fused_ops, self.slow_ops)
    }

    /// Words per bit-plane row for a lane stride.
    pub fn words_per_row(stride: usize) -> usize {
        stride.div_ceil(64)
    }

    /// Length of the sidecar bit buffer for a lane stride.
    pub fn bits_len(&self, stride: usize) -> usize {
        self.bit_rows * Self::words_per_row(stride)
    }

    /// Phase-A instruction count of a layer (boundary moves).
    pub fn phase_a_len(&self, i: usize) -> usize {
        self.layers[i].packs.len() + self.layers[i].unpacks.len()
    }

    /// Phase-B instruction count of a layer (wide + packed bodies).
    pub fn phase_b_len(&self, i: usize) -> usize {
        let l = &self.layers[i];
        l.fast.len() + l.slow.len() + l.bits.len()
    }

    /// Evaluates one layer single-threaded: phase A then phase B, with
    /// the input-cone prefix skipped when `skip_cone` (sound only if no
    /// input, poke, reset, window, or lane permutation happened since
    /// the last full evaluation — the kernel tracks that).
    pub fn eval_layer(
        &self,
        i: usize,
        li: &mut [u64],
        w: LaneWindow,
        bits: &mut [u64],
        skip_cone: bool,
        buf: &mut Vec<u64>,
    ) {
        let l = &self.layers[i];
        let (p0, u0, f0, s0, b0) = if skip_cone {
            (
                l.cone_packs,
                l.cone_unpacks,
                l.cone_fast,
                l.cone_slow,
                l.cone_bits,
            )
        } else {
            (0, 0, 0, 0, 0)
        };
        let np = l.packs.len();
        let (nf, ns) = (l.fast.len(), l.slow.len());
        // SAFETY: `li` and `bits` are exclusive borrows sized by the
        // caller (`bits` at least `bits_len(w.stride)`), so the row
        // disjointness the pointer walk needs holds trivially.
        unsafe {
            self.eval_phase_a(i, li.as_mut_ptr(), w, bits.as_mut_ptr(), p0, np);
            self.eval_phase_a(
                i,
                li.as_mut_ptr(),
                w,
                bits.as_mut_ptr(),
                np + u0,
                np + l.unpacks.len(),
            );
            self.eval_phase_b(i, li.as_mut_ptr(), w, bits.as_mut_ptr(), f0, nf, buf);
            self.eval_phase_b(
                i,
                li.as_mut_ptr(),
                w,
                bits.as_mut_ptr(),
                nf + s0,
                nf + ns,
                buf,
            );
            self.eval_phase_b(
                i,
                li.as_mut_ptr(),
                w,
                bits.as_mut_ptr(),
                nf + ns + b0,
                nf + ns + l.bits.len(),
                buf,
            );
        }
    }

    /// Evaluates phase-A instructions `[lo, hi)` of layer `i` (flat
    /// order: packs then unpacks) through raw pointers.
    ///
    /// # Safety
    ///
    /// `li` must cover the slot-major `LI` matrix (stride `w.stride`)
    /// and `bits` must cover [`Self::bits_len`]`(w.stride)` words.
    /// Phase-A instructions write disjoint rows (each pack owns its bit
    /// row, each unpack its wide row) and read rows no phase-A
    /// instruction writes, so concurrent callers over disjoint `[lo,
    /// hi)` ranges are race-free as long as the previous layer's phase
    /// B is barrier-sealed.
    pub unsafe fn eval_phase_a(
        &self,
        i: usize,
        li: *mut u64,
        w: LaneWindow,
        bits: *mut u64,
        lo: usize,
        hi: usize,
    ) {
        let l = &self.layers[i];
        let np = l.packs.len();
        let wpr = Self::words_per_row(w.stride);
        for j in lo..hi {
            if j < np {
                let m = l.packs[j];
                // SAFETY: caller contract — rows in bounds, pack owns
                // its destination bit row.
                unsafe { pack_row(li, bits, m.slot, m.row, w, wpr) };
            } else {
                let m = l.unpacks[j - np];
                // SAFETY: caller contract — rows in bounds, unpack owns
                // its destination wide row (a packed op's slot, which
                // no wide op writes).
                unsafe { unpack_row(li, bits, m.slot, m.row, w, wpr) };
            }
        }
    }

    /// Evaluates phase-B instructions `[lo, hi)` of layer `i` (flat
    /// order: fused wide bodies, fallback kernels, then packed bodies)
    /// through raw pointers.
    ///
    /// # Safety
    ///
    /// As [`Self::eval_phase_a`], plus the `CompiledOp::eval_lanes_ptr`
    /// contract for the wide portion. Phase-B instructions write
    /// disjoint rows and read only rows sealed by phase A or earlier
    /// layers.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn eval_phase_b(
        &self,
        i: usize,
        li: *mut u64,
        w: LaneWindow,
        bits: *mut u64,
        lo: usize,
        hi: usize,
        buf: &mut Vec<u64>,
    ) {
        let l = &self.layers[i];
        let (nf, ns) = (l.fast.len(), l.slow.len());
        let wpr = Self::words_per_row(w.stride);
        let aw = w.active.div_ceil(64);
        for inst in &l.fast[lo.min(nf)..hi.min(nf)] {
            // SAFETY: caller contract matches the `WideInst::eval`
            // contract (same row-disjointness argument).
            unsafe { inst.eval(li, w) };
        }
        for op in &l.slow[lo.clamp(nf, nf + ns) - nf..hi.clamp(nf, nf + ns) - nf] {
            // SAFETY: caller contract matches `eval_lanes_ptr`'s.
            unsafe { op.eval_lanes_ptr(li, w, buf) };
        }
        for b in &l.bits[lo.max(nf + ns) - nf - ns..hi.max(nf + ns) - nf - ns] {
            let (d0, a0, b0, c0) = (
                b.d as usize * wpr,
                b.a as usize * wpr,
                b.b as usize * wpr,
                b.c as usize * wpr,
            );
            for wi in 0..aw {
                // SAFETY: rows are in bounds (`bits_len` words) and
                // the destination row is this instruction's alone.
                unsafe {
                    let a = *bits.add(a0 + wi);
                    let v = match b.body {
                        BitBody::Copy => a,
                        BitBody::Not => !a,
                        BitBody::And => a & *bits.add(b0 + wi),
                        BitBody::Or => a | *bits.add(b0 + wi),
                        BitBody::Xor => a ^ *bits.add(b0 + wi),
                        BitBody::Xnor => !(a ^ *bits.add(b0 + wi)),
                        BitBody::Mux => (a & *bits.add(b0 + wi)) | (!a & *bits.add(c0 + wi)),
                    };
                    *bits.add(d0 + wi) = v;
                }
            }
        }
    }
}

/// Lowers an op to the fused flat bytecode, or `None` when no fused
/// body exists (variable arity, division — whose zero-checked bodies
/// would not vectorize anyway) and the op must fall back to its
/// compiled per-op kernel. The body semantics mirror the compiled
/// kernels case for case; equivalence is pinned by the differential
/// proptests.
fn lower_wide(op: &OpInst) -> Option<WideInst> {
    use DfgOp::*;
    let body = match (op.op(), op.ins.len()) {
        (Const, 0) => Some(WideBody::Const),
        (Add, 2) => Some(WideBody::Add),
        (Sub, 2) => Some(WideBody::Sub),
        (Mul, 2) => Some(WideBody::Mul),
        (And, 2) => Some(WideBody::And),
        (Or, 2) => Some(WideBody::Or),
        (Xor, 2) => Some(WideBody::Xor),
        (Ltu, 2) => Some(WideBody::Ltu),
        (Lts, 2) => Some(WideBody::Lts),
        (Leu, 2) => Some(WideBody::Leu),
        (Les, 2) => Some(WideBody::Les),
        (Gtu, 2) => Some(WideBody::Gtu),
        (Gts, 2) => Some(WideBody::Gts),
        (Geu, 2) => Some(WideBody::Geu),
        (Ges, 2) => Some(WideBody::Ges),
        (Eq, 2) => Some(WideBody::Eq),
        (Neq, 2) => Some(WideBody::Neq),
        (Dshl, 2) => Some(WideBody::Dshl),
        (Dshr, 2) => Some(WideBody::Dshr),
        (Cat, 2) => Some(WideBody::Cat),
        (ValidIf, 2) => Some(WideBody::ValidIf),
        (Not, 1) => Some(WideBody::Not),
        (Neg, 1) => Some(WideBody::Neg),
        (Andr, 1) => Some(WideBody::Andr),
        (Orr, 1) => Some(WideBody::Orr),
        (Xorr, 1) => Some(WideBody::Xorr),
        (Shl, 1) => Some(WideBody::Shl),
        (Shr, 1) => Some(WideBody::Shr),
        (Bits, 1) => Some(WideBody::Bits),
        (Head, 1) => Some(WideBody::Head),
        (Resize, 1) | (Identity, 1) => Some(WideBody::Resize),
        (Mux, 3) => Some(WideBody::Mux),
        _ => None,
    };
    let body = body?;
    let width = (op.width as u32).clamp(1, 64);
    let p0 = op.params.first().copied().unwrap_or(0);
    let max_slot = op
        .ins
        .iter()
        .copied()
        .chain(std::iter::once(op.out))
        .max()
        .expect("chain is non-empty");
    Some(WideInst {
        body,
        out: op.out,
        a: op.ins.first().copied().unwrap_or(0),
        b: op.ins.get(1).copied().unwrap_or(0),
        c: op.ins.get(2).copied().unwrap_or(0),
        p0: if op.op() == Const {
            canonicalize(p0, width, op.signed)
        } else {
            p0
        },
        p1: op.params.get(1).copied().unwrap_or(0),
        msk: mask(width),
        sh: 64 - width,
        signed: op.signed,
        max_slot,
    })
}

/// Lanes staged per chunk: enough for two 512-bit vectors, small enough
/// that the local arrays stay in registers.
const CHUNK: usize = 8;

/// Runs a unary fused body over the active lanes, staging each 8-lane
/// chunk through local arrays — separate load / compute / store loops
/// LLVM can vectorize without aliasing proofs (lanewise semantics make
/// the staging exact even if the output row aliases an operand row).
///
/// # Safety
///
/// As [`CompiledOp::eval_lanes_ptr`]: `li` spans `>= g.max_slot + 1`
/// rows of `w.stride` lanes, `w.active <= w.stride`, and the output row
/// is the caller's alone.
#[inline(always)]
unsafe fn w_run1(li: *mut u64, g: &WideInst, w: LaneWindow, f: impl Fn(u64) -> u64) {
    // SAFETY: rows `g.a`/`g.out` are `<= g.max_slot`, every offset
    // `row * w.stride + lane` with `lane < w.active <= w.stride` is in
    // bounds per the caller contract.
    unsafe {
        let po = li.add(g.out as usize * w.stride);
        let pa = li.add(g.a as usize * w.stride);
        let n = w.active;
        let mut lane = 0;
        while lane + CHUNK <= n {
            let mut va = [0u64; CHUNK];
            for (k, v) in va.iter_mut().enumerate() {
                *v = *pa.add(lane + k);
            }
            let mut vo = [0u64; CHUNK];
            for (k, o) in vo.iter_mut().enumerate() {
                *o = f(va[k]);
            }
            for (k, o) in vo.iter().enumerate() {
                *po.add(lane + k) = *o;
            }
            lane += CHUNK;
        }
        while lane < n {
            *po.add(lane) = f(*pa.add(lane));
            lane += 1;
        }
    }
}

/// Runs a binary fused body over the active lanes, 8-lane staged.
///
/// # Safety
///
/// As [`w_run1`].
#[inline(always)]
unsafe fn w_run2(li: *mut u64, g: &WideInst, w: LaneWindow, f: impl Fn(u64, u64) -> u64) {
    // SAFETY: as `w_run1`, with `g.b` also `<= g.max_slot`.
    unsafe {
        let po = li.add(g.out as usize * w.stride);
        let pa = li.add(g.a as usize * w.stride);
        let pb = li.add(g.b as usize * w.stride);
        let n = w.active;
        let mut lane = 0;
        while lane + CHUNK <= n {
            let mut va = [0u64; CHUNK];
            let mut vb = [0u64; CHUNK];
            for (k, v) in va.iter_mut().enumerate() {
                *v = *pa.add(lane + k);
            }
            for (k, v) in vb.iter_mut().enumerate() {
                *v = *pb.add(lane + k);
            }
            let mut vo = [0u64; CHUNK];
            for (k, o) in vo.iter_mut().enumerate() {
                *o = f(va[k], vb[k]);
            }
            for (k, o) in vo.iter().enumerate() {
                *po.add(lane + k) = *o;
            }
            lane += CHUNK;
        }
        while lane < n {
            *po.add(lane) = f(*pa.add(lane), *pb.add(lane));
            lane += 1;
        }
    }
}

/// Runs the ternary fused body (mux) over the active lanes, 8-lane
/// staged.
///
/// # Safety
///
/// As [`w_run1`].
#[inline(always)]
unsafe fn w_run3(li: *mut u64, g: &WideInst, w: LaneWindow, f: impl Fn(u64, u64, u64) -> u64) {
    // SAFETY: as `w_run1`, with `g.b`/`g.c` also `<= g.max_slot`.
    unsafe {
        let po = li.add(g.out as usize * w.stride);
        let pa = li.add(g.a as usize * w.stride);
        let pb = li.add(g.b as usize * w.stride);
        let pc = li.add(g.c as usize * w.stride);
        let n = w.active;
        let mut lane = 0;
        while lane + CHUNK <= n {
            let mut va = [0u64; CHUNK];
            let mut vb = [0u64; CHUNK];
            let mut vc = [0u64; CHUNK];
            for (k, v) in va.iter_mut().enumerate() {
                *v = *pa.add(lane + k);
            }
            for (k, v) in vb.iter_mut().enumerate() {
                *v = *pb.add(lane + k);
            }
            for (k, v) in vc.iter_mut().enumerate() {
                *v = *pc.add(lane + k);
            }
            let mut vo = [0u64; CHUNK];
            for (k, o) in vo.iter_mut().enumerate() {
                *o = f(va[k], vb[k], vc[k]);
            }
            for (k, o) in vo.iter().enumerate() {
                *po.add(lane + k) = *o;
            }
            lane += CHUNK;
        }
        while lane < n {
            *po.add(lane) = f(*pa.add(lane), *pb.add(lane), *pc.add(lane));
            lane += 1;
        }
    }
}

impl WideInst {
    /// Evaluates this instruction over the active lanes.
    ///
    /// # Safety
    ///
    /// As [`CompiledOp::eval_lanes_ptr`] (the caller contract
    /// [`SpecProgram::eval_phase_b`] documents).
    #[inline]
    unsafe fn eval(&self, li: *mut u64, w: LaneWindow) {
        debug_assert!(w.active <= w.stride, "lane window outgrew its stride");
        debug_assert!(self.a.max(self.b).max(self.c).max(self.out) <= self.max_slot);
        if self.signed {
            // SAFETY: forwarded caller contract; sign-extending canon.
            unsafe { self.eval_canon(li, w, |raw, m, s| (((raw & m) << s) as i64 >> s) as u64) }
        } else {
            // SAFETY: forwarded caller contract; masking canon.
            unsafe { self.eval_canon(li, w, |raw, m, _| raw & m) }
        }
    }

    /// Dispatches the body with the canonicalization closure folded in.
    /// The match runs once per instruction; each arm instantiates a
    /// chunk-staged loop whose body LLVM vectorizes.
    ///
    /// # Safety
    ///
    /// As [`Self::eval`].
    #[inline(always)]
    unsafe fn eval_canon(
        &self,
        li: *mut u64,
        w: LaneWindow,
        canon: impl Fn(u64, u64, u32) -> u64 + Copy,
    ) {
        let g = self;
        let (m, s) = (g.msk, g.sh);
        let c = move |raw: u64| canon(raw, m, s);
        // Loop-invariant parameter folds, hoisted out of the closures.
        let (p0, p1) = (g.p0, g.p1);
        // SAFETY: every arm forwards the caller contract to a driver.
        unsafe {
            match g.body {
                WideBody::Add => w_run2(li, g, w, move |a, b| c(a.wrapping_add(b))),
                WideBody::Sub => w_run2(li, g, w, move |a, b| c(a.wrapping_sub(b))),
                WideBody::Mul => w_run2(li, g, w, move |a, b| c(a.wrapping_mul(b))),
                WideBody::And => w_run2(li, g, w, move |a, b| c(a & b)),
                WideBody::Or => w_run2(li, g, w, move |a, b| c(a | b)),
                WideBody::Xor => w_run2(li, g, w, move |a, b| c(a ^ b)),
                WideBody::Ltu => w_run2(li, g, w, move |a, b| c((a < b) as u64)),
                WideBody::Lts => w_run2(li, g, w, move |a, b| c(((a as i64) < (b as i64)) as u64)),
                WideBody::Leu => w_run2(li, g, w, move |a, b| c((a <= b) as u64)),
                WideBody::Les => w_run2(li, g, w, move |a, b| c(((a as i64) <= (b as i64)) as u64)),
                WideBody::Gtu => w_run2(li, g, w, move |a, b| c((a > b) as u64)),
                WideBody::Gts => w_run2(li, g, w, move |a, b| c(((a as i64) > (b as i64)) as u64)),
                WideBody::Geu => w_run2(li, g, w, move |a, b| c((a >= b) as u64)),
                WideBody::Ges => w_run2(li, g, w, move |a, b| c(((a as i64) >= (b as i64)) as u64)),
                WideBody::Eq => w_run2(li, g, w, move |a, b| c((a == b) as u64)),
                WideBody::Neq => w_run2(li, g, w, move |a, b| c((a != b) as u64)),
                WideBody::Dshl => w_run2(li, g, w, move |a, b| {
                    c((a << (b & 63)) & ((b < 64) as u64).wrapping_neg())
                }),
                WideBody::Dshr => w_run2(li, g, w, move |a, b| c(((a as i64) >> b.min(63)) as u64)),
                WideBody::Cat => {
                    // p0/p1 = operand widths, truncated to u32 exactly
                    // as the compiled kernel does; wb >= 64 passes b.
                    let (ma, mb, wb) = (mask(p0 as u32), mask(p1 as u32), p1 as u32);
                    if wb >= 64 {
                        w_run2(li, g, w, move |_, b| c(b));
                    } else {
                        w_run2(li, g, w, move |a, b| c(((a & ma) << wb) | (b & mb)));
                    }
                }
                WideBody::ValidIf => {
                    w_run2(
                        li,
                        g,
                        w,
                        move |a, b| c(b & ((a != 0) as u64).wrapping_neg()),
                    )
                }
                WideBody::Not => w_run1(li, g, w, move |a| c(!a)),
                WideBody::Neg => w_run1(li, g, w, move |a| c(a.wrapping_neg())),
                WideBody::Andr => {
                    let m0 = mask(p0 as u32);
                    w_run1(li, g, w, move |a| c(((a & m0) == m0) as u64));
                }
                WideBody::Orr => w_run1(li, g, w, move |a| c((a != 0) as u64)),
                WideBody::Xorr => {
                    let m0 = mask(p0 as u32);
                    w_run1(li, g, w, move |a| c(((a & m0).count_ones() & 1) as u64));
                }
                WideBody::Shl => {
                    let n = p0 as u32; // truncated before the range check
                    let keep = ((n < 64) as u64).wrapping_neg();
                    w_run1(li, g, w, move |a| c((a << (n & 63)) & keep));
                }
                WideBody::Shr => {
                    let n = (p0 as u32).min(63);
                    w_run1(li, g, w, move |a| c(((a as i64) >> n) as u64));
                }
                WideBody::Bits => {
                    // p0/p1 = hi/lo bit indices.
                    let bm = mask((p0 - p1 + 1) as u32);
                    w_run1(li, g, w, move |a| c((a >> p1) & bm));
                }
                WideBody::Head => {
                    // p0/p1 = n / operand width.
                    let hm = mask(p1 as u32);
                    let hs = p1 - p0;
                    w_run1(li, g, w, move |a| c((a & hm) >> hs));
                }
                WideBody::Resize => w_run1(li, g, w, c),
                WideBody::Mux => w_run3(li, g, w, move |sel, t, f| {
                    let keep = ((sel != 0) as u64).wrapping_neg();
                    c((t & keep) | (f & !keep))
                }),
                WideBody::Const => {
                    // p0 already holds the canonical value.
                    let po = li.add(g.out as usize * w.stride);
                    for lane in 0..w.active {
                        *po.add(lane) = p0;
                    }
                }
            }
        }
    }
}

/// Stable-partitions `v` cone-first and returns the cone prefix length.
fn partition_cone<T: Clone>(v: &mut Vec<T>, is_cone: impl Fn(&T) -> bool) -> usize {
    let (cone, rest): (Vec<T>, Vec<T>) = v.iter().cloned().partition(|t| is_cone(t));
    let n = cone.len();
    v.clear();
    v.extend(cone);
    v.extend(rest);
    n
}

/// Gathers bit 0 of a wide `LI` row into a bit-plane row over the
/// active window.
///
/// # Safety
///
/// `li` must cover `slot`'s row at stride `w.stride`; `bits` must cover
/// row `row` at `wpr` words; the caller must own the destination row.
unsafe fn pack_row(li: *const u64, bits: *mut u64, slot: u32, row: u32, w: LaneWindow, wpr: usize) {
    // SAFETY: row starts are in bounds per the caller contract.
    let src = unsafe { li.add(slot as usize * w.stride) };
    // SAFETY: as above.
    let dst = unsafe { bits.add(row as usize * wpr) };
    for wi in 0..w.active.div_ceil(64) {
        let lane0 = wi * 64;
        let cnt = (w.active - lane0).min(64);
        let mut word = 0u64;
        for k in 0..cnt {
            // SAFETY: lane0 + k < w.active <= w.stride.
            word |= (unsafe { *src.add(lane0 + k) } & 1) << k;
        }
        // SAFETY: wi < wpr by construction.
        unsafe { *dst.add(wi) = word };
    }
}

/// Scatters a bit-plane row back into a wide `LI` row over the active
/// window (frozen lanes past the window keep their values, matching
/// wide evaluation).
///
/// # Safety
///
/// As [`pack_row`], with the wide row as the owned destination.
unsafe fn unpack_row(
    li: *mut u64,
    bits: *const u64,
    slot: u32,
    row: u32,
    w: LaneWindow,
    wpr: usize,
) {
    // SAFETY: row starts are in bounds per the caller contract.
    let dst = unsafe { li.add(slot as usize * w.stride) };
    // SAFETY: as above.
    let src = unsafe { bits.add(row as usize * wpr) };
    for wi in 0..w.active.div_ceil(64) {
        let lane0 = wi * 64;
        let cnt = (w.active - lane0).min(64);
        // SAFETY: wi < wpr.
        let word = unsafe { *src.add(wi) };
        for k in 0..cnt {
            // SAFETY: lane0 + k < w.active <= w.stride.
            unsafe { *dst.add(lane0 + k) = (word >> k) & 1 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{init_lanes, BatchPlanSim};
    use crate::plan::{plan, split_commits, PlanSim};
    use rand::{Rng, SeedableRng};
    use rteaal_firrtl::{lower::lower_typed, parser::parse};

    fn plan_of(src: &str) -> SimPlan {
        plan(&crate::build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap())
    }

    /// Keeps only register/input probes, as if the helper `node`s of the
    /// test design were anonymous subexpressions (which is what real
    /// lowered designs mostly consist of). Named wires are probe roots —
    /// pokeable, waveform-visible — and the transform must preserve
    /// them; this strips the names so the passes have interior to work
    /// on.
    fn with_anonymous_wires(mut p: SimPlan) -> SimPlan {
        let keep = ["acc", "flag", "x", "en", "sel"];
        p.probes.retain(|(n, _, _)| keep.contains(&n.as_str()));
        p
    }

    /// Re-materializes a duplicate subexpression and a dead op, the way
    /// a frontend without hash-consing would emit them. `build`'s CSE
    /// and DCE hide both from FIRRTL-derived plans, but hand-built and
    /// externally imported plans contain them and the transform must
    /// cope.
    fn with_redundancy(mut p: SimPlan) -> SimPlan {
        let dup_slot = p.num_slots as u32;
        let dead_slot = dup_slot + 1;
        p.num_slots += 2;
        p.init_values.resize(p.num_slots, 0);
        p.stats.slots = p.num_slots;
        // Duplicate the first layer-0 op that a later layer consumes,
        // and point one consumer at the clone.
        let mut dup = p.layers[0]
            .iter()
            .find(|op| op.op() == DfgOp::Add)
            .expect("CONTROL has a layer-0 add")
            .clone();
        let orig_out = dup.out;
        dup.out = dup_slot;
        p.layers[0].push(dup);
        'rewire: for layer in p.layers.iter_mut().skip(1) {
            for op in layer.iter_mut() {
                if let Some(i) = op.ins.iter().position(|&s| s == orig_out) {
                    op.ins[i] = dup_slot;
                    break 'rewire;
                }
            }
        }
        // A dead op with a unique value-number key: computed, never read.
        let mut dead = p.layers[0]
            .iter()
            .find(|op| op.op() == DfgOp::Bits)
            .expect("CONTROL has a layer-0 bits")
            .clone();
        dead.out = dead_slot;
        dead.params = vec![2, 2];
        p.layers[0].push(dead);
        p.stats.effectual_ops += 2;
        p
    }

    /// Dead wires, a never-toggling cone, duplicate subexpressions, and
    /// a packable 1-bit control interior.
    const CONTROL: &str = "\
circuit Control :
  module Control :
    input clock : Clock
    input x : UInt<8>
    input en : UInt<1>
    input sel : UInt<1>
    output out : UInt<8>
    output hit : UInt<1>
    reg acc : UInt<8>, clock
    reg flag : UInt<1>, clock
    node k = and(UInt<8>(12), UInt<8>(10))
    node dead = xor(x, UInt<8>(55))
    node d1 = tail(add(acc, x), 1)
    node d2 = tail(add(acc, x), 1)
    node b0 = bits(x, 0, 0)
    node b1 = bits(x, 1, 1)
    node g = and(b0, en)
    node h = or(b1, sel)
    node p = mux(sel, g, h)
    node q = eq(b0, en)
    node r = and(p, q)
    acc <= mux(en, tail(add(d1, k), 1), d2)
    flag <= and(r, not(p))
    out <= acc
    hit <= flag
";

    /// A control interior dense enough to survive profitability
    /// pruning: fourteen chained 1-bit ops over three shared wide
    /// sources (two boundary packs of inputs, one of a `bits` extract,
    /// two unpacks into the `flag` commit), next to an ordinary wide
    /// accumulator.
    const DENSE: &str = "\
circuit Dense :
  module Dense :
    input clock : Clock
    input x : UInt<8>
    input en : UInt<1>
    input sel : UInt<1>
    output out : UInt<8>
    output hit : UInt<1>
    reg acc : UInt<8>, clock
    reg flag : UInt<1>, clock
    node b0 = bits(x, 0, 0)
    node t0 = and(en, sel)
    node t1 = or(t0, b0)
    node t2 = xor(t1, en)
    node t3 = and(t2, sel)
    node t4 = or(t3, t0)
    node t5 = xor(t4, t1)
    node t6 = and(t5, en)
    node t7 = or(t6, t2)
    node t8 = mux(t2, t7, t3)
    node t9 = and(t8, t4)
    node t10 = or(t9, t5)
    node t11 = xor(t10, t6)
    node t12 = mux(t5, t11, t7)
    node t13 = and(t12, t8)
    acc <= tail(add(acc, x), 1)
    flag <= and(t13, t9)
    out <= acc
    hit <= flag
";

    #[test]
    fn transform_folds_dedups_and_eliminates() {
        let p = with_redundancy(with_anonymous_wires(plan_of(CONTROL)));
        let sp = specialize(&p);
        assert!(sp.stats.folded >= 1, "const cone folds: {:?}", sp.stats);
        assert!(
            sp.stats.deduped >= 1,
            "duplicate add dedups: {:?}",
            sp.stats
        );
        assert!(
            sp.stats.dead_removed >= 1,
            "dead xor removed: {:?}",
            sp.stats
        );
        assert!(sp.stats.ops_after < sp.stats.ops_before);
        assert_eq!(sp.plan.num_slots, p.num_slots, "slot numbering preserved");
        // The transformed plan still satisfies the static verifier.
        let report = crate::analyze::analyze_plan(&sp.plan);
        assert!(
            report.is_clean(),
            "specialized plan is analyzer-clean: {report}"
        );
    }

    #[test]
    fn specialized_plan_matches_golden_on_observables() {
        let p = with_redundancy(with_anonymous_wires(plan_of(CONTROL)));
        let sp = specialize(&p);
        let mut golden = PlanSim::new(&p);
        let mut spec = PlanSim::new(&sp.plan);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for cycle in 0..400 {
            for idx in 0..p.input_slots.len() {
                let v: u64 = rng.gen();
                golden.set_input(idx, v);
                spec.set_input(idx, v);
            }
            golden.step();
            spec.step();
            for idx in 0..p.output_slots.len() {
                assert_eq!(
                    golden.output(idx),
                    spec.output(idx),
                    "output {idx} @ {cycle}"
                );
            }
            for (name, slot, _) in &p.probes {
                assert_eq!(
                    golden.slot(*slot),
                    spec.slot(*slot),
                    "probe {name} @ {cycle}"
                );
            }
        }
    }

    #[test]
    fn program_packs_the_control_interior() {
        let p = with_anonymous_wires(plan_of(DENSE));
        let sp = specialize(&p);
        let prog = SpecProgram::build(&sp.plan, true);
        assert!(prog.packed_ops() > 0, "1-bit interior packs");
        assert!(prog.bit_rows() > 0);
        let (packs, unpacks) = prog.boundary_moves();
        assert!(
            2 * (packs + unpacks) < prog.packed_ops(),
            "surviving clusters pay for their boundary: {packs}+{unpacks} vs {}",
            prog.packed_ops()
        );
        let unpacked = SpecProgram::build(&sp.plan, false);
        assert_eq!(unpacked.packed_ops(), 0);
        assert_eq!(unpacked.bits_len(64), 0);
        // Phase totals cover every op exactly once.
        let total: usize = (0..prog.num_layers()).map(|i| prog.phase_b_len(i)).sum();
        assert_eq!(total, sp.plan.total_ops());
    }

    #[test]
    fn shallow_control_fragments_are_pruned_back_to_the_wide_walk() {
        // CONTROL's interior is six 1-bit ops behind six boundary
        // moves — packing it would add gather/scatter traffic the
        // fused wide walk outruns, so the profitability pass drops the
        // whole cluster and the program stays all-wide.
        let p = with_anonymous_wires(plan_of(CONTROL));
        let sp = specialize(&p);
        let prog = SpecProgram::build(&sp.plan, true);
        assert_eq!(prog.packed_ops(), 0, "shallow cluster is pruned");
        assert_eq!(prog.boundary_moves(), (0, 0));
        let total: usize = (0..prog.num_layers()).map(|i| prog.phase_b_len(i)).sum();
        assert_eq!(total, sp.plan.total_ops());
    }

    /// Drives the packed program directly (layer walk + manual commit)
    /// against the interpreted golden model, full and partial windows.
    #[test]
    fn packed_walk_is_bit_exact_on_observables() {
        let p = with_anonymous_wires(plan_of(DENSE));
        let sp = specialize(&p);
        let prog = SpecProgram::build(&sp.plan, true);
        for lanes in [1usize, 3, 64, 65, 130] {
            let mut golden = BatchPlanSim::interpreted(&p, lanes);
            let mut li = init_lanes(&sp.plan, lanes);
            let mut bits = vec![0u64; prog.bits_len(lanes)];
            let mut buf = Vec::new();
            let (direct, staged) = split_commits(&sp.plan.commits);
            let mut commit_buf = vec![0u64; staged.len() * lanes];
            let mut rng = rand::rngs::StdRng::seed_from_u64(lanes as u64);
            for cycle in 0..60u64 {
                // After cycle 30, shrink the spec walk's window; the
                // golden model keeps evaluating every lane (lanes are
                // independent) and comparison is over the active prefix.
                let active = if cycle < 30 { lanes } else { lanes - lanes / 3 };
                let w = LaneWindow {
                    stride: lanes,
                    active,
                };
                for idx in 0..p.input_slots.len() {
                    for lane in 0..lanes {
                        let v: u64 = rng.gen();
                        golden.set_input(idx, lane, v);
                        let (iw, is) = sp.plan.input_types[idx];
                        li[sp.plan.input_slots[idx] as usize * lanes + lane] =
                            crate::op::canonicalize(v, iw as u32, is);
                    }
                }
                golden.step();
                for i in 0..prog.num_layers() {
                    prog.eval_layer(i, &mut li, w, &mut bits, false, &mut buf);
                }
                for (k, &(_, src)) in staged.iter().enumerate() {
                    let s0 = src as usize * lanes;
                    commit_buf[k * lanes..k * lanes + active].copy_from_slice(&li[s0..s0 + active]);
                }
                for &(dst, src) in &direct {
                    let (d0, s0) = (dst as usize * lanes, src as usize * lanes);
                    li.copy_within(s0..s0 + active, d0);
                }
                for (k, &(dst, _)) in staged.iter().enumerate() {
                    let d0 = dst as usize * lanes;
                    li[d0..d0 + active].copy_from_slice(&commit_buf[k * lanes..k * lanes + active]);
                }
                for lane in 0..active {
                    for (name, slot, _) in &p.probes {
                        assert_eq!(
                            li[*slot as usize * lanes + lane],
                            golden.slot(*slot, lane),
                            "lanes={lanes} probe {name} lane {lane} @ {cycle}"
                        );
                    }
                    for (idx, (name, slot)) in p.output_slots.iter().enumerate() {
                        let _ = name;
                        assert_eq!(
                            li[*slot as usize * lanes + lane],
                            golden.output(idx, lane),
                            "lanes={lanes} output slot {slot} lane {lane} @ {cycle}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cone_skip_is_exact_while_inputs_hold() {
        let p = with_anonymous_wires(plan_of(DENSE));
        let sp = specialize(&p);
        let prog = SpecProgram::build(&sp.plan, true);
        assert!(prog.cone_ops() > 0, "the design has an input cone");
        const LANES: usize = 8;
        let w = LaneWindow {
            stride: LANES,
            active: LANES,
        };
        let mut golden = BatchPlanSim::interpreted(&p, LANES);
        let mut li = init_lanes(&sp.plan, LANES);
        let mut bits = vec![0u64; prog.bits_len(LANES)];
        let mut buf = Vec::new();
        let (direct, staged) = split_commits(&sp.plan.commits);
        let mut commit_buf = vec![0u64; staged.len() * LANES];
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut dirty = true;
        for cycle in 0..120u64 {
            // Re-drive inputs only every 10th cycle.
            if cycle % 10 == 0 {
                for idx in 0..p.input_slots.len() {
                    for lane in 0..LANES {
                        let v: u64 = rng.gen();
                        golden.set_input(idx, lane, v);
                        let (iw, is) = sp.plan.input_types[idx];
                        li[sp.plan.input_slots[idx] as usize * LANES + lane] =
                            crate::op::canonicalize(v, iw as u32, is);
                    }
                }
                dirty = true;
            }
            golden.step();
            let skip = !dirty;
            for i in 0..prog.num_layers() {
                prog.eval_layer(i, &mut li, w, &mut bits, skip, &mut buf);
            }
            dirty = false;
            for (k, &(_, src)) in staged.iter().enumerate() {
                let s0 = src as usize * LANES;
                commit_buf[k * LANES..(k + 1) * LANES].copy_from_slice(&li[s0..s0 + LANES]);
            }
            for &(dst, src) in &direct {
                let (d0, s0) = (dst as usize * LANES, src as usize * LANES);
                li.copy_within(s0..s0 + LANES, d0);
            }
            for (k, &(dst, _)) in staged.iter().enumerate() {
                let d0 = dst as usize * LANES;
                li[d0..d0 + LANES].copy_from_slice(&commit_buf[k * LANES..(k + 1) * LANES]);
            }
            for lane in 0..LANES {
                for (name, slot, _) in &p.probes {
                    assert_eq!(
                        li[*slot as usize * LANES + lane],
                        golden.slot(*slot, lane),
                        "probe {name} lane {lane} @ {cycle}"
                    );
                }
            }
        }
    }

    #[test]
    fn probed_one_bit_slots_stay_unpacked() {
        // `flag` is a probed register: its consumers may read a poked,
        // non-canonical word, so nothing downstream of it may assume
        // canonical form — and the packed program must keep every
        // observed slot wide.
        let p = with_anonymous_wires(plan_of(DENSE));
        let sp = specialize(&p);
        let prog = SpecProgram::build(&sp.plan, true);
        assert!(prog.packed_ops() > 0, "the packed region is live");
        let observed = observed_slots(&sp.plan);
        for layer in &sp.plan.layers {
            for op in layer {
                if observed.contains(&op.out) {
                    // Observed outs must appear among the wide ops of
                    // the program's layers.
                    let found = prog.layers.iter().any(|l| {
                        l.fast.iter().any(|g| g.out == op.out)
                            || l.slow.iter().any(|c| c.out_slot() == op.out)
                    });
                    assert!(found, "observed slot {} stays wide", op.out);
                }
            }
        }
    }
}
