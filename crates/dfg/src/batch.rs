//! Batched plan interpretation: one [`SimPlan`], `B` stimulus lanes.
//!
//! Layer-at-a-time evaluation is data-parallel in two independent
//! directions: *within* a layer every operation is independent (the
//! levelization barrier guarantees operands come from strictly earlier
//! layers), and *across lanes* the same operation applied to independent
//! stimulus vectors shares all of its coordinate metadata. Batching
//! exploits the second direction: the `LI` slot array is widened from one
//! `u64` per slot to `B` lanes per slot in **slot-major** layout (slot
//! `s` occupies `li[s * B .. (s + 1) * B]`), so one traversal of the
//! `OIM` amortizes coordinate reads, dispatch, and loop overhead over `B`
//! simulations while every data stream stays stride-1.
//!
//! [`BatchPlanSim`] is the sequential reference for this execution model:
//! bit-exact against `B` independent [`PlanSim`](crate::plan::PlanSim)
//! runs by construction, and the golden model the thread-parallel engine
//! in `rteaal-kernels` is differentially tested against.

use crate::op::canonicalize;
use crate::plan::SimPlan;

/// Replicates a plan's initial `LI` contents across `lanes` lanes in
/// slot-major layout.
pub fn init_lanes(plan: &SimPlan, lanes: usize) -> Vec<u64> {
    let mut li = Vec::with_capacity(plan.num_slots * lanes);
    for &v in &plan.init_values {
        li.extend(std::iter::repeat_n(v, lanes));
    }
    li
}

/// The batched plan interpreter (Algorithm 3 with a lane inner loop).
#[derive(Debug, Clone)]
pub struct BatchPlanSim<'p> {
    plan: &'p SimPlan,
    lanes: usize,
    li: Vec<u64>,
    buf: Vec<u64>,
    commit_buf: Vec<u64>,
    cycle: u64,
}

impl<'p> BatchPlanSim<'p> {
    /// Creates a `lanes`-wide simulator with every lane at the plan's
    /// initial state.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(plan: &'p SimPlan, lanes: usize) -> Self {
        assert!(lanes > 0, "batch needs at least one lane");
        BatchPlanSim {
            plan,
            lanes,
            li: init_lanes(plan, lanes),
            buf: Vec::with_capacity(8),
            commit_buf: vec![0; plan.commits.len() * lanes],
            cycle: 0,
        }
    }

    /// Number of stimulus lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Drives input port `idx` on one lane (canonicalized to the port
    /// type).
    pub fn set_input(&mut self, idx: usize, lane: usize, value: u64) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let (w, signed) = self.plan.input_types[idx];
        self.li[self.plan.input_slots[idx] as usize * self.lanes + lane] =
            canonicalize(value, w as u32, signed);
    }

    /// Drives input port `idx` identically on every lane.
    pub fn set_input_all(&mut self, idx: usize, value: u64) {
        for lane in 0..self.lanes {
            self.set_input(idx, lane, value);
        }
    }

    /// One clock cycle on every lane: evaluate each layer lane-wise, then
    /// commit registers lane-wise.
    pub fn step(&mut self) {
        for layer in &self.plan.layers {
            for op in layer {
                op.eval_lanes(&mut self.li, self.lanes, &mut self.buf);
            }
        }
        let lanes = self.lanes;
        for (k, &(_, src)) in self.plan.commits.iter().enumerate() {
            let s0 = src as usize * lanes;
            self.commit_buf[k * lanes..(k + 1) * lanes].copy_from_slice(&self.li[s0..s0 + lanes]);
        }
        for (k, &(dst, _)) in self.plan.commits.iter().enumerate() {
            let d0 = dst as usize * lanes;
            self.li[d0..d0 + lanes].copy_from_slice(&self.commit_buf[k * lanes..(k + 1) * lanes]);
        }
        self.cycle += 1;
    }

    /// Output value of one lane, by port index.
    pub fn output(&self, idx: usize, lane: usize) -> u64 {
        assert!(lane < self.lanes, "lane {lane} out of range");
        self.li[self.plan.output_slots[idx].1 as usize * self.lanes + lane]
    }

    /// Reads any `LI` slot on one lane (probe / XMR path).
    pub fn slot(&self, s: u32, lane: usize) -> u64 {
        assert!(lane < self.lanes, "lane {lane} out of range");
        self.li[s as usize * self.lanes + lane]
    }

    /// The full lane row of a slot.
    pub fn slot_lanes(&self, s: u32) -> &[u64] {
        let s0 = s as usize * self.lanes;
        &self.li[s0..s0 + self.lanes]
    }

    /// Cycles simulated.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build;
    use crate::plan::{plan, PlanSim};
    use rand::{Rng, SeedableRng};
    use rteaal_firrtl::{lower::lower_typed, parser::parse};

    const MIXED: &str = "\
circuit Mixed :
  module Mixed :
    input clock : Clock
    input x : UInt<8>
    input sel : UInt<1>
    output out : UInt<8>
    output flag : UInt<1>
    reg acc : UInt<8>, clock
    reg cnt : UInt<4>, clock
    node nx = tail(add(acc, x), 1)
    node alt = xor(acc, x)
    acc <= mux(sel, nx, alt)
    cnt <= tail(add(cnt, UInt<4>(1)), 1)
    out <= acc
    flag <= andr(cnt)
";

    fn plan_of(src: &str) -> SimPlan {
        plan(&build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap())
    }

    #[test]
    fn lanes_match_independent_plan_sims() {
        let p = plan_of(MIXED);
        const LANES: usize = 7;
        let mut batch = BatchPlanSim::new(&p, LANES);
        let mut singles: Vec<PlanSim> = (0..LANES).map(|_| PlanSim::new(&p)).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for cycle in 0..200 {
            for (lane, single) in singles.iter_mut().enumerate() {
                let x: u64 = rng.gen();
                let sel: u64 = rng.gen();
                single.set_input(0, x);
                single.set_input(1, sel);
                batch.set_input(0, lane, x);
                batch.set_input(1, lane, sel);
            }
            batch.step();
            for (lane, single) in singles.iter_mut().enumerate() {
                single.step();
                for idx in 0..p.output_slots.len() {
                    assert_eq!(
                        batch.output(idx, lane),
                        single.output(idx),
                        "lane {lane} output {idx} @ cycle {cycle}"
                    );
                }
                // Internal state agrees slot-by-slot, not just at outputs.
                for s in 0..p.num_slots as u32 {
                    assert_eq!(batch.slot(s, lane), single.slot(s), "slot {s} lane {lane}");
                }
            }
        }
    }

    #[test]
    fn set_input_all_broadcasts() {
        let p = plan_of(MIXED);
        let mut batch = BatchPlanSim::new(&p, 4);
        batch.set_input_all(0, 3);
        batch.set_input_all(1, 1);
        for _ in 0..5 {
            batch.step();
        }
        let first = batch.output(0, 0);
        for lane in 1..4 {
            assert_eq!(batch.output(0, lane), first);
        }
        assert_eq!(batch.cycle(), 5);
        assert_eq!(batch.slot_lanes(p.output_slots[0].1), &[first; 4]);
    }

    #[test]
    fn inputs_canonicalized_per_lane() {
        let p = plan_of(MIXED);
        let mut batch = BatchPlanSim::new(&p, 2);
        batch.set_input(0, 1, 0xfff); // x is 8 bits wide
        let x_slot = p.input_slots[0];
        assert_eq!(batch.slot(x_slot, 0), 0);
        assert_eq!(batch.slot(x_slot, 1), 0xff);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let p = plan_of(MIXED);
        let _ = BatchPlanSim::new(&p, 0);
    }
}
