//! Batched plan simulation: one [`SimPlan`], `B` stimulus lanes.
//!
//! Layer-at-a-time evaluation is data-parallel in two independent
//! directions: *within* a layer every operation is independent (the
//! levelization barrier guarantees operands come from strictly earlier
//! layers), and *across lanes* the same operation applied to independent
//! stimulus vectors shares all of its coordinate metadata. Batching
//! exploits the second direction: the `LI` slot array is widened from one
//! `u64` per slot to `B` lanes per slot in **slot-major** layout (slot
//! `s` occupies `li[s * B .. (s + 1) * B]`), so one traversal of the
//! `OIM` amortizes coordinate reads, dispatch, and loop overhead over `B`
//! simulations while every data stream stays stride-1.
//!
//! [`BatchPlanSim`] is the sequential reference for this execution model
//! and supports two executors (see [`BatchEngine`]): the default
//! **compiled** walk over [`CompiledLayer`] slices produced by the
//! [`crate::lane_kernel`] compile stage, and the **interpreted**
//! per-lane `eval_raw` walk — bit-exact against `B` independent
//! [`PlanSim`](crate::plan::PlanSim) runs by construction, and the golden
//! model both the compiled kernels and the thread-parallel engine in
//! `rteaal-kernels` are differentially tested against.

use crate::lane_kernel::{compile_plan, BatchEngine, CompiledLayer, LaneWindow};
use crate::op::canonicalize;
use crate::plan::{split_commits, SimPlan};

/// Replicates a plan's initial `LI` contents across `lanes` lanes in
/// slot-major layout.
pub fn init_lanes(plan: &SimPlan, lanes: usize) -> Vec<u64> {
    let mut li = Vec::with_capacity(plan.num_slots * lanes);
    for &v in &plan.init_values {
        li.extend(std::iter::repeat_n(v, lanes));
    }
    li
}

/// The batched plan simulator (Algorithm 3 with a lane inner loop).
#[derive(Debug, Clone)]
pub struct BatchPlanSim<'p> {
    plan: &'p SimPlan,
    engine: BatchEngine,
    /// Kernel-compiled layers (compiled engine only).
    compiled: Vec<CompiledLayer>,
    lanes: usize,
    li: Vec<u64>,
    buf: Vec<u64>,
    /// Alias-free commits, copied row-to-row without staging.
    commit_direct: Vec<(u32, u32)>,
    /// Overlapping commits, staged through `commit_buf`.
    commit_staged: Vec<(u32, u32)>,
    commit_buf: Vec<u64>,
    cycle: u64,
}

impl<'p> BatchPlanSim<'p> {
    /// Creates a `lanes`-wide simulator with every lane at the plan's
    /// initial state, executing through compiled lane kernels.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(plan: &'p SimPlan, lanes: usize) -> Self {
        Self::with_engine(plan, lanes, BatchEngine::Compiled)
    }

    /// Creates a simulator that walks the layers with the interpreted
    /// per-lane dispatch — the golden model for differential tests.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn interpreted(plan: &'p SimPlan, lanes: usize) -> Self {
        Self::with_engine(plan, lanes, BatchEngine::Interpreted)
    }

    /// Creates a simulator over a specialized plan
    /// ([`crate::specialize::specialize`]): the folded/deduped/DCE'd
    /// layer schedule executed through compiled lane kernels. Observable
    /// slots (outputs, probes, registers) are bit-identical to the
    /// original plan's.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn specialized(spec: &'p crate::specialize::SpecializedPlan, lanes: usize) -> Self {
        Self::with_engine(&spec.plan, lanes, BatchEngine::Compiled)
    }

    /// Creates a simulator with an explicit executor choice.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn with_engine(plan: &'p SimPlan, lanes: usize, engine: BatchEngine) -> Self {
        assert!(lanes > 0, "batch needs at least one lane");
        let compiled = match engine {
            BatchEngine::Compiled => compile_plan(plan),
            BatchEngine::Interpreted => Vec::new(),
        };
        let (commit_direct, commit_staged) = split_commits(&plan.commits);
        BatchPlanSim {
            plan,
            engine,
            compiled,
            lanes,
            li: init_lanes(plan, lanes),
            buf: Vec::with_capacity(8),
            commit_buf: vec![0; commit_staged.len() * lanes],
            commit_direct,
            commit_staged,
            cycle: 0,
        }
    }

    /// The executor this simulator walks its layers with.
    pub fn engine(&self) -> BatchEngine {
        self.engine
    }

    /// Number of stimulus lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Drives input port `idx` on one lane (canonicalized to the port
    /// type).
    pub fn set_input(&mut self, idx: usize, lane: usize, value: u64) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let (w, signed) = self.plan.input_types[idx];
        self.li[self.plan.input_slots[idx] as usize * self.lanes + lane] =
            canonicalize(value, w as u32, signed);
    }

    /// Drives input port `idx` identically on every lane: canonicalizes
    /// once and fills the lane row.
    pub fn set_input_all(&mut self, idx: usize, value: u64) {
        let (w, signed) = self.plan.input_types[idx];
        let v = canonicalize(value, w as u32, signed);
        let s0 = self.plan.input_slots[idx] as usize * self.lanes;
        self.li[s0..s0 + self.lanes].fill(v);
    }

    /// Resets one lane's column to the plan's power-on state — register
    /// init values, constants, and zeroed inputs/nodes — leaving every
    /// other lane untouched. This is the per-lane analog of re-creating
    /// the simulator: the enabling primitive for recycling a finished
    /// lane under a new testbench mid-run (continuous batching).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn reset_lane(&mut self, lane: usize) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        for (s, &v) in self.plan.init_values.iter().enumerate() {
            self.li[s * self.lanes + lane] = v;
        }
    }

    /// One clock cycle on every lane: evaluate each layer lane-wise, then
    /// commit registers lane-wise.
    pub fn step(&mut self) {
        let w = LaneWindow::full(self.lanes);
        match self.engine {
            BatchEngine::Compiled => {
                for layer in &self.compiled {
                    for op in layer {
                        op.eval_lanes(&mut self.li, w, &mut self.buf);
                    }
                }
            }
            BatchEngine::Interpreted => {
                for layer in &self.plan.layers {
                    for op in layer {
                        op.eval_lanes(&mut self.li, w, &mut self.buf);
                    }
                }
            }
        }
        let lanes = self.lanes;
        // Stage the overlapping pairs' sources first, ...
        for (k, &(_, src)) in self.commit_staged.iter().enumerate() {
            let s0 = src as usize * lanes;
            self.commit_buf[k * lanes..(k + 1) * lanes].copy_from_slice(&self.li[s0..s0 + lanes]);
        }
        // ... then copy the alias-free rows directly (their destinations
        // are outside the source set, so no read is clobbered), ...
        for &(dst, src) in &self.commit_direct {
            let (d0, s0) = (dst as usize * lanes, src as usize * lanes);
            self.li.copy_within(s0..s0 + lanes, d0);
        }
        // ... then land the staged values.
        for (k, &(dst, _)) in self.commit_staged.iter().enumerate() {
            let d0 = dst as usize * lanes;
            self.li[d0..d0 + lanes].copy_from_slice(&self.commit_buf[k * lanes..(k + 1) * lanes]);
        }
        self.cycle += 1;
    }

    /// Output value of one lane, by port index.
    pub fn output(&self, idx: usize, lane: usize) -> u64 {
        assert!(lane < self.lanes, "lane {lane} out of range");
        self.li[self.plan.output_slots[idx].1 as usize * self.lanes + lane]
    }

    /// Reads any `LI` slot on one lane (probe / XMR path).
    pub fn slot(&self, s: u32, lane: usize) -> u64 {
        assert!(lane < self.lanes, "lane {lane} out of range");
        self.li[s as usize * self.lanes + lane]
    }

    /// The full lane row of a slot.
    pub fn slot_lanes(&self, s: u32) -> &[u64] {
        let s0 = s as usize * self.lanes;
        &self.li[s0..s0 + self.lanes]
    }

    /// Cycles simulated.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build;
    use crate::plan::{plan, PlanSim};
    use rand::{Rng, SeedableRng};
    use rteaal_firrtl::{lower::lower_typed, parser::parse};

    const MIXED: &str = "\
circuit Mixed :
  module Mixed :
    input clock : Clock
    input x : UInt<8>
    input sel : UInt<1>
    output out : UInt<8>
    output flag : UInt<1>
    reg acc : UInt<8>, clock
    reg cnt : UInt<4>, clock
    node nx = tail(add(acc, x), 1)
    node alt = xor(acc, x)
    acc <= mux(sel, nx, alt)
    cnt <= tail(add(cnt, UInt<4>(1)), 1)
    out <= acc
    flag <= andr(cnt)
";

    fn plan_of(src: &str) -> SimPlan {
        plan(&build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap())
    }

    #[test]
    fn lanes_match_independent_plan_sims() {
        let p = plan_of(MIXED);
        const LANES: usize = 7;
        for engine in [BatchEngine::Compiled, BatchEngine::Interpreted] {
            let mut batch = BatchPlanSim::with_engine(&p, LANES, engine);
            assert_eq!(batch.engine(), engine);
            let mut singles: Vec<PlanSim> = (0..LANES).map(|_| PlanSim::new(&p)).collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(21);
            for cycle in 0..200 {
                for (lane, single) in singles.iter_mut().enumerate() {
                    let x: u64 = rng.gen();
                    let sel: u64 = rng.gen();
                    single.set_input(0, x);
                    single.set_input(1, sel);
                    batch.set_input(0, lane, x);
                    batch.set_input(1, lane, sel);
                }
                batch.step();
                for (lane, single) in singles.iter_mut().enumerate() {
                    single.step();
                    for idx in 0..p.output_slots.len() {
                        assert_eq!(
                            batch.output(idx, lane),
                            single.output(idx),
                            "{engine:?} lane {lane} output {idx} @ cycle {cycle}"
                        );
                    }
                    // Internal state agrees slot-by-slot, not just at
                    // outputs.
                    for s in 0..p.num_slots as u32 {
                        assert_eq!(
                            batch.slot(s, lane),
                            single.slot(s),
                            "{engine:?} slot {s} lane {lane}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn compiled_engine_matches_interpreted_engine() {
        let p = plan_of(MIXED);
        const LANES: usize = 5;
        let mut compiled = BatchPlanSim::new(&p, LANES);
        let mut interpreted = BatchPlanSim::interpreted(&p, LANES);
        assert_eq!(compiled.engine(), BatchEngine::Compiled);
        let mut rng = rand::rngs::StdRng::seed_from_u64(87);
        for cycle in 0..300 {
            for lane in 0..LANES {
                let x: u64 = rng.gen();
                let sel: u64 = rng.gen();
                compiled.set_input(0, lane, x);
                compiled.set_input(1, lane, sel);
                interpreted.set_input(0, lane, x);
                interpreted.set_input(1, lane, sel);
            }
            compiled.step();
            interpreted.step();
            for s in 0..p.num_slots as u32 {
                assert_eq!(
                    compiled.slot_lanes(s),
                    interpreted.slot_lanes(s),
                    "slot {s} @ cycle {cycle}"
                );
            }
        }
    }

    #[test]
    fn set_input_all_broadcasts() {
        let p = plan_of(MIXED);
        let mut batch = BatchPlanSim::new(&p, 4);
        batch.set_input_all(0, 3);
        batch.set_input_all(1, 1);
        for _ in 0..5 {
            batch.step();
        }
        let first = batch.output(0, 0);
        for lane in 1..4 {
            assert_eq!(batch.output(0, lane), first);
        }
        assert_eq!(batch.cycle(), 5);
        assert_eq!(batch.slot_lanes(p.output_slots[0].1), &[first; 4]);
    }

    #[test]
    fn set_input_all_canonicalizes_the_fill_value() {
        let p = plan_of(MIXED);
        let mut batch = BatchPlanSim::new(&p, 3);
        batch.set_input_all(0, 0xfff); // x is 8 bits wide
        assert_eq!(batch.slot_lanes(p.input_slots[0]), &[0xff; 3]);
    }

    #[test]
    fn inputs_canonicalized_per_lane() {
        let p = plan_of(MIXED);
        let mut batch = BatchPlanSim::new(&p, 2);
        batch.set_input(0, 1, 0xfff); // x is 8 bits wide
        let x_slot = p.input_slots[0];
        assert_eq!(batch.slot(x_slot, 0), 0);
        assert_eq!(batch.slot(x_slot, 1), 0xff);
    }

    #[test]
    fn commit_split_is_exhaustive_and_disjoint() {
        let p = plan_of(MIXED);
        let batch = BatchPlanSim::new(&p, 2);
        let mut all: Vec<(u32, u32)> = batch
            .commit_direct
            .iter()
            .chain(&batch.commit_staged)
            .copied()
            .collect();
        all.sort_unstable();
        let mut want = p.commits.clone();
        want.sort_unstable();
        assert_eq!(all, want);
        // MIXED's register next-values are fresh op outputs, never
        // another commit's source, so every pair is alias-free.
        assert!(batch.commit_staged.is_empty());
        assert_eq!(batch.commit_buf.len(), 0);
    }

    #[test]
    fn overlapping_commits_are_staged() {
        // b <= a and a <= b swap through each other: both pairs overlap,
        // so both must go through the staging buffer.
        let p = plan_of(
            "\
circuit Swap :
  module Swap :
    input clock : Clock
    output out : UInt<4>
    reg a : UInt<4>, clock
    reg b : UInt<4>, clock
    a <= b
    b <= a
    out <= a
",
        );
        let mut batch = BatchPlanSim::new(&p, 2);
        assert_eq!(batch.commit_staged.len(), 2);
        assert!(batch.commit_direct.is_empty());
        // And the swap semantics hold: power-on values circulate.
        let (a0, b0) = (batch.slot(p.commits[0].0, 0), batch.slot(p.commits[1].0, 0));
        batch.step();
        assert_eq!(batch.slot(p.commits[0].0, 0), b0);
        assert_eq!(batch.slot(p.commits[1].0, 0), a0);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let p = plan_of(MIXED);
        let _ = BatchPlanSim::new(&p, 0);
    }

    #[test]
    fn reset_lane_restores_power_on_and_spares_neighbors() {
        let p = plan_of(MIXED);
        const LANES: usize = 4;
        let mut batch = BatchPlanSim::new(&p, LANES);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..20 {
            for lane in 0..LANES {
                batch.set_input(0, lane, rng.gen());
                batch.set_input(1, lane, rng.gen());
            }
            batch.step();
        }
        let before: Vec<Vec<u64>> = (0..p.num_slots as u32)
            .map(|s| batch.slot_lanes(s).to_vec())
            .collect();
        batch.reset_lane(2);
        for s in 0..p.num_slots as u32 {
            for (lane, &prev) in before[s as usize].iter().enumerate() {
                let want = if lane == 2 {
                    p.init_values[s as usize]
                } else {
                    prev
                };
                assert_eq!(batch.slot(s, lane), want, "slot {s} lane {lane}");
            }
        }
        // The reset lane now evolves exactly like a fresh simulator.
        let mut fresh = BatchPlanSim::new(&p, 1);
        for cycle in 0..30 {
            let (x, sel) = (cycle * 3 + 1, cycle & 1);
            batch.set_input(0, 2, x);
            batch.set_input(1, 2, sel);
            fresh.set_input(0, 0, x);
            fresh.set_input(1, 0, sel);
            batch.step();
            fresh.step();
            for s in 0..p.num_slots as u32 {
                assert_eq!(batch.slot(s, 2), fresh.slot(s, 0), "slot {s} @ {cycle}");
            }
        }
    }
}
