//! Dataflow-graph optimization passes.
//!
//! These are the "Dataflow Graph Optimization" stage of the RTeAAL Sim
//! compiler (paper Figure 14 / §6.1 / Appendix B):
//!
//! - **Constant propagation & folding** — classical, applied "as a means to
//!   optimize the OIM" (§6.1).
//! - **Copy propagation** — a *data-level* optimization in the extended
//!   TeAAL hierarchy (Box 1, Appendix B.1): removes redundant intermediate
//!   values.
//! - **Common-subexpression elimination** — implicit in the graph's
//!   hash-consing; every rebuild re-dedupes.
//! - **Operator fusion (mux-chain extraction)** — a *cascade-level*
//!   optimization (Box 1): nested 2-way muxes that form a priority chain
//!   are fused into a single [`DfgOp::MuxChain`] operation, reducing the
//!   number of operations and memory accesses.
//! - **Dead-code elimination** — inherent in every rebuild (only nodes
//!   reachable from outputs and register next-states are copied).

use crate::graph::{Graph, NodeId, RegDef};
use crate::op::{canonicalize, eval_raw, DfgOp, OpClass};
use std::collections::{HashMap, HashSet};

/// Which passes to run (ablation hooks for the `opt-ablation` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassOptions {
    /// Fold constant-operand ops and simplify const-condition muxes.
    pub const_fold: bool,
    /// Collapse value-preserving copies (identity, no-op resize, trivial
    /// mux) onto their operand.
    pub copy_prop: bool,
    /// Fuse nested mux chains into [`DfgOp::MuxChain`].
    pub fuse_mux_chains: bool,
    /// Minimum number of 2-way muxes to justify a fused chain.
    pub min_chain_len: usize,
}

impl Default for PassOptions {
    fn default() -> Self {
        PassOptions {
            const_fold: true,
            copy_prop: true,
            fuse_mux_chains: true,
            min_chain_len: 3,
        }
    }
}

impl PassOptions {
    /// All passes disabled (the `-O0` analog used by Fig 19).
    pub fn none() -> Self {
        PassOptions {
            const_fold: false,
            copy_prop: false,
            fuse_mux_chains: false,
            min_chain_len: usize::MAX,
        }
    }
}

/// Counters describing what the passes changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Ops replaced by constants.
    pub const_folded: usize,
    /// Copies collapsed onto their operand.
    pub copies_propagated: usize,
    /// Structurally identical ops merged (CSE via hash-consing).
    pub cse_merged: usize,
    /// Unreachable ops dropped.
    pub dead_removed: usize,
    /// Mux chains fused (count of `MuxChain` ops created).
    pub chains_fused: usize,
    /// 2-way muxes absorbed into fused chains.
    pub muxes_absorbed: usize,
}

/// Runs the configured passes and returns the optimized graph with stats.
pub fn optimize(graph: &Graph, opts: &PassOptions) -> (Graph, PassStats) {
    let mut stats = PassStats::default();
    let mut g = rebuild(graph, &mut |new, node, ops| {
        transform(new, node, ops, opts, &mut stats)
    });
    if opts.fuse_mux_chains {
        g = fuse_mux_chains(&g, opts.min_chain_len, &mut stats);
    }
    stats.dead_removed = graph.len().saturating_sub(g.len());
    (g, stats)
}

/// Rebuilds a graph bottom-up, letting `f` choose the replacement node for
/// each live operation. Sources are copied verbatim; dead nodes vanish.
pub fn rebuild(
    graph: &Graph,
    f: &mut impl FnMut(&mut Graph, &crate::graph::Node, &[NodeId]) -> NodeId,
) -> Graph {
    let mut new = Graph::new(graph.name.clone());
    let mut map: HashMap<NodeId, NodeId> = HashMap::with_capacity(graph.len());
    for &input in &graph.inputs {
        let node = graph.node(input);
        let id = new.add_source(
            node.op,
            node.width,
            node.signed,
            node.name.clone().unwrap_or_default(),
        );
        new.inputs.push(id);
        map.insert(input, id);
    }
    for reg in &graph.regs {
        let node = graph.node(reg.state);
        let id = new.add_source(node.op, node.width, node.signed, reg.name.clone());
        new.regs.push(RegDef {
            state: id,
            next: id,
            init: reg.init,
            name: reg.name.clone(),
        });
        map.insert(reg.state, id);
    }
    for (id, node) in graph.iter() {
        if node.op == DfgOp::Const {
            map.insert(id, new.add_const(node.params[0], node.width, node.signed));
        }
    }
    let mut operand_buf = Vec::new();
    for id in graph.topo_order() {
        let node = graph.node(id);
        operand_buf.clear();
        operand_buf.extend(node.operands.iter().map(|o| map[o]));
        let new_id = f(&mut new, node, &operand_buf);
        if let Some(name) = &node.name {
            if new.node(new_id).name.is_none() {
                new.set_name(new_id, name.clone());
            }
        }
        map.insert(id, new_id);
    }
    for (k, reg) in graph.regs.iter().enumerate() {
        new.regs[k].next = map[&reg.next];
    }
    for (name, out) in &graph.outputs {
        new.outputs.push((name.clone(), map[out]));
    }
    new
}

fn transform(
    new: &mut Graph,
    node: &crate::graph::Node,
    ops: &[NodeId],
    opts: &PassOptions,
    stats: &mut PassStats,
) -> NodeId {
    if opts.const_fold {
        if node.op != DfgOp::Const
            && ops.iter().all(|&o| new.node(o).op == DfgOp::Const)
            && node.op.class() != OpClass::Source
        {
            let vals: Vec<u64> = ops.iter().map(|&o| new.node(o).params[0]).collect();
            let raw = eval_raw(node.op, &node.params, &vals);
            stats.const_folded += 1;
            return new.add_const(
                canonicalize(raw, node.width, node.signed),
                node.width,
                node.signed,
            );
        }
        // Mux with a constant condition collapses to one arm (plus a
        // resize if the arm is narrower than the mux result).
        if node.op == DfgOp::Mux && new.node(ops[0]).op == DfgOp::Const {
            let arm = if new.node(ops[0]).params[0] != 0 {
                ops[1]
            } else {
                ops[2]
            };
            stats.const_folded += 1;
            return coerce_like(new, arm, node.width, node.signed);
        }
        if node.op == DfgOp::ValidIf && new.node(ops[0]).op == DfgOp::Const {
            stats.const_folded += 1;
            return if new.node(ops[0]).params[0] != 0 {
                coerce_like(new, ops[1], node.width, node.signed)
            } else {
                new.add_const(0, node.width, node.signed)
            };
        }
    }
    if opts.copy_prop {
        // Identity / no-op resize: result value equals operand value.
        let value_preserving = matches!(node.op, DfgOp::Identity | DfgOp::Resize)
            && new.node(ops[0]).signed == node.signed
            && new.node(ops[0]).width <= node.width;
        if value_preserving {
            stats.copies_propagated += 1;
            return ops[0];
        }
        // Mux with identical arms.
        if node.op == DfgOp::Mux && ops[1] == ops[2] {
            stats.copies_propagated += 1;
            return coerce_like(new, ops[1], node.width, node.signed);
        }
    }
    let before = new.len();
    let id = new.add_op(
        node.op,
        node.params.clone(),
        ops.to_vec(),
        node.width,
        node.signed,
    );
    if new.len() == before {
        stats.cse_merged += 1;
    }
    id
}

fn coerce_like(new: &mut Graph, id: NodeId, width: u32, signed: bool) -> NodeId {
    let node = new.node(id);
    if node.signed == signed && node.width <= width {
        id
    } else {
        new.add_op(DfgOp::Resize, vec![], vec![id], width, signed)
    }
}

/// Fuses single-use nested mux chains into [`DfgOp::MuxChain`] ops.
fn fuse_mux_chains(graph: &Graph, min_len: usize, stats: &mut PassStats) -> Graph {
    // Count uses among live nodes (plus output/reg-next roots).
    let live = graph.topo_order();
    let mut uses: HashMap<NodeId, usize> = HashMap::new();
    for &id in &live {
        for &o in &graph.node(id).operands {
            *uses.entry(o).or_insert(0) += 1;
        }
    }
    for (_, id) in &graph.outputs {
        *uses.entry(*id).or_insert(0) += 1;
    }
    for reg in &graph.regs {
        *uses.entry(reg.next).or_insert(0) += 1;
    }
    // Count appearances as the false-arm of a live mux.
    let mut fval_uses: HashMap<NodeId, usize> = HashMap::new();
    for &id in &live {
        let node = graph.node(id);
        if node.op == DfgOp::Mux {
            *fval_uses.entry(node.operands[2]).or_insert(0) += 1;
        }
    }
    // A mux is absorbable if its only use is as the false-arm of exactly
    // one other mux.
    let absorbable = |id: NodeId| -> bool {
        graph.node(id).op == DfgOp::Mux
            && uses.get(&id).copied().unwrap_or(0) == 1
            && fval_uses.get(&id).copied().unwrap_or(0) == 1
    };
    // Identify chain heads: muxes whose false arm starts a chain but which
    // are not absorbable themselves.
    let mut planned: HashMap<NodeId, Vec<NodeId>> = HashMap::new(); // head -> chain muxes
    let mut absorbed: HashSet<NodeId> = HashSet::new();
    for &id in &live {
        let node = graph.node(id);
        if node.op != DfgOp::Mux || absorbed.contains(&id) {
            continue;
        }
        // Is this node itself going to be absorbed by its consumer?
        // We only start chains at non-absorbable heads; absorbable nodes
        // get claimed when their head is processed. Walk down the chain.
        if absorbable(id) {
            continue;
        }
        let mut chain = vec![id];
        let mut cur = id;
        while absorbable(graph.node(cur).operands[2]) {
            cur = graph.node(cur).operands[2];
            chain.push(cur);
        }
        if chain.len() >= min_len {
            for &m in &chain[1..] {
                absorbed.insert(m);
            }
            planned.insert(id, chain);
        }
    }
    if planned.is_empty() {
        return rebuild(graph, &mut |new, node, ops| {
            new.add_op(
                node.op,
                node.params.clone(),
                ops.to_vec(),
                node.width,
                node.signed,
            )
        });
    }
    stats.chains_fused += planned.len();
    stats.muxes_absorbed += absorbed.len();
    // Manual rebuild (the generic `rebuild` cannot see old node ids, which
    // the chain plan is keyed by): heads become MuxChain ops gathering
    // (cond, val) pairs from the whole chain; absorbed muxes are still
    // materialized here but end up dead and are dropped by the final
    // rebuild below.
    let mut new = Graph::new(graph.name.clone());
    let mut map: HashMap<NodeId, NodeId> = HashMap::with_capacity(graph.len());
    for &input in &graph.inputs {
        let node = graph.node(input);
        let id = new.add_source(
            node.op,
            node.width,
            node.signed,
            node.name.clone().unwrap_or_default(),
        );
        new.inputs.push(id);
        map.insert(input, id);
    }
    for reg in &graph.regs {
        let node = graph.node(reg.state);
        let id = new.add_source(node.op, node.width, node.signed, reg.name.clone());
        new.regs.push(RegDef {
            state: id,
            next: id,
            init: reg.init,
            name: reg.name.clone(),
        });
        map.insert(reg.state, id);
    }
    for (id, node) in graph.iter() {
        if node.op == DfgOp::Const {
            map.insert(id, new.add_const(node.params[0], node.width, node.signed));
        }
    }
    for id in graph.topo_order() {
        let node = graph.node(id);
        let new_id = if let Some(chain) = planned.get(&id) {
            let mut operands = Vec::with_capacity(chain.len() * 2 + 1);
            for &m in chain {
                let mn = graph.node(m);
                operands.push(map[&mn.operands[0]]);
                operands.push(map[&mn.operands[1]]);
            }
            let default = graph.node(*chain.last().unwrap()).operands[2];
            operands.push(map[&default]);
            new.add_op(DfgOp::MuxChain, vec![], operands, node.width, node.signed)
        } else {
            let ops: Vec<NodeId> = node.operands.iter().map(|o| map[o]).collect();
            new.add_op(node.op, node.params.clone(), ops, node.width, node.signed)
        };
        if let Some(name) = &node.name {
            if new.node(new_id).name.is_none() {
                new.set_name(new_id, name.clone());
            }
        }
        map.insert(id, new_id);
    }
    for (k, reg) in graph.regs.iter().enumerate() {
        new.regs[k].next = map[&reg.next];
    }
    for (name, out) in &graph.outputs {
        new.outputs.push((name.clone(), map[out]));
    }
    // Final plain rebuild drops the absorbed (now-dead) muxes.
    rebuild(&new, &mut |g, node, ops| {
        g.add_op(
            node.op,
            node.params.clone(),
            ops.to_vec(),
            node.width,
            node.signed,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build;
    use crate::interp::Interpreter;
    use rteaal_firrtl::{lower::lower_typed, parser::parse};

    fn graph_of(src: &str) -> Graph {
        build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap()
    }

    /// Every pass must preserve cycle-accurate behavior.
    fn assert_equivalent(a: &Graph, b: &Graph, cycles: u64, seed: u64) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut sa = Interpreter::new(a);
        let mut sb = Interpreter::new(b);
        for _ in 0..cycles {
            for i in 0..a.inputs.len() {
                let v: u64 = rng.gen();
                sa.set_input(i, v);
                sb.set_input(i, v);
            }
            sa.step();
            sb.step();
            for i in 0..a.outputs.len() {
                assert_eq!(sa.output(i), sb.output(i), "output {i} diverged");
            }
        }
    }

    #[test]
    fn const_folding_collapses_arithmetic() {
        let g = graph_of(
            "\
circuit C :
  module C :
    input a : UInt<8>
    output out : UInt<8>
    node k = tail(add(UInt<8>(3), UInt<8>(4)), 1)
    out <= tail(add(a, k), 1)
",
        );
        let (opt, stats) = optimize(&g, &PassOptions::default());
        assert!(stats.const_folded >= 1);
        // Only the runtime add survives.
        assert_eq!(opt.effectual_ops(), 2); // add + tail-resize
        assert_equivalent(&g, &opt, 50, 1);
    }

    #[test]
    fn const_mux_selects_arm() {
        let g = graph_of(
            "\
circuit C :
  module C :
    input a : UInt<8>
    input b : UInt<8>
    output out : UInt<8>
    out <= mux(UInt<1>(1), a, b)
",
        );
        let (opt, _) = optimize(&g, &PassOptions::default());
        assert_eq!(opt.outputs[0].1, opt.inputs[0]);
        assert_equivalent(&g, &opt, 20, 2);
    }

    #[test]
    fn copy_prop_removes_trivial_mux() {
        let g = graph_of(
            "\
circuit C :
  module C :
    input c : UInt<1>
    input a : UInt<8>
    output out : UInt<8>
    out <= mux(c, a, a)
",
        );
        let (opt, stats) = optimize(&g, &PassOptions::default());
        assert!(stats.copies_propagated >= 1);
        assert_eq!(opt.effectual_ops(), 0);
        assert_equivalent(&g, &opt, 20, 3);
    }

    #[test]
    fn mux_chain_fusion() {
        // A 4-deep priority chain (like a FIRRTL when-else ladder).
        let g = graph_of(
            "\
circuit C :
  module C :
    input c0 : UInt<1>
    input c1 : UInt<1>
    input c2 : UInt<1>
    input c3 : UInt<1>
    input v0 : UInt<8>
    input v1 : UInt<8>
    input v2 : UInt<8>
    input v3 : UInt<8>
    input d : UInt<8>
    output out : UInt<8>
    out <= mux(c0, v0, mux(c1, v1, mux(c2, v2, mux(c3, v3, d))))
",
        );
        let (opt, stats) = optimize(&g, &PassOptions::default());
        assert_eq!(stats.chains_fused, 1);
        assert_eq!(stats.muxes_absorbed, 3);
        let hist = opt.op_histogram();
        assert_eq!(hist.get(&DfgOp::MuxChain), Some(&1));
        assert_eq!(hist.get(&DfgOp::Mux), None);
        assert_equivalent(&g, &opt, 200, 4);
    }

    #[test]
    fn short_chains_not_fused() {
        let g = graph_of(
            "\
circuit C :
  module C :
    input c0 : UInt<1>
    input c1 : UInt<1>
    input a : UInt<8>
    input b : UInt<8>
    input d : UInt<8>
    output out : UInt<8>
    out <= mux(c0, a, mux(c1, b, d))
",
        );
        let (opt, stats) = optimize(&g, &PassOptions::default());
        assert_eq!(stats.chains_fused, 0);
        assert_eq!(opt.op_histogram().get(&DfgOp::Mux), Some(&2));
    }

    #[test]
    fn multiply_used_mux_not_absorbed() {
        let g = graph_of(
            "\
circuit C :
  module C :
    input c0 : UInt<1>
    input c1 : UInt<1>
    input c2 : UInt<1>
    input a : UInt<8>
    input b : UInt<8>
    input d : UInt<8>
    output out : UInt<8>
    output aux : UInt<8>
    node inner = mux(c1, b, mux(c2, a, d))
    out <= mux(c0, a, inner)
    aux <= inner
",
        );
        let (opt, _) = optimize(&g, &PassOptions::default());
        // inner is used twice, so the chain from `out` cannot absorb it.
        assert!(opt.op_histogram().get(&DfgOp::Mux).copied().unwrap_or(0) >= 1);
        assert_equivalent(&g, &opt, 100, 5);
    }

    #[test]
    fn passes_disabled_change_nothing_semantically() {
        let g = graph_of(
            "\
circuit C :
  module C :
    input clock : Clock
    input x : UInt<8>
    output out : UInt<8>
    reg r : UInt<8>, clock
    r <= tail(add(r, x), 1)
    out <= r
",
        );
        let (opt, stats) = optimize(&g, &PassOptions::none());
        assert_eq!(stats.const_folded, 0);
        assert_eq!(stats.copies_propagated, 0);
        assert_equivalent(&g, &opt, 100, 6);
    }

    #[test]
    fn dce_drops_unreachable() {
        let mut g = graph_of(
            "\
circuit C :
  module C :
    input a : UInt<8>
    output out : UInt<8>
    out <= not(a)
",
        );
        // Manually add dead nodes.
        let a = g.inputs[0];
        g.add_op(DfgOp::Neg, vec![], vec![a], 9, true);
        let before = g.len();
        let (opt, stats) = optimize(&g, &PassOptions::default());
        assert!(opt.len() < before);
        assert!(stats.dead_removed >= 1);
    }

    #[test]
    fn optimization_preserves_register_behavior() {
        let g = graph_of(
            "\
circuit C :
  module C :
    input clock : Clock
    input x : UInt<8>
    input sel : UInt<1>
    output out : UInt<8>
    reg r : UInt<8>, clock
    node dead_const = tail(mul(UInt<8>(6), UInt<8>(7)), 8)
    r <= mux(sel, tail(add(r, x), 1), mux(UInt<1>(0), dead_const, r))
    out <= r
",
        );
        let (opt, _) = optimize(&g, &PassOptions::default());
        assert_equivalent(&g, &opt, 300, 7);
    }
}
