//! Property-based differential test of the kernel-compilation stage:
//! for every opcode × arity × random width/signedness, the compiled lane
//! kernel's output row must be bit-identical to the interpreted
//! `eval_raw` + `canonicalize` per lane, on arbitrary lane data and on
//! partial (early-exit) lane windows.

use proptest::prelude::*;
use rteaal_dfg::lane_kernel::{CompiledOp, LaneWindow};
use rteaal_dfg::op::{canonicalize, eval_raw, DfgOp, ALL_OPS};
use rteaal_dfg::OpInst;

/// Every opcode the plan can schedule into a layer (sources excluded).
fn evaluable_ops() -> Vec<DfgOp> {
    ALL_OPS
        .iter()
        .copied()
        .filter(|op| !matches!(op, DfgOp::Input | DfgOp::RegState))
        .collect()
}

/// splitmix64 — dependent random values derived from one generated seed.
fn mix(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Valid-by-construction arity and parameters for one opcode, randomized
/// within the op's own constraints (shift guards deliberately straddle
/// 64 to hit the out-of-range paths).
fn arity_and_params(op: DfgOp, seed: &mut u64) -> (usize, Vec<u64>) {
    match op {
        DfgOp::Const => (0, vec![mix(seed)]),
        DfgOp::Andr | DfgOp::Orr | DfgOp::Xorr => (1, vec![1 + mix(seed) % 64]),
        DfgOp::Shl | DfgOp::Shr => (1, vec![mix(seed) % 80]),
        DfgOp::Bits => {
            let lo = mix(seed) % 63;
            let hi = lo + mix(seed) % (63 - lo + 1);
            (1, vec![hi, lo])
        }
        DfgOp::Head => {
            let wa = 1 + mix(seed) % 64;
            let n = 1 + mix(seed) % wa;
            (1, vec![n, wa])
        }
        DfgOp::Cat => (2, vec![1 + mix(seed) % 64, 1 + mix(seed) % 70]),
        DfgOp::MuxChain => (3 + 2 * (mix(seed) % 4) as usize, vec![]),
        _ => (op.arity().expect("fixed arity"), vec![]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 300, ..ProptestConfig::default() })]

    #[test]
    fn compiled_kernels_match_the_interpreter(
        op in prop::sample::select(evaluable_ops()),
        width in 1u32..65,
        signed in any::<bool>(),
        lanes in 1usize..12,
        seed in any::<u64>(),
    ) {
        let mut seed = seed;
        let (arity, params) = arity_and_params(op, &mut seed);
        let inst = OpInst {
            n: op.n_coord(),
            out: 0,
            ins: (1..=arity as u32).collect(),
            params,
            width: width as u8,
            signed,
        };
        let compiled = CompiledOp::compile(&inst);
        prop_assert_eq!(compiled.out_slot(), 0);
        let slots = arity + 1;
        let li: Vec<u64> = (0..slots * lanes).map(|_| mix(&mut seed)).collect();
        // Full window and a partial (early-exit) window.
        for active in [lanes, 1 + (mix(&mut seed) as usize) % lanes] {
            let w = LaneWindow { stride: lanes, active };
            let mut got = li.clone();
            compiled.eval_lanes(&mut got, w, &mut Vec::new());
            let mut want = li.clone();
            let mut ins = Vec::with_capacity(arity);
            for lane in 0..active {
                ins.clear();
                ins.extend(inst.ins.iter().map(|&r| want[r as usize * lanes + lane]));
                let raw = eval_raw(op, &inst.params, &ins);
                want[lane] = canonicalize(raw, width, signed);
            }
            prop_assert_eq!(
                &got,
                &want,
                "op {} width {} signed {} lanes {} active {}",
                op, width, signed, lanes, active
            );
        }
    }

    #[test]
    fn compiled_kernels_match_the_interpreted_lane_walk(
        op in prop::sample::select(evaluable_ops()),
        width in 1u32..65,
        signed in any::<bool>(),
        lanes in 1usize..10,
        seed in any::<u64>(),
    ) {
        // Same property, phrased against `OpInst::eval_lanes` (the
        // interpreted walk the batch golden model actually runs), so the
        // two execution paths can never drift apart unnoticed.
        let mut seed = seed;
        let (arity, params) = arity_and_params(op, &mut seed);
        let inst = OpInst {
            n: op.n_coord(),
            out: 0,
            ins: (1..=arity as u32).collect(),
            params,
            width: width as u8,
            signed,
        };
        let compiled = CompiledOp::compile(&inst);
        let li: Vec<u64> = (0..(arity + 1) * lanes).map(|_| mix(&mut seed)).collect();
        let w = LaneWindow::full(lanes);
        let mut got = li.clone();
        compiled.eval_lanes(&mut got, w, &mut Vec::new());
        let mut want = li.clone();
        let mut buf = Vec::new();
        inst.eval_lanes(&mut want, w, &mut buf);
        prop_assert_eq!(&got, &want, "op {}", op);
    }
}
