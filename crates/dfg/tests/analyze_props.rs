//! Property-based coverage of the static plan verifier:
//!
//! 1. **No false positives, and clean means correct**: every randomly
//!    generated, valid-by-construction plan comes back analyzer-clean,
//!    and every analyzer-clean plan runs bit-exact between the compiled
//!    lane kernels and the interpreted lane walk over multiple cycles of
//!    random stimulus (registers committed identically on both paths).
//! 2. **No false negatives**: each seeded violation class — shuffled
//!    layer order, corrupted RUM ownership, out-of-bounds operand
//!    offset, injected combinational cycle — is caught with the right
//!    [`DiagKind`].

use proptest::prelude::*;
use rteaal_dfg::analyze::{
    analyze_design, analyze_graph, analyze_partitioned, analyze_plan, DiagKind,
};
use rteaal_dfg::graph::Graph;
use rteaal_dfg::lane_kernel::{compile_plan, LaneWindow};
use rteaal_dfg::op::{canonicalize, DfgOp};
use rteaal_dfg::partition::PartitionedPlan;
use rteaal_dfg::plan::{split_commits, OpInst, PlanStats, SimPlan};

/// splitmix64 — dependent random values derived from one generated seed.
fn mix(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Opcodes the random scheduler draws from (sources excluded; everything
/// here evaluates through both the interpreter and a compiled kernel).
const SCHEDULABLE: &[DfgOp] = &[
    DfgOp::Add,
    DfgOp::Sub,
    DfgOp::And,
    DfgOp::Or,
    DfgOp::Xor,
    DfgOp::Not,
    DfgOp::Eq,
    DfgOp::Ltu,
    DfgOp::Gts,
    DfgOp::Mux,
    DfgOp::Shl,
    DfgOp::Shr,
    DfgOp::Bits,
    DfgOp::Cat,
    DfgOp::Andr,
    DfgOp::Xorr,
];

/// Valid-by-construction arity and parameters for one opcode.
fn arity_and_params(op: DfgOp, seed: &mut u64) -> (usize, Vec<u64>) {
    match op {
        DfgOp::Andr | DfgOp::Xorr => (1, vec![1 + mix(seed) % 64]),
        DfgOp::Shl | DfgOp::Shr => (1, vec![mix(seed) % 70]),
        DfgOp::Bits => {
            let lo = mix(seed) % 63;
            let hi = lo + mix(seed) % (63 - lo + 1);
            (1, vec![hi, lo])
        }
        DfgOp::Cat => (2, vec![1 + mix(seed) % 64, 1 + mix(seed) % 64]),
        _ => (op.arity().expect("fixed arity"), vec![]),
    }
}

/// Builds a random, legal-by-construction plan: register/input/const
/// source slots, then layers of ops whose operands only reference slots
/// produced strictly earlier (plus an explicit cross-layer dependency so
/// layer shuffling is always detectable), then one commit per register.
fn random_plan(seed: u64) -> SimPlan {
    let mut s = seed;
    let regs = 1 + (mix(&mut s) % 3) as u32;
    let inputs = 1 + (mix(&mut s) % 3) as u32;
    let consts = (mix(&mut s) % 3) as u32;
    let n_layers = 2 + (mix(&mut s) % 3) as usize;

    let mut init_values = Vec::new();
    for _ in 0..regs {
        init_values.push(mix(&mut s) % 1000);
    }
    init_values.extend(std::iter::repeat_n(0, inputs as usize));
    let const_start = init_values.len() as u32;
    for _ in 0..consts {
        init_values.push(mix(&mut s));
    }
    let const_end = init_values.len() as u32;

    // Slots usable as operands; grows by one layer at a time so the
    // strictly-earlier-layer rule holds by construction.
    let mut available: Vec<u32> = (0..const_end).collect();
    let mut layers = Vec::new();
    let mut next_slot = const_end;
    let mut prev_layer_out = None;
    for l in 0..n_layers {
        let n_ops = 1 + (mix(&mut s) % 4) as usize;
        let mut layer = Vec::new();
        for o in 0..n_ops {
            let op = SCHEDULABLE[(mix(&mut s) as usize) % SCHEDULABLE.len()];
            let (arity, params) = arity_and_params(op, &mut s);
            let mut ins: Vec<u32> = (0..arity)
                .map(|_| available[(mix(&mut s) as usize) % available.len()])
                .collect();
            // First op of every non-first layer consumes the previous
            // layer's first result: reversing the schedule is then
            // guaranteed to be a use-before-def, and the dependency
            // chain keeps most of the plan live.
            if l > 0 && o == 0 && arity > 0 {
                ins[0] = prev_layer_out.expect("previous layer produced a slot");
            }
            let width = 1 + (mix(&mut s) % 64) as u8;
            layer.push(OpInst {
                n: op.n_coord(),
                out: next_slot,
                ins,
                params,
                width,
                signed: mix(&mut s).is_multiple_of(2),
            });
            init_values.push(0);
            next_slot += 1;
        }
        prev_layer_out = Some(next_slot - 1);
        let new: Vec<u32> = layer.iter().map(|op| op.out).collect();
        available.extend(new);
        layers.push(layer);
    }

    let commits: Vec<(u32, u32)> = (0..regs)
        .map(|r| (r, available[(mix(&mut s) as usize) % available.len()]))
        .collect();
    let num_slots = next_slot as usize;
    let output_slots = vec![("y".to_string(), next_slot - 1)];
    let probes = (0..regs).map(|r| (format!("r{r}"), r, 64u8)).collect();
    SimPlan {
        name: "random".to_string(),
        num_slots,
        input_slots: (regs..regs + inputs).collect(),
        input_types: (0..inputs).map(|_| (64u8, false)).collect(),
        output_slots,
        const_slots: (const_start, const_end),
        commits,
        init_values,
        stats: PlanStats {
            effectual_ops: layers.iter().map(Vec::len).sum(),
            identity_ops: 0,
            layers: layers.len(),
            slots: num_slots,
        },
        layers,
        probes,
    }
}

/// Steps `cycles` of a plan over `lanes` lanes of random stimulus on
/// both execution paths — compiled lane kernels vs the interpreted lane
/// walk — with identical commit handling, and demands bit-identical `LI`
/// contents after every cycle.
fn run_differential(plan: &SimPlan, lanes: usize, cycles: usize, seed: u64) -> Result<(), String> {
    let mut s = seed;
    let compiled = compile_plan(plan);
    let w = LaneWindow::full(lanes);
    let mut li_int: Vec<u64> = Vec::with_capacity(plan.num_slots * lanes);
    for &v in &plan.init_values {
        li_int.extend(std::iter::repeat_n(v, lanes));
    }
    let mut li_cmp = li_int.clone();
    let (direct, staged) = split_commits(&plan.commits);
    let mut buf = Vec::new();
    for cycle in 0..cycles {
        for (idx, &slot) in plan.input_slots.iter().enumerate() {
            let (width, signed) = plan.input_types[idx];
            for lane in 0..lanes {
                let v = canonicalize(mix(&mut s), width as u32, signed);
                li_int[slot as usize * lanes + lane] = v;
                li_cmp[slot as usize * lanes + lane] = v;
            }
        }
        for (layer, clayer) in plan.layers.iter().zip(&compiled) {
            for op in layer {
                op.eval_lanes(&mut li_int, w, &mut buf);
            }
            for op in clayer {
                op.eval_lanes(&mut li_cmp, w, &mut buf);
            }
        }
        if li_int != li_cmp {
            return Err(format!("divergence after layers of cycle {cycle}"));
        }
        for li in [&mut li_int, &mut li_cmp] {
            for &(dst, src) in &direct {
                for lane in 0..lanes {
                    li[dst as usize * lanes + lane] = li[src as usize * lanes + lane];
                }
            }
            let stage: Vec<u64> = staged
                .iter()
                .flat_map(|&(_, src)| (0..lanes).map(move |lane| (src, lane)))
                .map(|(src, lane)| li[src as usize * lanes + lane])
                .collect();
            for (i, &(dst, _)) in staged.iter().enumerate() {
                for lane in 0..lanes {
                    li[dst as usize * lanes + lane] = stage[i * lanes + lane];
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn clean_random_plans_run_bit_exact(
        seed in any::<u64>(),
        lanes in 1usize..5,
    ) {
        let plan = random_plan(seed);
        let report = analyze_design(&plan);
        prop_assert!(
            report.is_clean(),
            "generated plan must be analyzer-clean: {}", report
        );
        prop_assert_eq!(report.stats.ops, plan.total_ops());
        prop_assert_eq!(report.stats.layers, plan.layers.len());
        let outcome = run_differential(&plan, lanes, 4, seed ^ 0xabcd);
        prop_assert!(
            outcome.is_ok(),
            "analyzer-clean plan diverged: {:?}", outcome
        );
        // The partitioned schedule of a clean plan is clean too.
        for parts in [2usize, 3] {
            let pp = PartitionedPlan::new(&plan, parts);
            let report = analyze_partitioned(&plan, &pp);
            prop_assert!(report.is_clean(), "{} partitions: {}", parts, report);
        }
    }

    #[test]
    fn shuffled_layers_are_use_before_def(seed in any::<u64>()) {
        let mut plan = random_plan(seed);
        plan.layers.reverse();
        let report = analyze_plan(&plan);
        prop_assert!(
            report.has(DiagKind::UseBeforeDef),
            "reversed layers must be use-before-def: {}", report
        );
        prop_assert!(!report.is_clean());
    }

    #[test]
    fn corrupted_rum_owner_is_caught(seed in any::<u64>()) {
        let plan = random_plan(seed);
        let mut pp = PartitionedPlan::new(&plan, 2);
        let entry = pp.rum.first_mut().expect("plans have registers");
        entry.owner = (entry.owner + 1) % 2;
        let report = analyze_partitioned(&plan, &pp);
        prop_assert!(
            report.has(DiagKind::ForeignCommit) || report.has(DiagKind::RumOwnerMismatch),
            "corrupted owner must be caught: {}", report
        );
        prop_assert!(!report.is_clean());
    }

    #[test]
    fn out_of_bounds_operand_is_caught(seed in any::<u64>()) {
        let mut plan = random_plan(seed);
        let mut s = seed;
        let op = loop {
            let l = (mix(&mut s) as usize) % plan.layers.len();
            let o = (mix(&mut s) as usize) % plan.layers[l].len();
            if !plan.layers[l][o].ins.is_empty() {
                break &mut plan.layers[l][o];
            }
        };
        op.ins[0] = plan.num_slots as u32 + 1 + (mix(&mut s) % 100) as u32;
        let report = analyze_design(&plan);
        prop_assert!(
            report.has(DiagKind::SlotOutOfBounds),
            "oob operand must be caught in the plan: {}", report
        );
        prop_assert!(
            report.has(DiagKind::KernelOutOfBounds),
            "oob operand must be caught in the kernel table: {}", report
        );
        prop_assert!(!report.is_clean());
    }

    #[test]
    fn injected_comb_cycles_are_caught_with_a_named_trace(
        chain_len in 2usize..8,
        back_to in any::<u64>(),
    ) {
        // A chain x -> op0 -> op1 -> ... -> opN, then one back-edge from
        // an earlier op to a later one — the shape a buggy pass could
        // produce, which used to panic in levelization.
        let mut g = Graph::new("cyclic");
        let x = g.add_source(DfgOp::Input, 8, false, "x".into());
        g.inputs.push(x);
        let mut chain = Vec::new();
        let mut prev = x;
        for i in 0..chain_len {
            let n = g.add_op(DfgOp::Not, vec![], vec![prev], 8, false);
            g.set_name(n, format!("sig_{i}"));
            chain.push(n);
            prev = n;
        }
        g.outputs.push(("y".into(), prev));
        let from = (back_to as usize) % (chain_len - 1);
        let to = from + 1 + (back_to as usize >> 8) % (chain_len - from - 1);
        g.node_mut(chain[from]).operands[0] = chain[to];
        let report = analyze_graph(&g);
        let diag = report
            .diagnostics
            .iter()
            .find(|d| d.kind == DiagKind::CombCycle);
        prop_assert!(diag.is_some(), "injected cycle must be caught: {}", report);
        let diag = diag.unwrap();
        prop_assert!(
            diag.message.contains(&format!("sig_{from}"))
                && diag.message.contains(&format!("sig_{to}")),
            "trace must name both ends of the back-edge: {}", diag.message
        );
    }
}
