//! The fibertree abstraction (paper §2.2, Figure 2).
//!
//! A fibertree is a tree representation of a tensor with one level per
//! rank. Each level contains *fibers*: sets of `(coordinate, payload)`
//! pairs sharing higher-level coordinates. Payloads are scalar values at
//! the leaves and references to next-level fibers at intermediate nodes.
//!
//! Fibertrees handle dense and sparse tensors uniformly: a dense tensor's
//! fibers contain every coordinate in the shape, a sparse tensor's fibers
//! omit coordinates with empty payloads.

use std::collections::BTreeMap;
use std::fmt;

/// A payload: a scalar at a leaf, or a child fiber at an inner level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Leaf scalar value.
    Value(u64),
    /// Reference to the next-level fiber.
    Fiber(Fiber),
}

impl Payload {
    /// The scalar, if this is a leaf payload.
    pub fn value(&self) -> Option<u64> {
        match self {
            Payload::Value(v) => Some(*v),
            Payload::Fiber(_) => None,
        }
    }

    /// The child fiber, if this is an inner payload.
    pub fn fiber(&self) -> Option<&Fiber> {
        match self {
            Payload::Value(_) => None,
            Payload::Fiber(f) => Some(f),
        }
    }
}

/// A fiber: ordered `(coordinate, payload)` pairs with a shape.
///
/// # Examples
///
/// ```
/// use rteaal_tensor::fibertree::Fiber;
/// let f = Fiber::from_values(3, [(0, 2), (2, 1)]);
/// assert_eq!(f.shape(), 3);
/// assert_eq!(f.occupancy(), 2);
/// assert_eq!(f.value_at(2), Some(1));
/// assert_eq!(f.value_at(1), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Fiber {
    shape: usize,
    entries: BTreeMap<usize, Payload>,
}

impl Fiber {
    /// Creates an empty fiber with the given shape.
    pub fn new(shape: usize) -> Self {
        Fiber {
            shape,
            entries: BTreeMap::new(),
        }
    }

    /// Builds a leaf fiber from `(coordinate, value)` pairs; zero values
    /// are treated as empty and omitted.
    pub fn from_values(shape: usize, pairs: impl IntoIterator<Item = (usize, u64)>) -> Self {
        let mut f = Fiber::new(shape);
        for (c, v) in pairs {
            if v != 0 {
                f.set_value(c, v);
            }
        }
        f
    }

    /// The number of possible coordinates (paper: *shape*).
    pub fn shape(&self) -> usize {
        self.shape
    }

    /// The number of non-empty coordinates (paper: *occupancy*).
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Whether the fiber has no non-empty coordinates.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The payload at a coordinate.
    pub fn payload_at(&self, coord: usize) -> Option<&Payload> {
        self.entries.get(&coord)
    }

    /// The leaf value at a coordinate.
    pub fn value_at(&self, coord: usize) -> Option<u64> {
        self.payload_at(coord).and_then(Payload::value)
    }

    /// The child fiber at a coordinate.
    pub fn fiber_at(&self, coord: usize) -> Option<&Fiber> {
        self.payload_at(coord).and_then(Payload::fiber)
    }

    /// Sets a leaf value (a zero still creates an explicit entry; use
    /// [`Fiber::remove`] to make a coordinate empty).
    ///
    /// # Panics
    ///
    /// Panics if `coord` is outside the shape.
    pub fn set_value(&mut self, coord: usize, value: u64) {
        assert!(
            coord < self.shape,
            "coordinate {coord} outside shape {}",
            self.shape
        );
        self.entries.insert(coord, Payload::Value(value));
    }

    /// Sets a child fiber.
    ///
    /// # Panics
    ///
    /// Panics if `coord` is outside the shape.
    pub fn set_fiber(&mut self, coord: usize, fiber: Fiber) {
        assert!(
            coord < self.shape,
            "coordinate {coord} outside shape {}",
            self.shape
        );
        self.entries.insert(coord, Payload::Fiber(fiber));
    }

    /// Removes (empties) a coordinate, returning its payload.
    pub fn remove(&mut self, coord: usize) -> Option<Payload> {
        self.entries.remove(&coord)
    }

    /// Iterates `(coordinate, payload)` pairs in coordinate order — the
    /// concordant-traversal order every kernel in the paper relies on.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Payload)> {
        self.entries.iter().map(|(&c, p)| (c, p))
    }

    /// Iterates only leaf values, in coordinate order.
    pub fn iter_values(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.entries
            .iter()
            .filter_map(|(&c, p)| p.value().map(|v| (c, v)))
    }
}

impl FromIterator<(usize, u64)> for Fiber {
    /// Collects `(coordinate, value)` pairs into a fiber whose shape is one
    /// past the largest coordinate.
    fn from_iter<T: IntoIterator<Item = (usize, u64)>>(iter: T) -> Self {
        let pairs: Vec<(usize, u64)> = iter.into_iter().collect();
        let shape = pairs.iter().map(|&(c, _)| c + 1).max().unwrap_or(0);
        Fiber::from_values(shape, pairs)
    }
}

/// A tensor as a fibertree: named ranks plus the root fiber.
///
/// # Examples
///
/// Build the matrix `A` of paper Figure 2 and inspect its fibers:
///
/// ```
/// use rteaal_tensor::fibertree::Tensor;
/// // A = [[0 0 1] [2 3 4]], ranks M (rows) and K (columns).
/// let a = Tensor::from_dense_2d("A", ["M", "K"], &[&[0, 0, 1], &[2, 3, 4]]);
/// assert_eq!(a.root().occupancy(), 2);
/// assert_eq!(a.root().fiber_at(0).unwrap().occupancy(), 1);
/// assert_eq!(a.root().fiber_at(1).unwrap().occupancy(), 3);
/// assert_eq!(a.get(&[0, 2]), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tensor {
    name: String,
    rank_names: Vec<String>,
    root: Fiber,
}

impl Tensor {
    /// Creates an empty tensor with the given rank names and shapes.
    pub fn new(
        name: impl Into<String>,
        ranks: impl IntoIterator<Item = impl Into<String>>,
        shapes: &[usize],
    ) -> Self {
        let rank_names: Vec<String> = ranks.into_iter().map(Into::into).collect();
        assert_eq!(rank_names.len(), shapes.len(), "one shape per rank");
        assert!(!rank_names.is_empty(), "tensors need at least one rank");
        Tensor {
            name: name.into(),
            rank_names,
            root: Fiber::new(shapes[0]),
        }
    }

    /// Builds a rank-1 tensor from a dense slice (zeros become empty).
    pub fn from_dense_1d(name: impl Into<String>, rank: impl Into<String>, data: &[u64]) -> Self {
        let mut t = Tensor::new(name, [rank], &[data.len()]);
        for (i, &v) in data.iter().enumerate() {
            if v != 0 {
                t.root.set_value(i, v);
            }
        }
        t
    }

    /// Builds a rank-2 tensor from dense rows (zeros become empty).
    pub fn from_dense_2d(name: impl Into<String>, ranks: [&str; 2], rows: &[&[u64]]) -> Self {
        let cols = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut t = Tensor::new(name, ranks, &[rows.len(), cols]);
        for (m, row) in rows.iter().enumerate() {
            let fiber = Fiber::from_values(cols, row.iter().enumerate().map(|(k, &v)| (k, v)));
            if !fiber.is_empty() {
                t.root.set_fiber(m, fiber);
            }
        }
        t
    }

    /// The tensor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rank names, outermost first.
    pub fn rank_names(&self) -> &[String] {
        &self.rank_names
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.rank_names.len()
    }

    /// The root fiber.
    pub fn root(&self) -> &Fiber {
        &self.root
    }

    /// Mutable root fiber (for constructing deeper trees by hand).
    pub fn root_mut(&mut self) -> &mut Fiber {
        &mut self.root
    }

    /// Reads the scalar at a full coordinate tuple; `None` when any level
    /// is empty along the path.
    ///
    /// # Panics
    ///
    /// Panics if `point` has the wrong number of coordinates.
    pub fn get(&self, point: &[usize]) -> Option<u64> {
        assert_eq!(
            point.len(),
            self.num_ranks(),
            "point arity must match rank count"
        );
        let mut fiber = &self.root;
        for &c in &point[..point.len() - 1] {
            fiber = fiber.fiber_at(c)?;
        }
        fiber.value_at(point[point.len() - 1])
    }

    /// Writes a scalar at a full coordinate tuple, creating intermediate
    /// fibers as needed (their shapes default to the coordinate + 1 when
    /// unknown).
    ///
    /// # Panics
    ///
    /// Panics if `point` has the wrong number of coordinates.
    pub fn set(&mut self, point: &[usize], value: u64) {
        assert_eq!(
            point.len(),
            self.num_ranks(),
            "point arity must match rank count"
        );
        fn descend(fiber: &mut Fiber, point: &[usize], value: u64) {
            if point.len() == 1 {
                if point[0] >= fiber.shape() {
                    fiber.shape = point[0] + 1;
                }
                fiber.set_value(point[0], value);
                return;
            }
            let c = point[0];
            if c >= fiber.shape() {
                fiber.shape = c + 1;
            }
            if fiber.fiber_at(c).is_none() {
                fiber.set_fiber(c, Fiber::new(point[1] + 1));
            }
            match fiber.entries.get_mut(&c) {
                Some(Payload::Fiber(child)) => descend(child, &point[1..], value),
                _ => unreachable!("just inserted"),
            }
        }
        descend(&mut self.root, point, value);
    }

    /// Total number of non-empty leaf values.
    pub fn nnz(&self) -> usize {
        fn count(fiber: &Fiber) -> usize {
            fiber
                .iter()
                .map(|(_, p)| match p {
                    Payload::Value(_) => 1,
                    Payload::Fiber(f) => count(f),
                })
                .sum()
        }
        count(&self.root)
    }

    /// Iterates all `(point, value)` pairs in lexicographic order.
    pub fn iter_points(&self) -> Vec<(Vec<usize>, u64)> {
        fn walk(fiber: &Fiber, prefix: &mut Vec<usize>, out: &mut Vec<(Vec<usize>, u64)>) {
            for (c, p) in fiber.iter() {
                prefix.push(c);
                match p {
                    Payload::Value(v) => out.push((prefix.clone(), *v)),
                    Payload::Fiber(f) => walk(f, prefix, out),
                }
                prefix.pop();
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut Vec::new(), &mut out);
        out
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] nnz={}",
            self.name,
            self.rank_names.join(","),
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Figure 2: matrix A with fibers of occupancy 1 and 3.
    fn figure_2_matrix() -> Tensor {
        Tensor::from_dense_2d("A", ["M", "K"], &[&[0, 0, 1], &[2, 3, 4]])
    }

    #[test]
    fn figure_2_shapes_and_occupancies() {
        let a = figure_2_matrix();
        let m_fiber = a.root();
        assert_eq!(m_fiber.shape(), 2);
        assert_eq!(m_fiber.occupancy(), 2);
        let k0 = m_fiber.fiber_at(0).unwrap();
        let k1 = m_fiber.fiber_at(1).unwrap();
        assert_eq!((k0.shape(), k0.occupancy()), (3, 1));
        assert_eq!((k1.shape(), k1.occupancy()), (3, 3));
        assert_eq!(a.get(&[0, 2]), Some(1));
        assert_eq!(a.get(&[0, 0]), None);
    }

    #[test]
    fn sparse_tensor_omits_empty() {
        let t = Tensor::from_dense_1d("B", "R", &[0, 7, 0, 0, 9]);
        assert_eq!(t.root().occupancy(), 2);
        assert_eq!(t.root().shape(), 5);
        assert_eq!(t.nnz(), 2);
    }

    #[test]
    fn set_creates_intermediate_fibers() {
        let mut t = Tensor::new("T", ["I", "S", "R"], &[2, 4, 8]);
        t.set(&[1, 3, 5], 42);
        assert_eq!(t.get(&[1, 3, 5]), Some(42));
        assert_eq!(t.get(&[1, 3, 4]), None);
        assert_eq!(t.nnz(), 1);
    }

    #[test]
    fn iter_points_lexicographic() {
        let mut t = Tensor::new("T", ["M", "K"], &[3, 3]);
        t.set(&[2, 0], 5);
        t.set(&[0, 1], 3);
        t.set(&[0, 0], 1);
        let pts = t.iter_points();
        assert_eq!(
            pts,
            vec![(vec![0, 0], 1), (vec![0, 1], 3), (vec![2, 0], 5),]
        );
    }

    #[test]
    fn fiber_iteration_is_coordinate_ordered() {
        let f = Fiber::from_values(10, [(7, 1), (2, 2), (5, 3)]);
        let coords: Vec<usize> = f.iter().map(|(c, _)| c).collect();
        assert_eq!(coords, vec![2, 5, 7]);
    }

    #[test]
    fn from_iter_derives_shape() {
        let f: Fiber = [(1, 10u64), (4, 20)].into_iter().collect();
        assert_eq!(f.shape(), 5);
        assert_eq!(f.occupancy(), 2);
    }

    #[test]
    #[should_panic(expected = "outside shape")]
    fn out_of_shape_rejected() {
        let mut f = Fiber::new(3);
        f.set_value(3, 1);
    }

    #[test]
    fn display_mentions_ranks() {
        let a = figure_2_matrix();
        assert_eq!(a.to_string(), "A[M,K] nnz=4");
    }
}
