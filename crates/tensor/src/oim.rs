//! Concrete encodings of the `OIM` (operation input mask) tensor.
//!
//! The `OIM` is the paper's central data structure (§4, §5.1): a 5-rank
//! sparse binary tensor over `[I, S, N, O, R]` — layer, operation, op type,
//! operand order, operand slot. This module lowers a
//! [`SimPlan`](rteaal_dfg::SimPlan) onto the three concrete formats of
//! Figure 12:
//!
//! - [`OimUnoptimized`] — format (a): every rank keeps explicit payloads.
//! - [`OimOptimized`] — format (b): one-hot and mask payloads eliminated
//!   (`pbits = 0` for `S`, `N`, `O`, `R`), rank order `[I, S, N, O, R]`.
//! - [`OimSwizzled`] — format (c): the `S`/`N` swizzle of §5.2 (NU kernel),
//!   rank order `[I, N, S, O, R]` with an uncompressed `N` rank whose
//!   payloads count the operations per type, and the `I` payloads
//!   eliminated.
//!
//! Each encoding also carries an *operation side table* ([`OpMeta`]):
//! static parameters, result width/signedness, and arity. The paper's
//! formulation holds these inside the user-defined `op_*[n]` operators;
//! keeping them in a table aligned with traversal order preserves the
//! format sizes reported by the size accounting (they are payload-like
//! data, counted explicitly).

use crate::format::{bits_for_max, FormatSpec, RankOccupancy, RankSpec};
use rteaal_dfg::op::{DfgOp, NUM_OPCODES};
use rteaal_dfg::SimPlan;
use serde::{Deserialize, Serialize};

/// Per-operation side data (the contents of the paper's `op_*[n]` operator
/// tables), aligned with each encoding's traversal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpMeta {
    /// Static parameters (bit indices, widths, shift amounts).
    pub params: [u64; 2],
    /// Result width for canonicalization.
    pub width: u8,
    /// Result signedness.
    pub signed: bool,
    /// Operand count (only consulted for variable-arity ops).
    pub arity: u16,
}

impl OpMeta {
    fn from_inst(op: &rteaal_dfg::OpInst) -> Self {
        let mut params = [0u64; 2];
        for (k, &p) in op.params.iter().take(2).enumerate() {
            params[k] = p;
        }
        OpMeta {
            params,
            width: op.width,
            signed: op.signed,
            arity: op.ins.len() as u16,
        }
    }
}

/// One operation as seen by a traversal: borrowed views into the arrays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpRef<'a> {
    /// `N`-rank coordinate (opcode).
    pub n: u16,
    /// `S`-rank coordinate (output slot).
    pub s: u32,
    /// `R`-rank coordinates (operand slots in `O` order).
    pub rs: &'a [u32],
    /// Side data.
    pub meta: &'a OpMeta,
}

impl OpRef<'_> {
    /// Decodes the opcode.
    pub fn op(&self) -> DfgOp {
        DfgOp::from_n_coord(self.n).expect("valid opcode")
    }

    /// The static parameters, truncated to the op's real parameter count.
    pub fn params(&self) -> &[u64] {
        &self.meta.params
    }
}

/// Format (b) of Figure 12: the optimized `[I, S, N, O, R]` encoding.
///
/// Payload arrays for one-hot ranks (`N`, `R`), the mask rank (`R`
/// values), and per-op occupancy (`S`, `O`) are eliminated; only layer
/// payloads (`I`) plus the `S`/`N`/`R` coordinate arrays remain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OimOptimized {
    /// Design name.
    pub name: String,
    /// Ops per layer (`I`-rank payloads: occupancy of each `S` fiber).
    pub i_payloads: Vec<u32>,
    /// Output slot per op (`S`-rank coordinates, concatenated by layer).
    pub s_coords: Vec<u32>,
    /// Opcode per op (`N`-rank coordinates).
    pub n_coords: Vec<u16>,
    /// Operand slots (`R`-rank coordinates, concatenated in `O` order).
    pub r_coords: Vec<u32>,
    /// Start of each op's operand run in `r_coords` (derived; lets random
    /// access coexist with the sequential `.next()`-style traversal).
    pub r_offsets: Vec<u32>,
    /// Per-op side data.
    pub meta: Vec<OpMeta>,
    /// Number of `LI` slots (shape of `S` and `R`).
    pub num_slots: usize,
}

impl OimOptimized {
    /// Lowers a plan onto format (b).
    pub fn from_plan(plan: &SimPlan) -> Self {
        let total: usize = plan.total_ops();
        let mut oim = OimOptimized {
            name: plan.name.clone(),
            i_payloads: Vec::with_capacity(plan.layers.len()),
            s_coords: Vec::with_capacity(total),
            n_coords: Vec::with_capacity(total),
            r_coords: Vec::new(),
            r_offsets: Vec::with_capacity(total + 1),
            meta: Vec::with_capacity(total),
            num_slots: plan.num_slots,
        };
        for layer in &plan.layers {
            oim.i_payloads.push(layer.len() as u32);
            for op in layer {
                oim.r_offsets.push(oim.r_coords.len() as u32);
                oim.s_coords.push(op.out);
                oim.n_coords.push(op.n);
                oim.r_coords.extend_from_slice(&op.ins);
                oim.meta.push(OpMeta::from_inst(op));
            }
        }
        oim.r_offsets.push(oim.r_coords.len() as u32);
        oim
    }

    /// Number of layers (`I`-rank shape).
    pub fn num_layers(&self) -> usize {
        self.i_payloads.len()
    }

    /// Total operation count.
    pub fn num_ops(&self) -> usize {
        self.s_coords.len()
    }

    /// Iterates the ops of layer `i` in `S` order.
    pub fn layer(&self, i: usize) -> impl Iterator<Item = OpRef<'_>> {
        let start: usize = self.i_payloads[..i].iter().map(|&c| c as usize).sum();
        let len = self.i_payloads[i] as usize;
        (start..start + len).map(move |k| self.op_at(k))
    }

    /// Random access to op `k` in global traversal order.
    pub fn op_at(&self, k: usize) -> OpRef<'_> {
        let (lo, hi) = (self.r_offsets[k] as usize, self.r_offsets[k + 1] as usize);
        OpRef {
            n: self.n_coords[k],
            s: self.s_coords[k],
            rs: &self.r_coords[lo..hi],
            meta: &self.meta[k],
        }
    }

    /// The TeAAL format specification (Figure 12b) with bitwidths derived
    /// from the actual coordinate/payload value ranges.
    pub fn format_spec(&self) -> FormatSpec {
        let slot_bits = bits_for_max(self.num_slots.saturating_sub(1) as u64);
        let i_pbits = bits_for_max(self.i_payloads.iter().copied().max().unwrap_or(0) as u64);
        FormatSpec::new(
            "OIM",
            [
                RankSpec::uncompressed("I", i_pbits),
                RankSpec::compressed("S", slot_bits, 0),
                RankSpec::compressed("N", bits_for_max(NUM_OPCODES as u64 - 1), 0),
                RankSpec::uncompressed("O", 0),
                RankSpec::compressed("R", slot_bits, 0),
            ],
        )
    }

    /// Bit-packed storage per the format spec (the "format size" used by
    /// the compression ablation).
    pub fn packed_bytes(&self) -> usize {
        self.format_spec()
            .size_bits(&self.rank_occupancies())
            .div_ceil(8)
    }

    fn rank_occupancies(&self) -> [RankOccupancy; 5] {
        [
            (0, self.i_payloads.len()).into(),
            (self.s_coords.len(), 0).into(),
            (self.n_coords.len(), 0).into(),
            (0, 0).into(),
            (self.r_coords.len(), 0).into(),
        ]
    }

    /// Actual in-memory bytes of the coordinate/payload arrays (what the
    /// D-cache sees in the rolled kernels).
    pub fn memory_bytes(&self) -> usize {
        self.i_payloads.len() * 4
            + self.s_coords.len() * 4
            + self.n_coords.len() * 2
            + self.r_coords.len() * 4
            + self.r_offsets.len() * 4
            + self.meta.len() * std::mem::size_of::<OpMeta>()
    }

    /// Density of the logical 5-rank mask: nonzeros over the full
    /// `I*S*N*O*R` iteration-space volume (paper §5.1: between 1e-7 and
    /// 1e-9 for real designs).
    pub fn density(&self) -> f64 {
        let nnz = self.r_coords.len() as f64;
        let max_arity = self
            .meta
            .iter()
            .map(|m| m.arity as usize)
            .max()
            .unwrap_or(1)
            .max(1);
        let volume = self.num_layers() as f64
            * self.num_slots as f64 // S shape
            * NUM_OPCODES as f64
            * max_arity as f64
            * self.num_slots as f64; // R shape
        if volume == 0.0 {
            0.0
        } else {
            nnz / volume
        }
    }
}

/// Format (a) of Figure 12: the unoptimized encoding, with explicit payload
/// arrays for every rank. Kept for the format-compression ablation
/// (`tables -- ablation-format`): its payload arrays carry exactly the
/// one-hot/mask/occupancy structure §5.1 proves redundant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OimUnoptimized {
    /// The coordinate arrays (identical to format (b)).
    pub base: OimOptimized,
    /// `S`-rank payloads: occupancy of each op's `N` fiber (always 1).
    pub s_payloads: Vec<u32>,
    /// `N`-rank payloads: operand count of each op.
    pub n_payloads: Vec<u32>,
    /// `O`-rank payloads: occupancy of each operand's `R` fiber (always 1).
    pub o_payloads: Vec<u32>,
    /// `R`-rank payloads: the mask values (always 1).
    pub r_payloads: Vec<u32>,
}

impl OimUnoptimized {
    /// Lowers a plan onto format (a).
    pub fn from_plan(plan: &SimPlan) -> Self {
        let base = OimOptimized::from_plan(plan);
        let n_payloads: Vec<u32> = base.meta.iter().map(|m| m.arity as u32).collect();
        let num_ops = base.num_ops();
        let num_operands = base.r_coords.len();
        OimUnoptimized {
            s_payloads: vec![1; num_ops],
            n_payloads,
            o_payloads: vec![1; num_operands],
            r_payloads: vec![1; num_operands],
            base,
        }
    }

    /// The TeAAL format specification (Figure 12a).
    pub fn format_spec(&self) -> FormatSpec {
        let slot_bits = bits_for_max(self.base.num_slots.saturating_sub(1) as u64);
        let i_pbits = bits_for_max(self.base.i_payloads.iter().copied().max().unwrap_or(0) as u64);
        let arity_bits = bits_for_max(self.n_payloads.iter().copied().max().unwrap_or(1) as u64);
        FormatSpec::new(
            "OIM",
            [
                RankSpec::uncompressed("I", i_pbits),
                RankSpec::compressed("S", slot_bits, 1),
                RankSpec::compressed("N", bits_for_max(NUM_OPCODES as u64 - 1), arity_bits),
                RankSpec::uncompressed("O", 1),
                RankSpec::compressed("R", slot_bits, 1),
            ],
        )
    }

    /// Bit-packed storage per the format spec.
    pub fn packed_bytes(&self) -> usize {
        let occ: [RankOccupancy; 5] = [
            (0, self.base.i_payloads.len()).into(),
            (self.base.s_coords.len(), self.s_payloads.len()).into(),
            (self.base.n_coords.len(), self.n_payloads.len()).into(),
            (0, self.o_payloads.len()).into(),
            (self.base.r_coords.len(), self.r_payloads.len()).into(),
        ];
        self.format_spec().size_bits(&occ).div_ceil(8)
    }

    /// Actual in-memory bytes.
    pub fn memory_bytes(&self) -> usize {
        self.base.memory_bytes()
            + (self.s_payloads.len()
                + self.n_payloads.len()
                + self.o_payloads.len()
                + self.r_payloads.len())
                * 4
    }
}

/// Format (c) of Figure 12: the `S`/`N`-swizzled `[I, N, S, O, R]`
/// encoding used by the NU kernel and above (§5.2). Groups the operations
/// of each layer by type so each op type gets its own inner `S` loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OimSwizzled {
    /// Design name.
    pub name: String,
    /// Ops per `(layer, opcode)` — the uncompressed `N`-rank payloads,
    /// laid out `layer * NUM_OPCODES + opcode`.
    pub n_payloads: Vec<u32>,
    /// Output slots grouped by `(layer, opcode)`.
    pub s_coords: Vec<u32>,
    /// Operand slots in the same grouping.
    pub r_coords: Vec<u32>,
    /// Start of each op's operand run in `r_coords`.
    pub r_offsets: Vec<u32>,
    /// Per-op side data, in grouped traversal order.
    pub meta: Vec<OpMeta>,
    /// Start of each `(layer, opcode)` group in `s_coords`/`meta`.
    pub group_offsets: Vec<u32>,
    /// Number of layers.
    pub num_layers: usize,
    /// Number of `LI` slots.
    pub num_slots: usize,
}

impl OimSwizzled {
    /// Lowers a plan onto format (c), grouping each layer's ops by type.
    pub fn from_plan(plan: &SimPlan) -> Self {
        let total = plan.total_ops();
        let num_layers = plan.layers.len();
        let mut oim = OimSwizzled {
            name: plan.name.clone(),
            n_payloads: vec![0; num_layers * NUM_OPCODES],
            s_coords: Vec::with_capacity(total),
            r_coords: Vec::new(),
            r_offsets: Vec::with_capacity(total + 1),
            meta: Vec::with_capacity(total),
            group_offsets: Vec::with_capacity(num_layers * NUM_OPCODES + 1),
            num_layers,
            num_slots: plan.num_slots,
        };
        for (i, layer) in plan.layers.iter().enumerate() {
            // Stable grouping by opcode preserves intra-type order (which
            // already respects dependencies; ops in a layer never depend on
            // each other).
            let mut by_type: Vec<Vec<&rteaal_dfg::OpInst>> = vec![Vec::new(); NUM_OPCODES];
            for op in layer {
                by_type[op.n as usize].push(op);
            }
            for (n, group) in by_type.iter().enumerate() {
                oim.group_offsets.push(oim.s_coords.len() as u32);
                oim.n_payloads[i * NUM_OPCODES + n] = group.len() as u32;
                for op in group {
                    oim.r_offsets.push(oim.r_coords.len() as u32);
                    oim.s_coords.push(op.out);
                    oim.r_coords.extend_from_slice(&op.ins);
                    oim.meta.push(OpMeta::from_inst(op));
                }
            }
        }
        oim.group_offsets.push(oim.s_coords.len() as u32);
        oim.r_offsets.push(oim.r_coords.len() as u32);
        oim
    }

    /// Total operation count.
    pub fn num_ops(&self) -> usize {
        self.s_coords.len()
    }

    /// The `(layer, opcode)` group as index bounds into
    /// `s_coords`/`meta` (and, via `r_offsets`, `r_coords`).
    pub fn group(&self, layer: usize, n: u16) -> std::ops::Range<usize> {
        let g = layer * NUM_OPCODES + n as usize;
        self.group_offsets[g] as usize..self.group_offsets[g + 1] as usize
    }

    /// Number of ops of type `n` in `layer`.
    pub fn group_len(&self, layer: usize, n: u16) -> usize {
        self.n_payloads[layer * NUM_OPCODES + n as usize] as usize
    }

    /// Random access to op `k` in grouped traversal order.
    pub fn op_at(&self, k: usize) -> (u32, &[u32], &OpMeta) {
        let (lo, hi) = (self.r_offsets[k] as usize, self.r_offsets[k + 1] as usize);
        (self.s_coords[k], &self.r_coords[lo..hi], &self.meta[k])
    }

    /// The TeAAL format specification (Figure 12c).
    pub fn format_spec(&self) -> FormatSpec {
        let slot_bits = bits_for_max(self.num_slots.saturating_sub(1) as u64);
        let n_pbits = bits_for_max(self.n_payloads.iter().copied().max().unwrap_or(0) as u64);
        FormatSpec::new(
            "OIM",
            [
                RankSpec::uncompressed("I", 0),
                RankSpec::uncompressed("N", n_pbits),
                RankSpec::compressed("S", slot_bits, 0),
                RankSpec::uncompressed("O", 0),
                RankSpec::compressed("R", slot_bits, 0),
            ],
        )
    }

    /// Bit-packed storage per the format spec.
    pub fn packed_bytes(&self) -> usize {
        let occ: [RankOccupancy; 5] = [
            (0, 0).into(),
            (0, self.n_payloads.len()).into(),
            (self.s_coords.len(), 0).into(),
            (0, 0).into(),
            (self.r_coords.len(), 0).into(),
        ];
        self.format_spec().size_bits(&occ).div_ceil(8)
    }

    /// Actual in-memory bytes.
    pub fn memory_bytes(&self) -> usize {
        self.n_payloads.len() * 4
            + self.s_coords.len() * 4
            + self.r_coords.len() * 4
            + self.r_offsets.len() * 4
            + self.group_offsets.len() * 4
            + self.meta.len() * std::mem::size_of::<OpMeta>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rteaal_dfg::{build, plan::plan};
    use rteaal_firrtl::{lower::lower_typed, parser::parse};

    fn plan_of(src: &str) -> SimPlan {
        plan(&build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap())
    }

    const MIXED: &str = "\
circuit Mixed :
  module Mixed :
    input clock : Clock
    input x : UInt<8>
    input sel : UInt<1>
    output out : UInt<8>
    reg acc : UInt<8>, clock
    node nx = tail(add(acc, x), 1)
    node alt = xor(acc, x)
    acc <= mux(sel, nx, alt)
    out <= acc
";

    #[test]
    fn optimized_roundtrips_plan_content() {
        let p = plan_of(MIXED);
        let oim = OimOptimized::from_plan(&p);
        assert_eq!(oim.num_layers(), p.layers.len());
        assert_eq!(oim.num_ops(), p.total_ops());
        // Every op visible through the traversal matches the plan.
        let mut k = 0;
        for (i, layer) in p.layers.iter().enumerate() {
            for (op, got) in layer.iter().zip(oim.layer(i)) {
                assert_eq!(got.n, op.n);
                assert_eq!(got.s, op.out);
                assert_eq!(got.rs, op.ins.as_slice());
                assert_eq!(got.meta.width, op.width);
                k += 1;
            }
        }
        assert_eq!(k, oim.num_ops());
    }

    #[test]
    fn swizzled_groups_by_opcode() {
        let p = plan_of(MIXED);
        let oim = OimSwizzled::from_plan(&p);
        assert_eq!(oim.num_ops(), p.total_ops());
        // Group sizes per layer sum to layer sizes, and every group holds
        // only its own opcode.
        for (i, layer) in p.layers.iter().enumerate() {
            let mut total = 0;
            for n in 0..NUM_OPCODES as u16 {
                let range = oim.group(i, n);
                assert_eq!(range.len(), oim.group_len(i, n));
                total += range.len();
            }
            assert_eq!(total, layer.len());
        }
    }

    #[test]
    fn unoptimized_payloads_are_structural() {
        let p = plan_of(MIXED);
        let oim = OimUnoptimized::from_plan(&p);
        assert!(oim.s_payloads.iter().all(|&v| v == 1));
        assert!(oim.r_payloads.iter().all(|&v| v == 1));
        assert_eq!(oim.n_payloads.len(), oim.base.num_ops());
        // Arity payloads match opcode arity (muxes have 3 operands).
        for (k, &arity) in oim.n_payloads.iter().enumerate() {
            let op = oim.base.op_at(k);
            assert_eq!(arity as usize, op.rs.len());
        }
    }

    #[test]
    fn compression_shrinks_monotonically() {
        let p = plan_of(MIXED);
        let a = OimUnoptimized::from_plan(&p);
        let b = OimOptimized::from_plan(&p);
        let c = OimSwizzled::from_plan(&p);
        // (a) -> (b) strictly shrinks (payload arrays eliminated).
        assert!(b.packed_bytes() < a.packed_bytes());
        // (c) trades I payloads for dense N payloads; on tiny designs the
        // dense N rank can dominate, so just check it is sane.
        assert!(c.packed_bytes() > 0);
    }

    #[test]
    fn density_is_tiny_for_nontrivial_designs() {
        // A modestly sized design already lands far below 1e-3.
        let mut src = String::from(
            "\
circuit D :
  module D :
    input clock : Clock
    input x : UInt<8>
    output out : UInt<8>
",
        );
        for i in 0..50 {
            src.push_str(&format!("    reg r{i} : UInt<8>, clock\n"));
        }
        src.push_str("    r0 <= tail(add(r49, x), 1)\n");
        for i in 1..50 {
            src.push_str(&format!("    r{i} <= xor(r{}, x)\n", i - 1));
        }
        src.push_str("    out <= r49\n");
        let p = plan_of(&src);
        let oim = OimOptimized::from_plan(&p);
        assert!(oim.density() < 1e-3, "density = {}", oim.density());
    }

    #[test]
    fn format_specs_match_figure_12() {
        let p = plan_of(MIXED);
        let b = OimOptimized::from_plan(&p).format_spec();
        assert_eq!(b.rank_order(), ["I", "S", "N", "O", "R"]);
        assert_eq!(b.ranks[0].cbits, 0); // I uncompressed
        assert!(b.ranks[0].pbits > 0); // I payloads kept
        assert_eq!(b.ranks[1].pbits, 0); // S payloads eliminated
        assert_eq!(b.ranks[4].pbits, 0); // R payloads eliminated

        let c = OimSwizzled::from_plan(&p).format_spec();
        assert_eq!(c.rank_order(), ["I", "N", "S", "O", "R"]);
        assert_eq!(c.ranks[0].pbits, 0); // I payloads eliminated
        assert!(c.ranks[1].pbits > 0); // N payloads kept (op counts)
    }

    #[test]
    fn json_roundtrip() {
        let p = plan_of(MIXED);
        let oim = OimOptimized::from_plan(&p);
        let json = serde_json::to_string(&oim).unwrap();
        let back: OimOptimized = serde_json::from_str(&json).unwrap();
        assert_eq!(oim, back);
        let sw = OimSwizzled::from_plan(&p);
        let json = serde_json::to_string(&sw).unwrap();
        let back: OimSwizzled = serde_json::from_str(&json).unwrap();
        assert_eq!(sw, back);
    }

    #[test]
    fn r_offsets_are_consistent() {
        let p = plan_of(MIXED);
        let oim = OimOptimized::from_plan(&p);
        assert_eq!(oim.r_offsets.len(), oim.num_ops() + 1);
        assert_eq!(*oim.r_offsets.last().unwrap() as usize, oim.r_coords.len());
        for k in 0..oim.num_ops() {
            assert!(oim.r_offsets[k] <= oim.r_offsets[k + 1]);
        }
    }
}
