//! # rteaal-tensor
//!
//! Tensor abstractions for the RTeAAL Sim reproduction.
//!
//! - [`fibertree`]: the fibertree view of tensors (paper §2.2) used by the
//!   Einsum interpreter and the paper's worked examples.
//! - [`format`]: TeAAL per-rank format specifications with `cbits`/`pbits`
//!   size accounting (§2.5.2, Figure 6).
//! - [`oim`]: the three concrete encodings of the `OIM` operation-input-
//!   mask tensor from Figure 12 — unoptimized (a), optimized (b), and
//!   `S`/`N`-swizzled (c) — that the kernels in `rteaal-kernels`
//!   traverse. The `OIM` serializes to JSON, matching the paper's compiler
//!   output ("OIM tensors stored in JSON files", Figure 14).
//!
//! ## Example
//!
//! ```
//! use rteaal_firrtl::{parser::parse, lower::lower_typed};
//! use rteaal_dfg::{build, plan::plan};
//! use rteaal_tensor::oim::OimOptimized;
//!
//! let src = "\
//! circuit Acc :
//!   module Acc :
//!     input clock : Clock
//!     input x : UInt<8>
//!     output out : UInt<8>
//!     reg acc : UInt<8>, clock
//!     acc <= tail(add(acc, x), 1)
//!     out <= acc
//! ";
//! let plan = plan(&build(&lower_typed(&parse(src)?)?)?);
//! let oim = OimOptimized::from_plan(&plan);
//! assert_eq!(oim.format_spec().rank_order(), ["I", "S", "N", "O", "R"]);
//! let json = serde_json::to_string(&oim)?; // the Figure-14 JSON artifact
//! assert!(json.contains("s_coords"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod fibertree;
pub mod format;
pub mod oim;

pub use fibertree::{Fiber, Payload, Tensor};
pub use format::{FormatSpec, RankFormat, RankSpec};
pub use oim::{OimOptimized, OimSwizzled, OimUnoptimized, OpMeta, OpRef};
