//! TeAAL per-rank format specifications (paper §2.5.2, Figures 6 and 12).
//!
//! A tensor's concrete representation is described rank by rank: each rank
//! is *uncompressed* (arrays sized by shape, coordinates implicit) or
//! *compressed* (arrays sized by occupancy, coordinates explicit), with a
//! coordinate bitwidth (`cbits`) and payload bitwidth (`pbits`). Setting a
//! bitwidth to zero eliminates that array entirely — the key move in the
//! paper's stepwise `OIM` compression (Figure 12 a→b→c).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a rank's arrays are sized by shape or by occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RankFormat {
    /// Arrays sized by shape; coordinates implicit in array position.
    Uncompressed,
    /// Arrays sized by occupancy; coordinates explicit.
    Compressed,
}

impl fmt::Display for RankFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankFormat::Uncompressed => f.write_str("U"),
            RankFormat::Compressed => f.write_str("C"),
        }
    }
}

/// Format of one rank.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankSpec {
    /// Rank name (e.g. `"S"`).
    pub name: String,
    /// Compressed or uncompressed.
    pub format: RankFormat,
    /// Bits per explicit coordinate (0 = no coordinate array).
    pub cbits: u32,
    /// Bits per payload (0 = no payload array).
    pub pbits: u32,
}

impl RankSpec {
    /// An uncompressed rank (implicit coordinates).
    pub fn uncompressed(name: impl Into<String>, pbits: u32) -> Self {
        RankSpec {
            name: name.into(),
            format: RankFormat::Uncompressed,
            cbits: 0,
            pbits,
        }
    }

    /// A compressed rank with explicit coordinates.
    pub fn compressed(name: impl Into<String>, cbits: u32, pbits: u32) -> Self {
        RankSpec {
            name: name.into(),
            format: RankFormat::Compressed,
            cbits,
            pbits,
        }
    }
}

/// Per-entry storage statistics for one rank of a concrete tensor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankOccupancy {
    /// Entries in the coordinate array (0 when cbits = 0).
    pub coord_entries: usize,
    /// Entries in the payload array (0 when pbits = 0).
    pub payload_entries: usize,
}

/// A whole-tensor format: rank order plus one spec per rank.
///
/// # Examples
///
/// The CSR matrix format of paper Figure 6:
///
/// ```
/// use rteaal_tensor::format::{FormatSpec, RankSpec};
/// let csr = FormatSpec::new("A", [
///     RankSpec::uncompressed("M", 8),
///     RankSpec::compressed("K", 8, 8),
/// ]);
/// assert_eq!(csr.rank_order(), ["M", "K"]);
/// // 3 rows, 4 nonzeros: row-pointer-ish payloads + coord/payload pairs.
/// let bits = csr.size_bits(&[(3, 3).into(), (4, 4).into()]);
/// assert_eq!(bits, 3 * 8 + 4 * 8 + 4 * 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FormatSpec {
    /// Tensor name.
    pub tensor: String,
    /// Rank specs, outermost first (this *is* the rank order).
    pub ranks: Vec<RankSpec>,
}

impl From<(usize, usize)> for RankOccupancy {
    fn from((coord_entries, payload_entries): (usize, usize)) -> Self {
        RankOccupancy {
            coord_entries,
            payload_entries,
        }
    }
}

impl FormatSpec {
    /// Creates a format from rank specs in rank order.
    pub fn new(tensor: impl Into<String>, ranks: impl IntoIterator<Item = RankSpec>) -> Self {
        FormatSpec {
            tensor: tensor.into(),
            ranks: ranks.into_iter().collect(),
        }
    }

    /// The rank order (outermost first).
    pub fn rank_order(&self) -> Vec<&str> {
        self.ranks.iter().map(|r| r.name.as_str()).collect()
    }

    /// Total storage in bits for the given per-rank entry counts.
    ///
    /// # Panics
    ///
    /// Panics if `occupancies` does not have one entry per rank.
    pub fn size_bits(&self, occupancies: &[RankOccupancy]) -> usize {
        assert_eq!(
            occupancies.len(),
            self.ranks.len(),
            "one occupancy per rank"
        );
        self.ranks
            .iter()
            .zip(occupancies)
            .map(|(spec, occ)| {
                occ.coord_entries * spec.cbits as usize + occ.payload_entries * spec.pbits as usize
            })
            .sum()
    }

    /// Total storage in bytes (rounded up).
    pub fn size_bytes(&self, occupancies: &[RankOccupancy]) -> usize {
        self.size_bits(occupancies).div_ceil(8)
    }
}

impl fmt::Display for FormatSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.tensor)?;
        writeln!(
            f,
            "  rank-order: [{}]",
            self.ranks
                .iter()
                .map(|r| r.name.clone())
                .collect::<Vec<_>>()
                .join(", ")
        )?;
        for r in &self.ranks {
            writeln!(f, "  {}: format: {}", r.name, r.format)?;
            writeln!(
                f,
                "    cbits: {}",
                if r.cbits == 0 {
                    "0".into()
                } else {
                    r.cbits.to_string()
                }
            )?;
            writeln!(
                f,
                "    pbits: {}",
                if r.pbits == 0 {
                    "0".into()
                } else {
                    r.pbits.to_string()
                }
            )?;
        }
        Ok(())
    }
}

/// Bits needed to store values in `0..=max_value` (at least 1).
pub fn bits_for_max(max_value: u64) -> u32 {
    rteaal_firrtl::ty::bits_for(max_value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_example_of_figure_6() {
        // M uncompressed with cbits 0 (implicit coords), K compressed.
        let csr = FormatSpec::new(
            "A",
            [
                RankSpec::uncompressed("M", 16),
                RankSpec::compressed("K", 16, 16),
            ],
        );
        assert_eq!(csr.ranks[0].cbits, 0);
        assert_eq!(csr.rank_order(), ["M", "K"]);
        // 3 rows each with a payload; 4 nnz with coord+payload each.
        let size = csr.size_bits(&[(0, 3).into(), (4, 4).into()]);
        assert_eq!(size, 3 * 16 + 4 * 32);
    }

    #[test]
    fn zero_bits_eliminates_arrays() {
        let spec = FormatSpec::new(
            "OIM",
            [
                RankSpec::compressed("S", 20, 0),
                RankSpec::compressed("R", 20, 0),
            ],
        );
        // Payload entries contribute nothing at pbits = 0.
        let size = spec.size_bits(&[(10, 10).into(), (30, 30).into()]);
        assert_eq!(size, (10 + 30) * 20);
    }

    #[test]
    fn bytes_round_up() {
        let spec = FormatSpec::new("T", [RankSpec::compressed("R", 3, 0)]);
        assert_eq!(spec.size_bytes(&[(3, 0).into()]), 2); // 9 bits -> 2 bytes
    }

    #[test]
    fn display_matches_teaal_style() {
        let spec = FormatSpec::new(
            "OIM",
            [
                RankSpec::uncompressed("I", 12),
                RankSpec::compressed("S", 20, 0),
            ],
        );
        let text = spec.to_string();
        assert!(text.contains("rank-order: [I, S]"));
        assert!(text.contains("I: format: U"));
        assert!(text.contains("S: format: C"));
    }

    #[test]
    fn bits_for_max_values() {
        assert_eq!(bits_for_max(0), 1);
        assert_eq!(bits_for_max(255), 8);
        assert_eq!(bits_for_max(256), 9);
    }
}
