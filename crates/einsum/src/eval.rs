//! Execution of extended-Einsum actions over fibers.
//!
//! Implements the three EDGE actions (paper §2.4) as fiber operations:
//!
//! - [`map_fibers`] — combines two fibers under a coordinate operator,
//!   producing the *map temporaries*.
//! - [`reduce_fiber`] — aggregates a fiber into a *reduce temporary*,
//!   visiting coordinates in ascending order (the ordering constraint the
//!   paper imposes on the `O` rank for non-commutative operators, §4.1).
//! - [`populate_fiber`] — applies a populate coordinate operator to an
//!   entire fiber at once (Appendix A; used for `max2` and `op_s[n]`).
//! - [`iterate`] — drives an Einsum with an iterative rank (§2.4,
//!   prefix-sum example, Algorithm 1).

use crate::notation::CoordOp;
use rteaal_tensor::fibertree::Fiber;

/// Applies the map action: combine `a` and `b` into map temporaries.
///
/// The coordinate operator selects which coordinates are evaluated; the
/// `compute` closure receives the (possibly empty) payloads and returns
/// the temporary, or `None` to leave the output empty.
///
/// # Examples
///
/// Elementwise multiply at the intersection (step 1 of the Figure 3 dot
/// product):
///
/// ```
/// use rteaal_einsum::eval::map_fibers;
/// use rteaal_einsum::notation::CoordOp;
/// use rteaal_tensor::fibertree::Fiber;
/// let a = Fiber::from_values(3, [(0, 2), (1, 4)]);
/// let b = Fiber::from_values(3, [(0, 3), (1, 2), (2, 9)]);
/// let t = map_fibers(&a, &b, CoordOp::Intersect, |x, y| Some(x? * y?));
/// assert_eq!(t.value_at(0), Some(6));
/// assert_eq!(t.value_at(1), Some(8));
/// assert_eq!(t.value_at(2), None); // a is empty at 2
/// ```
pub fn map_fibers(
    a: &Fiber,
    b: &Fiber,
    coord: CoordOp,
    compute: impl Fn(Option<u64>, Option<u64>) -> Option<u64>,
) -> Fiber {
    let shape = a.shape().max(b.shape());
    let mut out = Fiber::new(shape);
    let coords: Vec<usize> = match coord {
        CoordOp::Intersect => a
            .iter_values()
            .map(|(c, _)| c)
            .filter(|&c| b.value_at(c).is_some())
            .collect(),
        CoordOp::Union => {
            let mut cs: Vec<usize> = a.iter_values().map(|(c, _)| c).collect();
            cs.extend(b.iter_values().map(|(c, _)| c));
            cs.sort_unstable();
            cs.dedup();
            cs
        }
        CoordOp::TakeLeft => a.iter_values().map(|(c, _)| c).collect(),
        CoordOp::TakeRight => b.iter_values().map(|(c, _)| c).collect(),
        CoordOp::PassThrough => (0..shape).collect(),
        CoordOp::Custom(name) => panic!("custom coordinate operator {name} needs populate_fiber"),
    };
    for c in coords {
        if let Some(v) = compute(a.value_at(c), b.value_at(c)) {
            out.set_value(c, v);
        }
    }
    out
}

/// Applies a unary map action (single input tensor, §2.4 Einsum 3): the
/// coordinate operator is take-left, the compute operator transforms each
/// non-empty value.
pub fn map_unary(a: &Fiber, compute: impl Fn(u64) -> u64) -> Fiber {
    let mut out = Fiber::new(a.shape());
    for (c, v) in a.iter_values() {
        out.set_value(c, compute(v));
    }
    out
}

/// Applies the reduce action over a fiber, in coordinate-ascending order.
///
/// `compute(acc, new)` combines the running reduce temporary with the next
/// map temporary; when no temporary exists yet, the map temporary is
/// copied in (paper §2.4). Returns `None` for an empty fiber.
///
/// # Examples
///
/// Summing only the non-empty elements (paper Einsum 4):
///
/// ```
/// use rteaal_einsum::eval::reduce_fiber;
/// use rteaal_tensor::fibertree::Fiber;
/// let a = Fiber::from_values(4, [(0, 6), (2, 8)]);
/// assert_eq!(reduce_fiber(&a, |acc, v| acc + v), Some(14));
/// ```
pub fn reduce_fiber(a: &Fiber, compute: impl Fn(u64, u64) -> u64) -> Option<u64> {
    let mut acc: Option<u64> = None;
    for (_, v) in a.iter_values() {
        acc = Some(match acc {
            None => v,
            Some(prev) => compute(prev, v),
        });
    }
    acc
}

/// Applies a populate coordinate operator to a whole fiber (Appendix A):
/// the operator sees the entire reduce-temporary fiber and decides which
/// points of the output fiber to keep, update, or delete.
pub fn populate_fiber(reduce_tmp: &Fiber, op: impl Fn(&Fiber) -> Fiber) -> Fiber {
    op(reduce_tmp)
}

/// The `max2` populate coordinate operator of paper Einsum 14 / Figure 22:
/// keeps the two largest values (by value, ties broken toward lower
/// coordinates), preserving their coordinates.
pub fn max2(fiber: &Fiber) -> Fiber {
    let mut entries: Vec<(usize, u64)> = fiber.iter_values().collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    entries.truncate(2);
    let mut out = Fiber::new(fiber.shape());
    for (c, v) in entries {
        out.set_value(c, v);
    }
    out
}

/// Drives an Einsum with an iterative rank (paper §2.4): starting from
/// `init`, applies `step(state, i)` for `i in 0..len`, recording every
/// intermediate state. Returns the fiber `S` of shape `len + 1` with
/// `S_0 = init` (zeros stay empty, matching the sparse identification).
///
/// # Examples
///
/// The prefix-sum Einsum `S_{i+1} = S_i · A_i :: ∧+(∪)` (Algorithm 1):
///
/// ```
/// use rteaal_einsum::eval::iterate;
/// use rteaal_tensor::fibertree::Fiber;
/// let a = Fiber::from_values(4, [(0, 1), (1, 2), (2, 3), (3, 4)]);
/// let s = iterate(0, 4, |state, i| state + a.value_at(i).unwrap_or(0));
/// assert_eq!(s.value_at(4), Some(10));
/// assert_eq!(s.value_at(2), Some(3));
/// assert_eq!(s.value_at(0), None); // S_0 = 0 is an empty payload
/// ```
pub fn iterate(init: u64, len: usize, step: impl Fn(u64, usize) -> u64) -> Fiber {
    let mut out = Fiber::new(len + 1);
    let mut state = init;
    if state != 0 {
        out.set_value(0, state);
    }
    for i in 0..len {
        state = step(state, i);
        if state != 0 {
            out.set_value(i + 1, state);
        }
    }
    out
}

/// Full dot product (paper Figure 3): map ×(∩), reduce +(∪), populate
/// pass-through.
pub fn dot_product(a: &Fiber, b: &Fiber) -> u64 {
    let tmp = map_fibers(a, b, CoordOp::Intersect, |x, y| Some(x? * y?));
    reduce_fiber(&tmp, |acc, v| acc + v).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_3_dot_product_stepwise() {
        // A = [2, 4], B = [3, 2, 7]: temporaries [6, 8], reduce 14.
        let a = Fiber::from_values(3, [(0, 2), (1, 4)]);
        let b = Fiber::from_values(3, [(0, 3), (1, 2), (2, 7)]);
        let tmp = map_fibers(&a, &b, CoordOp::Intersect, |x, y| Some(x? * y?));
        assert_eq!(tmp.occupancy(), 2);
        assert_eq!(tmp.value_at(0), Some(6));
        assert_eq!(tmp.value_at(1), Some(8));
        let reduced = reduce_fiber(&tmp, |acc, v| acc + v);
        assert_eq!(reduced, Some(14));
        // Pass-through populate changes nothing.
        assert_eq!(dot_product(&a, &b), 14);
    }

    #[test]
    fn einsum_2_take_left_of_take_right() {
        // Z_m = A_m · B_m :: ∧←(→): A's values where B is non-empty.
        let a = Fiber::from_values(4, [(0, 3), (1, 7), (2, 2)]);
        let b = Fiber::from_values(4, [(0, 1), (2, 1), (3, 1)]);
        let z = map_fibers(&a, &b, CoordOp::TakeRight, |x, _| x);
        assert_eq!(z.value_at(0), Some(3));
        assert_eq!(z.value_at(1), None); // B empty at 1
        assert_eq!(z.value_at(2), Some(2));
        assert_eq!(z.value_at(3), None); // A empty at 3: nothing to take
    }

    #[test]
    fn einsum_3_copies_nonempty() {
        let a = Fiber::from_values(5, [(1, 9), (4, 2)]);
        let z = map_unary(&a, |v| v);
        assert_eq!(z, a);
    }

    #[test]
    fn einsum_4_sums_nonempty() {
        let a = Fiber::from_values(5, [(1, 9), (4, 2)]);
        assert_eq!(reduce_fiber(&a, |acc, v| acc + v), Some(11));
        assert_eq!(reduce_fiber(&Fiber::new(3), |acc, v| acc + v), None);
    }

    #[test]
    fn reduce_is_coordinate_ordered_for_noncommutative_ops() {
        // Subtraction order matters: ((10 - 3) - 2) = 5.
        let a = Fiber::from_values(5, [(2, 3), (0, 10), (4, 2)]);
        assert_eq!(reduce_fiber(&a, |acc, v| acc - v), Some(5));
    }

    #[test]
    fn union_map_covers_either_side() {
        let a = Fiber::from_values(4, [(0, 1), (2, 5)]);
        let b = Fiber::from_values(4, [(2, 3), (3, 4)]);
        let z = map_fibers(&a, &b, CoordOp::Union, |x, y| {
            Some(x.unwrap_or(0) + y.unwrap_or(0))
        });
        assert_eq!(z.value_at(0), Some(1));
        assert_eq!(z.value_at(2), Some(8));
        assert_eq!(z.value_at(3), Some(4));
        assert_eq!(z.occupancy(), 3);
    }

    #[test]
    fn einsum_14_max2_populate() {
        // Figure 22: keep the two largest values of A, coordinates intact.
        let a = Fiber::from_values(4, [(0, 1), (1, 2), (2, 2), (3, 4)]);
        let b = populate_fiber(&a, max2);
        assert_eq!(b.occupancy(), 2);
        assert_eq!(b.value_at(3), Some(4));
        assert_eq!(b.value_at(1), Some(2)); // tie broken toward lower coord
        assert_eq!(b.value_at(2), None);
    }

    #[test]
    fn prefix_sum_matches_algorithm_1() {
        let a = Fiber::from_values(5, [(0, 5), (2, 1), (3, 2)]);
        let s = iterate(0, 5, |state, i| state + a.value_at(i).unwrap_or(0));
        // S = [0, 5, 5, 6, 8, 8]; zeros empty.
        assert_eq!(s.value_at(0), None);
        assert_eq!(s.value_at(1), Some(5));
        assert_eq!(s.value_at(2), Some(5));
        assert_eq!(s.value_at(3), Some(6));
        assert_eq!(s.value_at(5), Some(8));
    }

    #[test]
    #[should_panic(expected = "custom coordinate operator")]
    fn custom_coord_needs_populate() {
        let a = Fiber::new(1);
        map_fibers(&a, &a, CoordOp::Custom("max2"), |x, _| x);
    }
}
