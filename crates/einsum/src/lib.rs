//! # rteaal-einsum
//!
//! Extended (EDGE) Einsums and the RTeAAL Sim cascade golden model.
//!
//! - [`notation`]: the EDGE notation layer (paper §2.3–2.4) — map/reduce/
//!   populate actions with compute and coordinate operators, Einsums,
//!   cascades, and a renderer that reproduces the paper's formulas
//!   (including [`notation::rteaal_cascade`], Cascade 1 itself).
//! - [`eval`]: executable action semantics over fibers, with the paper's
//!   worked examples (Figure 3 dot product, take-left/right, prefix sum,
//!   the `max2` populate operator of Appendix A) as tests.
//! - [`cascade`]: [`cascade::CascadeSim`], a golden model that simulates a
//!   design by *traversing the OIM fibertree* per Cascade 1 — a second,
//!   independent implementation of RTL-simulation-as-tensor-algebra that
//!   the optimized kernels are differentially tested against.
//! - [`repcut`]: the RepCut cascade of Appendix C (Cascade 2) as an
//!   executable partitioned simulator with replication and `RUM`-driven
//!   synchronization.
//!
//! ## Example
//!
//! ```
//! use rteaal_einsum::eval::dot_product;
//! use rteaal_tensor::fibertree::Fiber;
//!
//! // Paper Figure 3: map ×(∩), reduce +(∪).
//! let a = Fiber::from_values(3, [(0, 2), (1, 4)]);
//! let b = Fiber::from_values(3, [(0, 3), (1, 2), (2, 7)]);
//! assert_eq!(dot_product(&a, &b), 14);
//! ```

pub mod cascade;
pub mod eval;
pub mod notation;
pub mod repcut;

pub use cascade::CascadeSim;
pub use notation::{Action, Cascade, ComputeOp, CoordOp, Einsum, TensorRef};
pub use repcut::RepCutSim;
