//! Extended General Einsum (EDGE) notation (paper §2.3–2.4, [Odemuyiwa
//! et al. 2024]).
//!
//! EDGE separates a computation into three *actions* — map (∧), reduce
//! (∨), and populate (≪) — each paired with a *compute operator* (what is
//! done to values) and a *coordinate operator* (where in the iteration
//! space it happens). This module is the declarative side: it names the
//! operators, assembles [`Einsum`]s and [`Cascade`]s, and renders them in
//! the paper's notation. Execution lives in [`crate::eval`].

use std::fmt;

/// Coordinate operators: which region of the iteration space an action
/// covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoordOp {
    /// `∩` — points where *both* inputs are non-empty.
    Intersect,
    /// `∪` — points where *either* input is non-empty.
    Union,
    /// `←` — points where the *left* input is non-empty.
    TakeLeft,
    /// `→` — points where the *right* input is non-empty.
    TakeRight,
    /// `1` — all points (pass-through).
    PassThrough,
    /// A named custom operator (e.g. the `max2` populate operator of
    /// Appendix A, or `op_s[n]`).
    Custom(&'static str),
}

impl fmt::Display for CoordOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordOp::Intersect => f.write_str("∩"),
            CoordOp::Union => f.write_str("∪"),
            CoordOp::TakeLeft => f.write_str("←"),
            CoordOp::TakeRight => f.write_str("→"),
            CoordOp::PassThrough => f.write_str("1"),
            CoordOp::Custom(name) => f.write_str(name),
        }
    }
}

/// Compute operators: what happens to the data values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputeOp {
    /// `×`
    Mul,
    /// `+`
    Add,
    /// `←` — copy the left operand.
    TakeLeft,
    /// `→` — copy the right operand.
    TakeRight,
    /// `1` — pass-through (no computation).
    PassThrough,
    /// `ANY` — any non-empty contributor (used by the `LI_{i+1}` Einsum of
    /// Cascade 1; all contributors are known disjoint).
    Any,
    /// A named custom operator (`op_r[n]`, `op_u[n]`, …).
    Custom(&'static str),
}

impl fmt::Display for ComputeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComputeOp::Mul => f.write_str("×"),
            ComputeOp::Add => f.write_str("+"),
            ComputeOp::TakeLeft => f.write_str("←"),
            ComputeOp::TakeRight => f.write_str("→"),
            ComputeOp::PassThrough => f.write_str("1"),
            ComputeOp::Any => f.write_str("ANY"),
            ComputeOp::Custom(name) => f.write_str(name),
        }
    }
}

/// One action: a compute operator paired with a coordinate operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Action {
    /// Which of map/reduce/populate this is.
    pub kind: ActionKind,
    /// The compute operator.
    pub compute: ComputeOp,
    /// The coordinate operator.
    pub coord: CoordOp,
}

/// The three EDGE action kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionKind {
    /// `∧` — combines operands from the input tensors.
    Map,
    /// `∨` — aggregates map temporaries.
    Reduce,
    /// `≪` — writes reduce temporaries to the output.
    Populate,
}

impl Action {
    /// A map action.
    pub fn map(compute: ComputeOp, coord: CoordOp) -> Self {
        Action {
            kind: ActionKind::Map,
            compute,
            coord,
        }
    }

    /// A reduce action.
    pub fn reduce(compute: ComputeOp, coord: CoordOp) -> Self {
        Action {
            kind: ActionKind::Reduce,
            compute,
            coord,
        }
    }

    /// A populate action.
    pub fn populate(compute: ComputeOp, coord: CoordOp) -> Self {
        Action {
            kind: ActionKind::Populate,
            compute,
            coord,
        }
    }

    /// Whether both operators are pass-through (omitted from notation).
    pub fn is_trivial(&self) -> bool {
        self.compute == ComputeOp::PassThrough && self.coord == CoordOp::PassThrough
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sigil = match self.kind {
            ActionKind::Map => "∧",
            ActionKind::Reduce => "∨",
            ActionKind::Populate => "≪",
        };
        write!(f, "{sigil}{}({})", self.compute, self.coord)
    }
}

/// A subscripted tensor reference, e.g. `A_{k,m}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorRef {
    /// Tensor name.
    pub name: String,
    /// Rank-variable subscripts (lowercase index letters; `o*` style
    /// starred variables mark populate-coordinate fiber outputs,
    /// Appendix A).
    pub subscripts: Vec<String>,
}

impl TensorRef {
    /// Creates a reference, e.g. `TensorRef::new("A", ["k", "m"])`.
    pub fn new(name: impl Into<String>, subs: impl IntoIterator<Item = impl Into<String>>) -> Self {
        TensorRef {
            name: name.into(),
            subscripts: subs.into_iter().map(Into::into).collect(),
        }
    }
}

impl fmt::Display for TensorRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.subscripts.is_empty() {
            f.write_str(&self.name)
        } else {
            write!(f, "{}_{{{}}}", self.name, self.subscripts.join(","))
        }
    }
}

/// One extended Einsum: output = inputs :: actions.
#[derive(Debug, Clone, PartialEq)]
pub struct Einsum {
    /// Left-hand side.
    pub output: TensorRef,
    /// Right-hand side operands.
    pub inputs: Vec<TensorRef>,
    /// Non-trivial actions, in map → reduce → populate order.
    pub actions: Vec<Action>,
    /// Optional side condition (e.g. `n ∉ n_sel`).
    pub condition: Option<String>,
}

impl Einsum {
    /// Creates an Einsum.
    pub fn new(
        output: TensorRef,
        inputs: impl IntoIterator<Item = TensorRef>,
        actions: impl IntoIterator<Item = Action>,
    ) -> Self {
        Einsum {
            output,
            inputs: inputs.into_iter().collect(),
            actions: actions.into_iter().filter(|a| !a.is_trivial()).collect(),
            condition: None,
        }
    }

    /// Attaches a side condition.
    pub fn with_condition(mut self, cond: impl Into<String>) -> Self {
        self.condition = Some(cond.into());
        self
    }
}

impl fmt::Display for Einsum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = ", self.output)?;
        for (i, input) in self.inputs.iter().enumerate() {
            if i > 0 {
                write!(f, " · ")?;
            }
            write!(f, "{input}")?;
        }
        if !self.actions.is_empty() {
            write!(f, " ::")?;
            for a in &self.actions {
                write!(f, " {a}")?;
            }
        }
        if let Some(cond) = &self.condition {
            write!(f, ", {cond}")?;
        }
        Ok(())
    }
}

/// A cascade: a sequence of dependent Einsums, optionally closed over an
/// iterative rank (`⋄: i ≡ I`).
#[derive(Debug, Clone, PartialEq)]
pub struct Cascade {
    /// Cascade name (for display).
    pub name: String,
    /// The Einsums, in dependency order.
    pub einsums: Vec<Einsum>,
    /// Iterative rank closed over, if any (paper §2.4 "Iterative Ranks").
    pub iterative_rank: Option<String>,
}

impl fmt::Display for Cascade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Cascade {}:", self.name)?;
        for e in &self.einsums {
            writeln!(f, "  {e}")?;
        }
        if let Some(rank) = &self.iterative_rank {
            writeln!(f, "  ⋄: {} ≡ {}", rank.to_lowercase(), rank)?;
        }
        Ok(())
    }
}

/// The RTeAAL Sim Einsum cascade (paper Cascade 1), as notation.
pub fn rteaal_cascade() -> Cascade {
    use ComputeOp as C;
    use CoordOp as K;
    let oi = Einsum::new(
        TensorRef::new("OI", ["i", "n", "o", "r", "s"]),
        [
            TensorRef::new("LI", ["i", "r"]),
            TensorRef::new("OIM", ["i", "n", "o", "r", "s"]),
        ],
        [Action::map(C::TakeLeft, K::TakeRight)],
    );
    let lo = Einsum::new(
        TensorRef::new("LO", ["i", "n", "s"]),
        [TensorRef::new("OI", ["i", "n", "o", "r", "s"])],
        [
            Action::map(C::Custom("op_u[n]"), K::TakeLeft),
            Action::reduce(C::Custom("op_r[n]"), K::TakeRight),
        ],
    );
    let lo_sel = Einsum::new(
        TensorRef::new("LO_sel", ["i", "n", "o*", "r", "s"]),
        [TensorRef::new("OI", ["i", "n", "o", "r", "s"])],
        [
            Action::map(C::PassThrough, K::TakeLeft),
            Action::populate(C::PassThrough, K::Custom("op_s[n]")),
        ],
    );
    let li_next = Einsum::new(
        TensorRef::new("LI", ["i+1", "s"]),
        [TensorRef::new("LO", ["i", "n", "s"])],
        [
            Action::map(C::PassThrough, K::TakeLeft),
            Action::reduce(C::Any, K::TakeRight),
        ],
    )
    .with_condition("n ∉ n_sel");
    let li_next_sel = Einsum::new(
        TensorRef::new("LI", ["i+1", "s"]),
        [TensorRef::new("LO_sel", ["i", "n", "o", "r", "s"])],
        [
            Action::map(C::PassThrough, K::TakeLeft),
            Action::reduce(C::Any, K::TakeRight),
        ],
    )
    .with_condition("n ∈ n_sel");
    Cascade {
        name: "RTeAAL Sim".into(),
        einsums: vec![oi, lo, lo_sel, li_next, li_next_sel],
        iterative_rank: Some("I".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product_notation_matches_figure_3() {
        // Z = A_m · B_m :: ∧×(∩) ∨+(∪)
        let e = Einsum::new(
            TensorRef::new("Z", Vec::<String>::new()),
            [TensorRef::new("A", ["m"]), TensorRef::new("B", ["m"])],
            [
                Action::map(ComputeOp::Mul, CoordOp::Intersect),
                Action::reduce(ComputeOp::Add, CoordOp::Union),
            ],
        );
        assert_eq!(e.to_string(), "Z = A_{m} · B_{m} :: ∧×(∩) ∨+(∪)");
    }

    #[test]
    fn take_left_right_notation_matches_einsum_2() {
        let e = Einsum::new(
            TensorRef::new("Z", ["m"]),
            [TensorRef::new("A", ["m"]), TensorRef::new("B", ["m"])],
            [Action::map(ComputeOp::TakeLeft, CoordOp::TakeRight)],
        );
        assert_eq!(e.to_string(), "Z_{m} = A_{m} · B_{m} :: ∧←(→)");
    }

    #[test]
    fn trivial_actions_are_omitted() {
        let e = Einsum::new(
            TensorRef::new("Z", ["m"]),
            [TensorRef::new("A", ["m"])],
            [
                Action::map(ComputeOp::PassThrough, CoordOp::TakeLeft),
                Action::populate(ComputeOp::PassThrough, CoordOp::PassThrough),
            ],
        );
        // The populate action is fully pass-through, so it disappears.
        assert_eq!(e.to_string(), "Z_{m} = A_{m} :: ∧1(←)");
    }

    #[test]
    fn rteaal_cascade_renders_all_five_einsums() {
        let c = rteaal_cascade();
        let text = c.to_string();
        assert_eq!(c.einsums.len(), 5);
        assert!(text.contains("op_u[n]"));
        assert!(text.contains("op_r[n]"));
        assert!(text.contains("op_s[n]"));
        assert!(text.contains("n ∉ n_sel"));
        assert!(text.contains("⋄: i ≡ I"));
        assert!(text.contains("LO_sel_{i,n,o*,r,s}"));
    }

    #[test]
    fn operator_symbols() {
        assert_eq!(CoordOp::Intersect.to_string(), "∩");
        assert_eq!(CoordOp::Union.to_string(), "∪");
        assert_eq!(ComputeOp::Any.to_string(), "ANY");
        assert_eq!(ComputeOp::Custom("max2").to_string(), "max2");
    }
}
