//! Executable golden model of the RTeAAL Sim cascade (paper Cascade 1).
//!
//! [`CascadeSim`] builds the `OIM` as a genuine 5-rank fibertree
//! (`I → S → N → O → R`) and simulates a cycle by *traversing fibers*,
//! exactly following the cascade:
//!
//! 1. `OI = LI_r · OIM_{n,o,r,s} :: ∧←(→)` — the map action selects
//!    operands from `LI` at the coordinates where `OIM` is non-empty.
//! 2. `LO_{n,s} = OI :: ∧op_u[n](←) ∨op_r[n](→)` — unary map compute,
//!    ordered reduce over the `O` rank.
//! 3. `LO_sel = OI :: ∧1(←) ≪1(op_s[n])` — select ops collect their whole
//!    `O` fiber and the populate coordinate operator picks.
//! 4. `LI_{i+1,s} = LO / LO_sel :: ∨ANY(→)` — layer outputs write back
//!    into `LI` (identity-elided: every signal keeps one slot).
//!
//! This is intentionally a *different implementation* of the same
//! semantics as the `rteaal-kernels` executors: the differential tests
//! between them are the main correctness argument for the kernel suite.

use rteaal_dfg::op::{canonicalize, eval_raw, DfgOp, OpClass};
use rteaal_dfg::SimPlan;
use rteaal_tensor::fibertree::{Payload, Tensor};
use std::collections::HashMap;

/// Per-op side data for the custom operators (`op_u[n]`/`op_r[n]`/
/// `op_s[n]` carry these inside their case bodies in the paper).
#[derive(Debug, Clone, Copy)]
struct OpSide {
    params: [u64; 2],
    width: u32,
    signed: bool,
}

/// The fibertree-traversal golden model.
#[derive(Debug, Clone)]
pub struct CascadeSim {
    /// The OIM as a 5-rank fibertree `[I, S, N, O, R]`.
    oim: Tensor,
    /// Operator side table keyed by `(layer, s)`.
    side: HashMap<(usize, usize), OpSide>,
    /// The `LI` tensor: slot -> value (empty = 0).
    li: Vec<u64>,
    input_slots: Vec<u32>,
    input_types: Vec<(u8, bool)>,
    output_slots: Vec<(String, u32)>,
    commits: Vec<(u32, u32)>,
    cycle: u64,
}

/// Builds the `OIM` fibertree of a plan (exposed for format experiments
/// and the Figure 13 example in the tests).
pub fn oim_fibertree(plan: &SimPlan) -> Tensor {
    let mut t = Tensor::new(
        "OIM",
        ["I", "S", "N", "O", "R"],
        &[
            plan.layers.len().max(1),
            plan.num_slots,
            rteaal_dfg::op::NUM_OPCODES,
            1,
            plan.num_slots,
        ],
    );
    for (i, layer) in plan.layers.iter().enumerate() {
        for op in layer {
            for (o, &r) in op.ins.iter().enumerate() {
                t.set(&[i, op.out as usize, op.n as usize, o, r as usize], 1);
            }
            if op.ins.is_empty() {
                // Zero-operand ops cannot occur in layers (consts are
                // materialized); keep the invariant visible.
                unreachable!("layer op without operands");
            }
        }
    }
    t
}

impl CascadeSim {
    /// Builds the golden model for a plan.
    pub fn new(plan: &SimPlan) -> Self {
        let mut side = HashMap::new();
        for (i, layer) in plan.layers.iter().enumerate() {
            for op in layer {
                let mut params = [0u64; 2];
                for (k, &p) in op.params.iter().take(2).enumerate() {
                    params[k] = p;
                }
                side.insert(
                    (i, op.out as usize),
                    OpSide {
                        params,
                        width: op.width as u32,
                        signed: op.signed,
                    },
                );
            }
        }
        CascadeSim {
            oim: oim_fibertree(plan),
            side,
            li: plan.init_values.clone(),
            input_slots: plan.input_slots.clone(),
            input_types: plan.input_types.clone(),
            output_slots: plan.output_slots.clone(),
            commits: plan.commits.clone(),
            cycle: 0,
        }
    }

    /// Drives input port `idx` (canonicalized to the port type).
    pub fn set_input(&mut self, idx: usize, value: u64) {
        let (w, signed) = self.input_types[idx];
        self.li[self.input_slots[idx] as usize] = canonicalize(value, w as u32, signed);
    }

    /// One clock cycle via cascade traversal.
    pub fn step(&mut self) {
        let num_layers = self.oim.root().shape();
        for i in 0..num_layers {
            let Some(s_fiber) = self.oim.root().fiber_at(i) else {
                continue;
            };
            // Collect LO for this layer, then populate LI (the slots are
            // unique, so in-place writes after collection are equivalent
            // to the LI_{i+1} Einsum).
            let mut lo: Vec<(usize, u64)> = Vec::with_capacity(s_fiber.occupancy());
            for (s, n_payload) in s_fiber.iter() {
                let n_fiber = match n_payload {
                    Payload::Fiber(f) => f,
                    Payload::Value(_) => unreachable!("N rank is not a leaf"),
                };
                // N fibers are one-hot: each operation has a single type.
                debug_assert_eq!(n_fiber.occupancy(), 1);
                let (n, o_payload) = n_fiber.iter().next().expect("one-hot N fiber");
                let o_fiber = o_payload.fiber().expect("O rank is not a leaf");
                let op = DfgOp::from_n_coord(n as u16).expect("valid opcode");
                let side = self.side[&(i, s)];

                // Einsum 10 (map ∧←(→)): gather OI values in O order.
                let mut oi: Vec<u64> = Vec::with_capacity(o_fiber.occupancy());
                for (_o, r_payload) in o_fiber.iter() {
                    let r_fiber = r_payload.fiber().expect("R rank holds mask leaves");
                    debug_assert_eq!(r_fiber.occupancy(), 1, "R fibers are one-hot");
                    let (r, _mask) = r_fiber.iter_values().next().expect("one-hot R fiber");
                    oi.push(self.li[r]);
                }

                let value = match op.class() {
                    // Einsum 12: ∧op_u[n](←) ∨op_r[n](→).
                    OpClass::Unary => {
                        debug_assert_eq!(oi.len(), 1);
                        eval_raw(op, &side.params[..op_param_count(op)], &oi)
                    }
                    OpClass::Reducible => {
                        // Ordered pairwise reduction over the O rank. All
                        // our reducible ops are binary, so this is a
                        // single op_r application; the fold form keeps the
                        // cascade shape visible.
                        let mut acc = oi[0];
                        for &v in &oi[1..] {
                            acc = eval_raw(op, &side.params[..op_param_count(op)], &[acc, v]);
                        }
                        acc
                    }
                    // Einsum 13: ≪1(op_s[n]) — collect all inputs, then
                    // select.
                    OpClass::Select => eval_raw(op, &[], &oi),
                    OpClass::Source => unreachable!("sources never appear in layers"),
                };
                lo.push((s, canonicalize(value, side.width, side.signed)));
            }
            // Einsum LI_{i+1}: populate the layer outputs back into LI.
            for (s, v) in lo {
                self.li[s] = v;
            }
        }
        // Register writeback (two-phase).
        let staged: Vec<u64> = self
            .commits
            .iter()
            .map(|&(_, src)| self.li[src as usize])
            .collect();
        for (&(dst, _), v) in self.commits.iter().zip(staged) {
            self.li[dst as usize] = v;
        }
        self.cycle += 1;
    }

    /// Output value by port index.
    pub fn output(&self, idx: usize) -> u64 {
        self.li[self.output_slots[idx].1 as usize]
    }

    /// Output value by name.
    pub fn output_by_name(&self, name: &str) -> Option<u64> {
        self.output_slots
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| self.li[*s as usize])
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The OIM fibertree (for inspection).
    pub fn oim(&self) -> &Tensor {
        &self.oim
    }
}

fn op_param_count(op: DfgOp) -> usize {
    use DfgOp::*;
    match op {
        Cat | Bits | Head => 2,
        Andr | Xorr | Shl | Shr => 1,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rteaal_dfg::interp::Interpreter;
    use rteaal_dfg::passes::{optimize, PassOptions};
    use rteaal_dfg::plan::plan;
    use rteaal_firrtl::{lower::lower_typed, parser::parse};

    fn plan_of(src: &str) -> (rteaal_dfg::Graph, SimPlan) {
        let g = rteaal_dfg::build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap();
        let p = plan(&g);
        (g, p)
    }

    #[test]
    fn oim_fibertree_is_one_hot_in_n_and_r() {
        let (_, p) = plan_of(
            "\
circuit T :
  module T :
    input a : UInt<8>
    input b : UInt<8>
    output o : UInt<8>
    o <= tail(add(a, b), 1)
",
        );
        let oim = oim_fibertree(&p);
        assert_eq!(oim.rank_names(), ["I", "S", "N", "O", "R"]);
        // Walk: every N fiber and every R fiber has occupancy 1.
        let i_fiber = oim.root();
        for (_, sp) in i_fiber.iter() {
            for (_, np) in sp.fiber().unwrap().iter() {
                let nf = np.fiber().unwrap();
                assert_eq!(nf.occupancy(), 1);
                for (_, op) in nf.iter() {
                    for (_, rp) in op.fiber().unwrap().iter() {
                        assert_eq!(rp.fiber().unwrap().occupancy(), 1);
                    }
                }
            }
        }
    }

    fn assert_cascade_matches_interpreter(src: &str, cycles: u64, seed: u64) {
        let (g, p) = plan_of(src);
        let mut golden = Interpreter::new(&g);
        let mut cascade = CascadeSim::new(&p);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..cycles {
            for i in 0..g.inputs.len() {
                let v: u64 = rng.gen();
                golden.set_input(i, v);
                cascade.set_input(i, v);
            }
            golden.step();
            cascade.step();
            for i in 0..g.outputs.len() {
                assert_eq!(golden.output(i), cascade.output(i), "output {i} diverged");
            }
        }
    }

    #[test]
    fn cascade_matches_interpreter_on_counter() {
        assert_cascade_matches_interpreter(
            "\
circuit C :
  module C :
    input clock : Clock
    input reset : UInt<1>
    output out : UInt<8>
    regreset r : UInt<8>, clock, reset, UInt<8>(0)
    r <= tail(add(r, UInt<8>(1)), 1)
    out <= r
",
            64,
            1,
        );
    }

    #[test]
    fn cascade_matches_interpreter_on_mixed_ops() {
        assert_cascade_matches_interpreter(
            "\
circuit M :
  module M :
    input clock : Clock
    input x : UInt<16>
    input y : SInt<8>
    input sel : UInt<1>
    output out : UInt<16>
    output so : SInt<8>
    reg acc : UInt<16>, clock
    node lhs = tail(add(acc, x), 1)
    node rhs = xor(acc, cat(bits(x, 7, 0), bits(x, 15, 8)))
    acc <= mux(sel, lhs, rhs)
    so <= asSInt(tail(sub(SInt<8>(0), y), 1))
    out <= acc
",
            128,
            2,
        );
    }

    #[test]
    fn cascade_matches_after_mux_chain_fusion() {
        let src = "\
circuit F :
  module F :
    input clock : Clock
    input c0 : UInt<1>
    input c1 : UInt<1>
    input c2 : UInt<1>
    input x : UInt<8>
    output out : UInt<8>
    reg r : UInt<8>, clock
    r <= mux(c0, x, mux(c1, not(x), mux(c2, tail(add(r, x), 1), r)))
    out <= r
";
        let g = rteaal_dfg::build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap();
        let (opt, stats) = optimize(&g, &PassOptions::default());
        assert!(stats.chains_fused >= 1);
        let p = plan(&opt);
        let mut golden = Interpreter::new(&g);
        let mut cascade = CascadeSim::new(&p);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..200 {
            for i in 0..g.inputs.len() {
                let v: u64 = rng.gen();
                golden.set_input(i, v);
                cascade.set_input(i, v);
            }
            golden.step();
            cascade.step();
            assert_eq!(golden.output(0), cascade.output(0));
        }
    }

    #[test]
    fn cascade_matches_on_memory_design() {
        assert_cascade_matches_interpreter(
            "\
circuit Mem :
  module Mem :
    input clock : Clock
    input ra : UInt<3>
    input wa : UInt<3>
    input wd : UInt<8>
    input we : UInt<1>
    output rd : UInt<8>
    mem m : UInt<8>[8]
    m.raddr <= ra
    m.waddr <= wa
    m.wdata <= wd
    m.wen <= we
    rd <= m.rdata
",
            200,
            4,
        );
    }
}
