//! Executable model of the RepCut simulation cascade (paper Appendix C,
//! Cascade 2).
//!
//! RepCut [Wang & Beamer 2023] partitions the dataflow graph into `C`
//! fully decoupled sectors by *replicating* the shared fan-in of each
//! sector (a data-level optimization in the extended TeAAL hierarchy,
//! Box 1). Every register is *updated* in exactly one partition; at the
//! end of each cycle the `RUM` (register update map) tensor propagates the
//! updated values to every partition that reads them — the extra
//! `LI_{c+1} = LI_{c,I} · RUM` Einsum that distinguishes Cascade 2 from
//! Cascade 1.
//!
//! [`RepCutSim`] implements exactly that: per-partition cones with
//! replication, per-partition `LI` copies, and a `RUM`-driven
//! synchronization step, with an optional threaded execution path
//! ("parallelize across partitions", Box 1 mapping level).

use rteaal_dfg::{OpInst, SimPlan};
use std::collections::HashSet;

/// One RepCut partition: the replicated cone needed to update its
/// registers (plus, for partition 0, the design outputs).
#[derive(Debug, Clone)]
struct Partition {
    /// Filtered layers (same layer structure as the source plan).
    layers: Vec<Vec<OpInst>>,
    /// This partition's private `LI` copy.
    li: Vec<u64>,
    /// Registers *owned* (updated) by this partition: `(slot, next slot)`.
    commits: Vec<(u32, u32)>,
}

/// An entry of the register update map: where a register is updated and
/// who reads it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RumEntry {
    /// The register's `LI` slot.
    pub slot: u32,
    /// Partition that updates it.
    pub owner: usize,
    /// Partitions that read it (differential exchange: only actual
    /// readers receive the value).
    pub readers: Vec<usize>,
}

/// Partitioned, replication-aided simulator (Cascade 2).
#[derive(Debug, Clone)]
pub struct RepCutSim {
    partitions: Vec<Partition>,
    rum: Vec<RumEntry>,
    input_slots: Vec<u32>,
    input_types: Vec<(u8, bool)>,
    output_slots: Vec<(String, u32)>,
    /// Total ops across partitions (>= the unpartitioned op count).
    replicated_ops: usize,
    /// Ops in the unpartitioned plan.
    base_ops: usize,
    cycle: u64,
}

impl RepCutSim {
    /// Partitions a plan into `num_partitions` sectors by round-robin
    /// register assignment, replicating each sector's full fan-in cone.
    ///
    /// # Panics
    ///
    /// Panics if `num_partitions` is zero.
    pub fn new(plan: &SimPlan, num_partitions: usize) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        // Producer map: slot -> (layer, index within layer).
        let mut producer: Vec<Option<(usize, usize)>> = vec![None; plan.num_slots];
        for (i, layer) in plan.layers.iter().enumerate() {
            for (k, op) in layer.iter().enumerate() {
                producer[op.out as usize] = Some((i, k));
            }
        }
        // Round-robin register ownership.
        let mut roots: Vec<Vec<u32>> = vec![Vec::new(); num_partitions]; // next slots
        let mut commits: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_partitions];
        for (r, &(dst, src)) in plan.commits.iter().enumerate() {
            let p = r % num_partitions;
            roots[p].push(src);
            commits[p].push((dst, src));
        }
        // Outputs belong to partition 0.
        for (_, s) in &plan.output_slots {
            roots[0].push(*s);
        }
        // Backward closure per partition.
        let mut partitions = Vec::with_capacity(num_partitions);
        let mut read_regs: Vec<HashSet<u32>> = vec![HashSet::new(); num_partitions];
        let reg_slots: HashSet<u32> = plan.commits.iter().map(|&(dst, _)| dst).collect();
        let mut replicated_ops = 0;
        for p in 0..num_partitions {
            let mut included: HashSet<(usize, usize)> = HashSet::new();
            let mut work: Vec<u32> = roots[p].clone();
            let mut seen: HashSet<u32> = HashSet::new();
            while let Some(slot) = work.pop() {
                if !seen.insert(slot) {
                    continue;
                }
                if reg_slots.contains(&slot) {
                    read_regs[p].insert(slot);
                }
                if let Some(loc) = producer[slot as usize] {
                    if included.insert(loc) {
                        let op = &plan.layers[loc.0][loc.1];
                        work.extend(op.ins.iter().copied());
                    }
                }
            }
            let layers: Vec<Vec<OpInst>> = plan
                .layers
                .iter()
                .enumerate()
                .map(|(i, layer)| {
                    layer
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| included.contains(&(i, *k)))
                        .map(|(_, op)| op.clone())
                        .collect()
                })
                .collect();
            replicated_ops += included.len();
            partitions.push(Partition {
                layers,
                li: plan.init_values.clone(),
                commits: commits[p].clone(),
            });
        }
        // RUM: for each register, its owner and actual readers.
        let mut rum = Vec::with_capacity(plan.commits.len());
        for (r, &(dst, _)) in plan.commits.iter().enumerate() {
            let owner = r % num_partitions;
            let readers: Vec<usize> = (0..num_partitions)
                .filter(|&q| q != owner && read_regs[q].contains(&dst))
                .collect();
            rum.push(RumEntry {
                slot: dst,
                owner,
                readers,
            });
        }
        RepCutSim {
            partitions,
            rum,
            input_slots: plan.input_slots.clone(),
            input_types: plan.input_types.clone(),
            output_slots: plan.output_slots.clone(),
            replicated_ops,
            base_ops: plan.total_ops(),
            cycle: 0,
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Replication overhead: total replicated ops over the unpartitioned
    /// op count (1.0 = no replication).
    pub fn replication_factor(&self) -> f64 {
        if self.base_ops == 0 {
            1.0
        } else {
            self.replicated_ops as f64 / self.base_ops as f64
        }
    }

    /// Drives an input (canonicalized, replicated into every partition).
    pub fn set_input(&mut self, idx: usize, value: u64) {
        let (w, signed) = self.input_types[idx];
        let value = rteaal_dfg::op::canonicalize(value, w as u32, signed);
        let slot = self.input_slots[idx] as usize;
        for p in &mut self.partitions {
            p.li[slot] = value;
        }
    }

    /// One cycle, partitions evaluated sequentially.
    pub fn step(&mut self) {
        for p in &mut self.partitions {
            Self::eval_partition(p);
        }
        self.synchronize();
        self.cycle += 1;
    }

    /// One cycle, partitions evaluated on scoped threads (the Box 1
    /// "parallelize across partitions" mapping optimization).
    pub fn step_parallel(&mut self) {
        std::thread::scope(|scope| {
            for p in &mut self.partitions {
                scope.spawn(|| Self::eval_partition(p));
            }
        });
        self.synchronize();
        self.cycle += 1;
    }

    fn eval_partition(p: &mut Partition) {
        let mut buf = Vec::with_capacity(8);
        for layer in &p.layers {
            for op in layer {
                op.eval_into(&mut p.li, &mut buf);
            }
        }
        // Commit owned registers (two-phase within the partition).
        let staged: Vec<u64> = p
            .commits
            .iter()
            .map(|&(_, src)| p.li[src as usize])
            .collect();
        for (&(dst, _), v) in p.commits.iter().zip(staged) {
            p.li[dst as usize] = v;
        }
    }

    /// The synchronization step: the final Einsum of Cascade 2
    /// (`LI_{c+1} = LI_{c,I} · RUM :: ∧←(→)`).
    fn synchronize(&mut self) {
        for entry in &self.rum {
            let value = self.partitions[entry.owner].li[entry.slot as usize];
            for &q in &entry.readers {
                self.partitions[q].li[entry.slot as usize] = value;
            }
        }
    }

    /// Output value by port index (outputs live in partition 0).
    pub fn output(&self, idx: usize) -> u64 {
        self.partitions[0].li[self.output_slots[idx].1 as usize]
    }

    /// The register update map.
    pub fn rum(&self) -> &[RumEntry] {
        &self.rum
    }

    /// Cycles simulated.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rteaal_dfg::interp::Interpreter;
    use rteaal_dfg::plan::plan;
    use rteaal_firrtl::{lower::lower_typed, parser::parse};

    const CROSS: &str = "\
circuit X :
  module X :
    input clock : Clock
    input a : UInt<8>
    input b : UInt<8>
    output o1 : UInt<8>
    output o2 : UInt<8>
    reg r1 : UInt<8>, clock
    reg r2 : UInt<8>, clock
    reg r3 : UInt<8>, clock
    reg r4 : UInt<8>, clock
    node s = tail(add(r1, r2), 1)
    node d = tail(sub(r3, r4), 1)
    r1 <= tail(add(s, a), 1)
    r2 <= xor(d, b)
    r3 <= and(s, d)
    r4 <= or(r1, r2)
    o1 <= s
    o2 <= d
";

    fn setup(n: usize) -> (rteaal_dfg::Graph, RepCutSim) {
        let g = rteaal_dfg::build(&lower_typed(&parse(CROSS).unwrap()).unwrap()).unwrap();
        let p = plan(&g);
        let rc = RepCutSim::new(&p, n);
        (g, rc)
    }

    fn check_equiv(n: usize, parallel: bool, cycles: u64) {
        let (g, mut rc) = setup(n);
        let mut golden = Interpreter::new(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64);
        for _ in 0..cycles {
            for i in 0..g.inputs.len() {
                let v: u64 = rng.gen();
                golden.set_input(i, v);
                rc.set_input(i, v);
            }
            golden.step();
            if parallel {
                rc.step_parallel();
            } else {
                rc.step();
            }
            for i in 0..g.outputs.len() {
                assert_eq!(golden.output(i), rc.output(i), "output {i} diverged");
            }
        }
    }

    #[test]
    fn single_partition_is_identity() {
        let (_, rc) = setup(1);
        assert!((rc.replication_factor() - 1.0).abs() < 1e-9);
        check_equiv(1, false, 100);
    }

    #[test]
    fn two_partitions_match_golden() {
        check_equiv(2, false, 200);
    }

    #[test]
    fn four_partitions_match_golden() {
        check_equiv(4, false, 200);
    }

    #[test]
    fn parallel_execution_matches() {
        check_equiv(3, true, 100);
    }

    #[test]
    fn replication_overhead_is_visible() {
        // With cross-coupled registers, partitioning must replicate shared
        // cones (RepCut's fundamental trade-off).
        let (_, rc) = setup(4);
        assert!(
            rc.replication_factor() > 1.0,
            "factor = {}",
            rc.replication_factor()
        );
    }

    #[test]
    fn rum_owners_cover_all_registers() {
        let (g, rc) = setup(3);
        assert_eq!(rc.rum().len(), g.regs.len());
        for (r, entry) in rc.rum().iter().enumerate() {
            assert_eq!(entry.owner, r % 3);
            assert!(!entry.readers.contains(&entry.owner));
        }
    }

    #[test]
    fn rum_readers_are_selective() {
        // Differential exchange: at least one register should *not* be
        // broadcast to every other partition.
        let (_, rc) = setup(4);
        assert!(rc.rum().iter().any(|e| e.readers.len() < 3));
    }
}
