//! # rteaal-sched
//!
//! Continuous-batching lane scheduler: the "simulation as a service"
//! core on top of [`rteaal_core::BatchSimulation`].
//!
//! A batched run's wall time is its slowest lane; on a corpus of
//! variable-length testbenches, lane-liveness early exit alone still
//! leaves freed lanes frozen while stragglers finish, so utilization
//! decays toward zero. This crate closes the loop the way
//! continuous-batching LLM servers do: a [`JobQueue`] of testbench jobs,
//! a [`Scheduler`] that packs jobs into lanes, and — the moment a lane's
//! halt probe fires — per-[`JobId`] harvesting of the finished job's
//! outputs followed by mid-run admission of the next queued job into the
//! freed lane (built on `BatchSimulation::{reset_lane, admit}`, the
//! per-lane power-on reset threaded through all three engine layers).
//!
//! Results are keyed by [`JobId`], never by lane: lanes are *slots* that
//! get recycled, and a recycled lane's completion records always refer
//! to its current occupant.
//!
//! ## Example
//!
//! ```
//! use rteaal_core::Compiler;
//! use rteaal_kernels::{KernelConfig, KernelKind};
//! use rteaal_sched::{Job, Scheduler};
//!
//! // A counter that raises `done` at a per-job limit.
//! let src = "\
//! circuit H :
//!   module H :
//!     input clock : Clock
//!     input limit : UInt<8>
//!     output cnt : UInt<8>
//!     output done : UInt<1>
//!     reg acc : UInt<8>, clock
//!     acc <= tail(add(acc, UInt<8>(1)), 1)
//!     cnt <= acc
//!     done <= geq(acc, limit)
//! ";
//! let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu)).compile_str(src)?;
//! // Six variable-length jobs over two lanes: lanes recycle mid-run.
//! let mut sched = Scheduler::new(&compiled, 2, "done")?;
//! for limit in [7u64, 25, 3, 9, 4, 11] {
//!     sched.submit(
//!         Job::new(format!("count-{limit}"), limit + 8)
//!             .with_input("limit", limit)
//!             .with_probe("cnt"),
//!     );
//! }
//! sched.run(10_000);
//! assert_eq!(sched.results().len(), 6);
//! for r in sched.results() {
//!     assert!(r.completed());
//!     assert_eq!(r.outputs[0].1, r.cycles); // cnt froze at its own halt
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! A job that fails validation (unknown input, state poke, or harvest
//! probe) becomes a [`JobOutcome::Rejected`] result instead of an error:
//! one poison job can never wedge the queue behind it. The `rteaal-serve`
//! crate puts this scheduler behind a thread pool and a socket front end.

pub mod job;
pub mod scheduler;

pub use job::{Job, JobId, JobOutcome, JobQueue, JobResult};
pub use scheduler::{AdmitPolicy, SchedBuildError, SchedStats, Scheduler};
