//! The continuous-batching lane scheduler.
//!
//! [`Scheduler`] turns a [`BatchSimulation`] into a continuously-fed
//! simulation service: jobs are submitted into a [`JobQueue`], packed
//! into lanes, and run under the engine's lane-liveness early exit; the
//! moment a lane's halt probe fires, the finished job's outputs and
//! completion cycle are harvested under its stable [`JobId`] and a
//! queued job is admitted into the freed lane *mid-run* — the engine
//! never waits on stragglers with idle capacity, exactly the
//! continuous-batching discipline LLM-serving systems use to keep
//! hardware saturated under variable-length requests.
//!
//! The static alternative ([`AdmitPolicy::StaticBatches`]) admits a full
//! batch, drains it completely (early exit still compacts finished lanes
//! out of the evaluated window), and only then admits the next batch —
//! the baseline whose utilization decays toward zero as the batch's
//! stragglers dominate. `tables -- sched` quantifies the gap on a
//! mixed-length rv32i corpus.

use crate::job::{Job, JobId, JobOutcome, JobQueue, JobResult};
use rteaal_core::{
    AnalysisReport, BatchSimulation, Compiled, Partitioning, Specialization, UnknownSignal,
};
use rteaal_telemetry::{Counter, Gauge, JobStage, MetricsRegistry};
use std::collections::HashMap;
use std::sync::Arc;

/// Why a scheduler could not be built (see
/// [`Scheduler::try_new_with`]).
#[derive(Debug)]
pub enum SchedBuildError {
    /// `halt_signal` names neither a probe nor an output port.
    UnknownSignal(UnknownSignal),
    /// The static verifier rejected the RepCut decomposition.
    Rejected(AnalysisReport),
}

impl std::fmt::Display for SchedBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedBuildError::UnknownSignal(e) => write!(f, "{e}"),
            SchedBuildError::Rejected(report) => {
                write!(f, "partitioned plan failed verification: {report}")
            }
        }
    }
}

impl std::error::Error for SchedBuildError {}

impl From<UnknownSignal> for SchedBuildError {
    fn from(e: UnknownSignal) -> Self {
        SchedBuildError::UnknownSignal(e)
    }
}

/// When freed lanes accept new jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitPolicy {
    /// Admit into any freed lane immediately, mid-run (continuous
    /// batching).
    Continuous,
    /// Admit only when *every* lane is free: classic static batching
    /// with early exit, the straggler-bound baseline.
    StaticBatches,
}

/// Aggregate counters of one scheduler run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Engine cycles stepped.
    pub cycles: u64,
    /// Sum over stepped cycles of occupied lanes — the useful work.
    pub busy_lane_cycles: u64,
    /// Per-partition busy-lane cycles: entry `p` counts the occupied
    /// lanes partition replica `p` evaluated, summed over stepped
    /// cycles. Empty until the first stepped cycle; a single entry on an
    /// unpartitioned engine.
    pub partition_busy_cycles: Vec<u64>,
    /// Jobs admitted into lanes.
    pub admitted: usize,
    /// Jobs whose halt condition fired within budget.
    pub completed: usize,
    /// Jobs forcibly retired at their budget.
    pub evicted: usize,
    /// Jobs rejected at validation, without ever occupying a lane.
    pub rejected: usize,
}

impl SchedStats {
    /// Folds another scheduler's counters into this one (the
    /// multi-worker aggregation the serve layer reports). Partition
    /// counters merge element-wise, widening to the longer vector.
    pub fn merge(&mut self, other: &SchedStats) {
        // Saturating throughout: counters merged across many long-lived
        // workers can approach `u64::MAX`, and a wrapped counter turns
        // every downstream ratio into garbage — a pegged one stays an
        // upper bound.
        self.cycles = self.cycles.saturating_add(other.cycles);
        self.busy_lane_cycles = self.busy_lane_cycles.saturating_add(other.busy_lane_cycles);
        if self.partition_busy_cycles.len() < other.partition_busy_cycles.len() {
            self.partition_busy_cycles
                .resize(other.partition_busy_cycles.len(), 0);
        }
        for (p, &c) in other.partition_busy_cycles.iter().enumerate() {
            self.partition_busy_cycles[p] = self.partition_busy_cycles[p].saturating_add(c);
        }
        self.admitted = self.admitted.saturating_add(other.admitted);
        self.completed = self.completed.saturating_add(other.completed);
        self.evicted = self.evicted.saturating_add(other.evicted);
        self.rejected = self.rejected.saturating_add(other.rejected);
    }

    /// Occupied-lane cycles over total lane cycles stepped across
    /// `lanes` lanes (1.0 = every lane busy every cycle; 0.0 before any
    /// step). The one utilization formula the scheduler, the serving
    /// pool, and the shard router's health reports all share.
    pub fn utilization_of(&self, lanes: usize) -> f64 {
        // `lanes == 0` or `cycles == 0` short-circuits to 0.0 (a pool
        // that stepped nothing did no useful work), and the saturating
        // product keeps near-`u64::MAX` merged counters from wrapping
        // into a bogus denominator — at worst the ratio is clamped, it
        // can never be NaN, infinite, or a division by zero.
        let total = self.cycles.saturating_mul(lanes as u64);
        if total == 0 {
            return 0.0;
        }
        (self.busy_lane_cycles as f64 / total as f64).min(1.0)
    }
}

/// A job currently occupying a lane.
#[derive(Debug)]
struct Running {
    id: JobId,
    job: Job,
    admitted_at: u64,
}

/// Interned telemetry handles: looked up once at attach time so the
/// scheduler's hot path pays one relaxed atomic op per update.
#[derive(Debug)]
struct SchedTelemetry {
    registry: Arc<MetricsRegistry>,
    /// Worker index stamped onto every event this scheduler records.
    worker: u64,
    /// `sched.queue_depth.w{worker}` — additive, shared by every design
    /// this worker serves.
    queue_depth: Arc<Gauge>,
    /// `sched.busy_cycles.{design}` — per-design useful work.
    busy_cycles: Arc<Counter>,
    admitted: Arc<Counter>,
    completed: Arc<Counter>,
    evicted: Arc<Counter>,
    rejected: Arc<Counter>,
}

/// A continuously-fed batched simulation of one compiled design.
///
/// Construction parks every lane (zero lanes evaluated); admission
/// revives lanes one by one, so a half-full scheduler only pays for the
/// lanes it actually occupies.
#[derive(Debug)]
pub struct Scheduler {
    sim: BatchSimulation,
    policy: AdmitPolicy,
    queue: JobQueue,
    running: Vec<Option<Running>>,
    results: Vec<JobResult>,
    stats: SchedStats,
    /// Lanes admitted since the last harvest-check (scratch, reused).
    newly_admitted: Vec<usize>,
    /// Optional metrics/event sink (see [`attach_telemetry`](Self::attach_telemetry)).
    telemetry: Option<SchedTelemetry>,
    /// External trace id per queued-or-running job, for event
    /// attribution across layers (the serve pool keys events by its
    /// pool-global id; standalone schedulers default to the local id).
    trace_ids: HashMap<u64, u64>,
}

impl Scheduler {
    /// Builds a `lanes`-wide scheduler over a compile result, watching
    /// `halt_signal` for per-lane completion.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSignal`] if `halt_signal` names neither a probe
    /// nor an output port.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(
        compiled: &Compiled,
        lanes: usize,
        halt_signal: &str,
    ) -> Result<Self, UnknownSignal> {
        Self::new_with(compiled, lanes, halt_signal, Partitioning::None)
    }

    /// Builds a scheduler over an explicitly partitioned engine: each
    /// cycle's ops are split across the RepCut partitions (pair with
    /// [`with_threads`](Self::with_threads) to actually spread them over
    /// workers). Scheduling behavior — admission, harvest, eviction,
    /// lane recycling — is bit-identical to the unpartitioned engine;
    /// [`SchedStats::partition_busy_cycles`] additionally tracks each
    /// partition's share of the work.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSignal`] if `halt_signal` names neither a probe
    /// nor an output port.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero, on `Partitioning::Fixed(0)`, or if the
    /// static verifier rejects the RepCut decomposition (see
    /// [`try_new_with`](Self::try_new_with) for the non-panicking form).
    pub fn new_with(
        compiled: &Compiled,
        lanes: usize,
        halt_signal: &str,
        partitioning: Partitioning,
    ) -> Result<Self, UnknownSignal> {
        match Self::try_new_with(compiled, lanes, halt_signal, partitioning) {
            Ok(sched) => Ok(sched),
            Err(SchedBuildError::UnknownSignal(e)) => Err(e),
            Err(SchedBuildError::Rejected(report)) => {
                panic!("partitioned plan failed verification: {report}")
            }
        }
    }

    /// Builds a partitioned scheduler with both failure modes surfaced
    /// as structured errors: an unresolvable halt signal *and* a RepCut
    /// decomposition the static verifier rejects.
    ///
    /// # Errors
    ///
    /// Returns [`SchedBuildError`] for either failure; nothing panics on
    /// malformed input past the zero-lane / zero-partition asserts.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero, or on `Partitioning::Fixed(0)`.
    pub fn try_new_with(
        compiled: &Compiled,
        lanes: usize,
        halt_signal: &str,
        partitioning: Partitioning,
    ) -> Result<Self, SchedBuildError> {
        Self::try_new_full(
            compiled,
            lanes,
            halt_signal,
            partitioning,
            Specialization::Off,
        )
    }

    /// The full-control constructor: RepCut decomposition *and* the
    /// whole-design specialization tier
    /// ([`rteaal_core::Specialization`]). With [`Specialization::Auto`]
    /// the engine executes the folded/deduplicated plan — as superblock
    /// bytecode with bit-packed lanes when unpartitioned — while every
    /// scheduling observable (halt detection, peeks, pokes, recycling)
    /// stays bit-identical to `Off`.
    ///
    /// # Errors
    ///
    /// As [`try_new_with`](Self::try_new_with).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero, or on `Partitioning::Fixed(0)`.
    pub fn try_new_full(
        compiled: &Compiled,
        lanes: usize,
        halt_signal: &str,
        partitioning: Partitioning,
        spec: Specialization,
    ) -> Result<Self, SchedBuildError> {
        let mut sim = BatchSimulation::try_new_full(compiled, lanes, partitioning, spec)
            .map_err(SchedBuildError::Rejected)?;
        sim.watch_halt(halt_signal)?;
        // Park every lane out of the evaluated window until a job claims
        // it (retired-at-cycle-0 records are cleared on admission).
        for lane in 0..lanes {
            sim.retire_lane(lane);
        }
        Ok(Scheduler {
            sim,
            policy: AdmitPolicy::Continuous,
            queue: JobQueue::new(),
            running: (0..lanes).map(|_| None).collect(),
            results: Vec::new(),
            stats: SchedStats::default(),
            newly_admitted: Vec::new(),
            telemetry: None,
            trace_ids: HashMap::new(),
        })
    }

    /// Connects this scheduler to a [`MetricsRegistry`]: lifecycle
    /// events (queued/admitted/halted) flow into the registry's event
    /// ring keyed by trace id, the queue-depth gauge
    /// (`sched.queue_depth.w{worker}`) tracks this worker's backlog, and
    /// admit/complete/evict/reject counters plus the per-design
    /// busy-cycle counter (`sched.busy_cycles.{design}`) mirror
    /// [`SchedStats`] live.
    pub fn attach_telemetry(
        &mut self,
        registry: Arc<MetricsRegistry>,
        worker: usize,
        design: &str,
    ) {
        self.telemetry = Some(SchedTelemetry {
            queue_depth: registry.gauge(&format!("sched.queue_depth.w{worker}")),
            busy_cycles: registry.counter(&format!("sched.busy_cycles.{design}")),
            admitted: registry.counter("sched.admitted"),
            completed: registry.counter("sched.completed"),
            evicted: registry.counter("sched.evicted"),
            rejected: registry.counter("sched.rejected"),
            worker: worker as u64,
            registry,
        });
    }

    /// Selects the admission policy (defaults to
    /// [`AdmitPolicy::Continuous`]).
    #[must_use]
    pub fn with_policy(mut self, policy: AdmitPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the engine's worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.sim = self.sim.with_threads(threads);
        self
    }

    /// Enqueues a job; it is admitted the next time a lane frees up
    /// under the active policy.
    pub fn submit(&mut self, job: Job) -> JobId {
        let id = self.queue.push(job);
        if let Some(t) = &self.telemetry {
            // Standalone schedulers trace under the local id; the serve
            // pool overrides this via `submit_traced`.
            self.trace_ids.insert(id.0, id.0);
            t.queue_depth.add(1);
            t.registry
                .record_event(id.0, JobStage::Queued, Some(t.worker), None, None);
        }
        id
    }

    /// Enqueues a job under an external trace id (the serve pool's
    /// global id), so its timeline events join the ones other layers
    /// record for the same job.
    pub fn submit_traced(&mut self, job: Job, trace: u64) -> JobId {
        let id = self.queue.push(job);
        if let Some(t) = &self.telemetry {
            self.trace_ids.insert(id.0, trace);
            t.queue_depth.add(1);
            t.registry
                .record_event(trace, JobStage::Queued, Some(t.worker), None, None);
        }
        id
    }

    /// Total jobs ever submitted to this scheduler.
    pub fn submitted(&self) -> u64 {
        self.queue.submitted()
    }

    /// Lane capacity.
    pub fn lanes(&self) -> usize {
        self.running.len()
    }

    /// Jobs waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently occupying lanes.
    pub fn running(&self) -> usize {
        self.running.iter().flatten().count()
    }

    /// Results harvested so far, in completion order.
    pub fn results(&self) -> &[JobResult] {
        &self.results
    }

    /// Drains the harvested results.
    pub fn take_results(&mut self) -> Vec<JobResult> {
        std::mem::take(&mut self.results)
    }

    /// Counters of the run so far.
    pub fn stats(&self) -> SchedStats {
        self.stats.clone()
    }

    /// Number of RepCut partitions the engine executes (1 =
    /// unpartitioned).
    pub fn partitions(&self) -> usize {
        self.sim.partitions()
    }

    /// Occupied-lane cycles over total lane cycles stepped (1.0 = every
    /// lane busy every cycle).
    pub fn utilization(&self) -> f64 {
        self.stats.utilization_of(self.lanes())
    }

    /// The underlying batched simulation (e.g. to enable per-lane
    /// waveform capture before running).
    pub fn sim_mut(&mut self) -> &mut BatchSimulation {
        &mut self.sim
    }

    /// Whether any job is still queued or occupying a lane (the serve
    /// layer's "keep driving me" signal).
    pub fn has_work(&self) -> bool {
        !self.queue.is_empty() || self.running() > 0
    }

    /// Runs until the queue is drained and every admitted job has
    /// finished, or `max_cycles` engine cycles have been stepped.
    /// Returns the number of cycles stepped by this call.
    ///
    /// A job that fails validation (unknown input, state poke, or
    /// harvest probe) is *rejected*: it is popped into a
    /// [`JobOutcome::Rejected`] result with the offending name in
    /// [`JobResult::error`], no lane is touched, and the scheduler keeps
    /// serving the jobs behind it — a poison job can never wedge the
    /// queue.
    pub fn run(&mut self, max_cycles: u64) -> u64 {
        self.run_for(max_cycles)
    }

    /// Steps at most `cycles` engine cycles, admitting and harvesting as
    /// it goes, and returns early the moment no lane is busy and no job
    /// is queued. Returns the number of cycles stepped.
    ///
    /// This is the non-blocking drive hook the serve layer uses: a
    /// worker calls `run_for` in small chunks, drains
    /// [`take_results`](Self::take_results) between chunks (results
    /// stream out the cycle each halt probe fires), and interleaves
    /// mid-run submissions — [`submit`](Self::submit) between chunks
    /// feeds lanes exactly like submissions made before the run.
    pub fn run_for(&mut self, cycles: u64) -> u64 {
        let busy0 = self.stats.busy_lane_cycles;
        let mut stepped = 0;
        loop {
            let admitted = self.admit_free();
            if admitted > 0 {
                // Harvest-check the admissions *before* stepping: a job
                // whose halt condition is combinationally true at
                // admission, or whose budget is zero, finishes at zero
                // local cycles instead of being charged a cycle it never
                // needed. Only the admitted lanes are probed — running
                // lanes' halts stay observed on the engine's post-step
                // schedule (the refreshed wires are one commit ahead of
                // what their last step reported).
                self.sim.eval_comb();
                let lanes = std::mem::take(&mut self.newly_admitted);
                for lane in &lanes {
                    self.sim.probe_halt_lane(*lane);
                }
                self.newly_admitted = lanes;
                self.newly_admitted.clear();
                self.harvest();
                // Instant completions may have freed lanes with jobs
                // still queued — admit again before deciding to step.
                if !self.queue.is_empty() {
                    continue;
                }
            }
            let busy = self.running() as u64;
            if busy == 0 || stepped >= cycles {
                break;
            }
            self.stats.busy_lane_cycles += busy;
            if self.stats.partition_busy_cycles.len() < self.sim.partitions() {
                self.stats
                    .partition_busy_cycles
                    .resize(self.sim.partitions(), 0);
            }
            for c in &mut self.stats.partition_busy_cycles {
                *c += busy;
            }
            self.sim.step();
            self.stats.cycles += 1;
            stepped += 1;
            self.harvest();
        }
        if let Some(t) = &self.telemetry {
            t.busy_cycles.add(self.stats.busy_lane_cycles - busy0);
        }
        self.debug_assert_accounting();
        stepped
    }

    /// Ledger identity: every job ever submitted is in exactly one
    /// place — still queued, occupying a lane, or finished under one of
    /// the three outcomes. Holds at every quiescent point, not just at
    /// shutdown; `run_for` checks it after every chunk in debug builds.
    pub fn accounting_balanced(&self) -> bool {
        self.queue.submitted() as usize
            == self.queue.len()
                + self.running()
                + self.stats.completed
                + self.stats.evicted
                + self.stats.rejected
    }

    fn debug_assert_accounting(&self) {
        debug_assert!(
            self.accounting_balanced(),
            "sched ledger broken: submitted {} != queued {} + running {} + \
             completed {} + evicted {} + rejected {}",
            self.queue.submitted(),
            self.queue.len(),
            self.running(),
            self.stats.completed,
            self.stats.evicted,
            self.stats.rejected,
        );
    }

    /// Fills freed lanes from the queue under the active policy,
    /// rejecting jobs that fail validation. Returns how many jobs were
    /// admitted into lanes.
    fn admit_free(&mut self) -> usize {
        let mut admitted = 0;
        if self.policy == AdmitPolicy::StaticBatches && self.running() > 0 {
            return admitted;
        }
        for lane in 0..self.running.len() {
            if self.running[lane].is_some() {
                continue;
            }
            // Validate every binding — inputs, state pokes, harvest
            // probes — before touching the engine: a bad name must never
            // leave a lane half-admitted to a dropped job. The offender
            // is popped into a rejected result (not left at the front,
            // where it would wedge every later job) and the freed slot
            // is offered to the job behind it.
            let (id, job) = loop {
                let Some((id, job)) = self.queue.front() else {
                    return admitted;
                };
                match Self::validate(&self.sim, job) {
                    Ok(()) => break self.queue.pop().expect("front() was Some"),
                    Err(UnknownSignal(name)) => {
                        let (_, job) = self.queue.pop().expect("front() was Some");
                        self.reject(id, job, &name);
                    }
                }
            };
            self.sim
                .admit(lane, job.inputs.iter().map(|(n, v)| (n.as_str(), *v)))
                .expect("inputs validated");
            for (name, value) in &job.state_pokes {
                self.sim
                    .poke_state(name, lane, *value)
                    .expect("pokes validated");
            }
            self.stats.admitted += 1;
            admitted += 1;
            if let Some(t) = &self.telemetry {
                t.queue_depth.sub(1);
                t.admitted.inc();
                let trace = self.trace_ids.get(&id.0).copied().unwrap_or(id.0);
                t.registry.record_event(
                    trace,
                    JobStage::Admitted,
                    Some(t.worker),
                    Some(lane as u64),
                    None,
                );
            }
            self.newly_admitted.push(lane);
            self.running[lane] = Some(Running {
                id,
                job,
                admitted_at: self.sim.cycle(),
            });
        }
        admitted
    }

    /// Records a validation failure as a per-job rejected result.
    fn reject(&mut self, id: JobId, job: Job, unknown: &str) {
        let now = self.sim.cycle();
        self.stats.rejected += 1;
        if let Some(t) = &self.telemetry {
            t.queue_depth.sub(1);
            t.rejected.inc();
            self.trace_ids.remove(&id.0);
        }
        self.results.push(JobResult {
            id,
            name: job.name,
            outputs: Vec::new(),
            outcome: JobOutcome::Rejected,
            error: Some(format!("unknown signal: {unknown}")),
            cycles: 0,
            admitted_at: now,
            finished_at: now,
            lane: usize::MAX,
        });
    }

    /// Checks that every name a job binds resolves on the design (pure
    /// lookups, no engine mutation).
    fn validate(sim: &BatchSimulation, job: &Job) -> Result<(), UnknownSignal> {
        for (name, _) in &job.inputs {
            if sim.input_index(name).is_none() {
                return Err(UnknownSignal(name.clone()));
            }
        }
        for (name, _) in &job.state_pokes {
            if !sim.probed(name) {
                return Err(UnknownSignal(name.clone()));
            }
        }
        for name in &job.probes {
            if sim.peek(name, 0).is_none() {
                return Err(UnknownSignal(name.clone()));
            }
        }
        Ok(())
    }

    /// Harvests halted and budget-exhausted lanes into results.
    fn harvest(&mut self) {
        let now = self.sim.cycle();
        for lane in 0..self.running.len() {
            let Some(running) = &self.running[lane] else {
                continue;
            };
            let halted = self.sim.halted(lane);
            if !halted && now - running.admitted_at < running.job.budget {
                continue;
            }
            // An evicted job finishes *now*, by definition — never at
            // whatever completion cycle the engine might report for the
            // lane. Reading the record before `retire_lane` (and pinning
            // the halted read to the occupant's own record) guarantees a
            // recycled lane's previous occupant can never leak its
            // completion cycle into this job's `finished_at`; see the
            // `eviction_uses_its_own_cycle_...` regression test.
            let finished_at = if halted {
                self.sim
                    .completion_cycle(lane)
                    .expect("halted implies a completion record")
            } else {
                self.sim.retire_lane(lane);
                now
            };
            let Running {
                id,
                job,
                admitted_at,
            } = self.running[lane].take().expect("checked above");
            let outputs = job
                .probes
                .iter()
                .map(|name| {
                    let value = self.sim.peek(name, lane).expect("validated at admission");
                    (name.clone(), value)
                })
                .collect();
            let outcome = if halted {
                self.stats.completed += 1;
                JobOutcome::Completed
            } else {
                self.stats.evicted += 1;
                JobOutcome::Evicted
            };
            if let Some(t) = &self.telemetry {
                if outcome == JobOutcome::Completed {
                    t.completed.inc();
                } else {
                    t.evicted.inc();
                }
                let trace = self.trace_ids.remove(&id.0).unwrap_or(id.0);
                t.registry.record_event(
                    trace,
                    JobStage::Halted,
                    Some(t.worker),
                    Some(lane as u64),
                    None,
                );
            }
            self.results.push(JobResult {
                id,
                name: job.name,
                outputs,
                outcome,
                error: None,
                cycles: finished_at - admitted_at,
                admitted_at,
                finished_at,
                lane,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rteaal_core::Compiler;
    use rteaal_kernels::{KernelConfig, KernelKind};

    /// A counter that raises `done` at a per-lane limit — the minimal
    /// variable-length job.
    const HALT_SRC: &str = "\
circuit H :
  module H :
    input clock : Clock
    input limit : UInt<8>
    output cnt : UInt<8>
    output done : UInt<1>
    reg acc : UInt<8>, clock
    acc <= tail(add(acc, UInt<8>(1)), 1)
    cnt <= acc
    done <= geq(acc, limit)
";

    fn compiled() -> Compiled {
        Compiler::new(KernelConfig::new(KernelKind::Psu))
            .compile_str(HALT_SRC)
            .unwrap()
    }

    fn count_job(limit: u64) -> Job {
        Job::new(format!("count-{limit}"), limit + 8)
            .with_input("limit", limit)
            .with_probe("cnt")
            .with_probe("done")
    }

    #[test]
    fn sched_stats_utilization_survives_every_edge() {
        // cycles == 0: no work stepped, utilization is exactly 0.0.
        let mut s = SchedStats::default();
        assert_eq!(s.utilization_of(8), 0.0);
        // lanes == 0: a lane-less pool did no useful work per lane;
        // 0.0, never a division by zero.
        s.cycles = 100;
        s.busy_lane_cycles = 500;
        assert_eq!(s.utilization_of(0), 0.0);
        assert!((s.utilization_of(8) - 500.0 / 800.0).abs() < 1e-12);

        // Near-MAX merged counters saturate instead of wrapping.
        let mut a = SchedStats {
            cycles: u64::MAX - 5,
            busy_lane_cycles: u64::MAX - 5,
            admitted: usize::MAX - 1,
            ..SchedStats::default()
        };
        let b = SchedStats {
            cycles: 100,
            busy_lane_cycles: 200,
            partition_busy_cycles: vec![u64::MAX, 7],
            admitted: 5,
            completed: 3,
            ..SchedStats::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, u64::MAX, "cycles pegged, not wrapped");
        assert_eq!(a.busy_lane_cycles, u64::MAX);
        assert_eq!(a.admitted, usize::MAX);
        assert_eq!(a.completed, 3);
        assert_eq!(
            a.partition_busy_cycles,
            vec![u64::MAX, 7],
            "widened element-wise"
        );
        // And the pegged counters can never produce NaN/inf/out-of-range
        // utilization, whatever the lane count.
        for lanes in [0usize, 1, 3, 64, usize::MAX] {
            let u = a.utilization_of(lanes);
            assert!(
                u.is_finite() && (0.0..=1.0).contains(&u),
                "lanes={lanes}: {u}"
            );
        }
    }

    #[test]
    fn specialized_scheduler_matches_plain_on_a_corpus() {
        let c = compiled();
        let limits = [5u64, 20, 3, 4, 9, 2, 11];
        let run = |spec: Specialization| {
            let mut sched =
                Scheduler::try_new_full(&c, 2, "done", Partitioning::None, spec).unwrap();
            let mut ids: Vec<JobId> = limits.iter().map(|&l| sched.submit(count_job(l))).collect();
            sched.run(10_000);
            ids.sort_unstable();
            let mut results = sched.results().to_vec();
            results.sort_by_key(|r| r.id);
            (ids, results)
        };
        let (ids_off, off) = run(Specialization::Off);
        let (ids_auto, auto) = run(Specialization::Auto);
        assert_eq!(ids_off, ids_auto);
        assert_eq!(off.len(), auto.len());
        for (a, b) in off.iter().zip(&auto) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.outputs, b.outputs, "job {}", a.name);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.outcome, b.outcome);
        }
    }

    #[test]
    fn continuous_scheduler_drains_a_queue_wider_than_the_lanes() {
        let c = compiled();
        let mut sched = Scheduler::new(&c, 2, "done").unwrap();
        let limits = [5u64, 20, 3, 4, 9, 2, 11];
        let ids: Vec<JobId> = limits.iter().map(|&l| sched.submit(count_job(l))).collect();
        assert_eq!(sched.pending(), limits.len());
        let stepped = sched.run(10_000);
        assert!(stepped > 0);
        assert_eq!(sched.pending(), 0);
        assert_eq!(sched.running(), 0);
        let stats = sched.stats();
        assert_eq!(stats.admitted, limits.len());
        assert_eq!(stats.completed, limits.len());
        assert_eq!(stats.evicted, 0);
        // Results are keyed by id: every job's count matches its own
        // limit regardless of lane reuse or completion order.
        assert_eq!(sched.results().len(), limits.len());
        for (&limit, &id) in limits.iter().zip(&ids) {
            let r = sched
                .results()
                .iter()
                .find(|r| r.id == id)
                .expect("result per id");
            assert!(r.completed());
            assert_eq!(r.name, format!("count-{limit}"));
            assert_eq!(r.outputs[0], ("cnt".to_string(), limit + 1));
            assert_eq!(r.outputs[1], ("done".to_string(), 1));
            assert_eq!(r.cycles, limit + 1, "local completion cycle");
            assert_eq!(r.finished_at - r.admitted_at, r.cycles);
        }
        // Lanes were genuinely recycled: 7 jobs on 2 lanes.
        assert!(sched.results().iter().all(|r| r.lane < 2));
        assert!(sched.utilization() > 0.8, "{}", sched.utilization());
    }

    #[test]
    fn continuous_beats_static_on_a_mixed_corpus() {
        let c = compiled();
        // One straggler per pair: static batches serialize on it.
        let limits = [30u64, 2, 3, 28, 2, 3, 32, 2];
        let run = |policy: AdmitPolicy| {
            let mut sched = Scheduler::new(&c, 4, "done").unwrap().with_policy(policy);
            for &l in &limits {
                sched.submit(count_job(l));
            }
            sched.run(100_000);
            let outs: Vec<(JobId, Vec<(String, u64)>)> = sched
                .results()
                .iter()
                .map(|r| (r.id, r.outputs.clone()))
                .collect();
            (sched.stats(), sched.utilization(), outs)
        };
        let (cont, cont_util, mut cont_outs) = run(AdmitPolicy::Continuous);
        let (stat, stat_util, mut stat_outs) = run(AdmitPolicy::StaticBatches);
        assert_eq!(cont.completed, limits.len());
        assert_eq!(stat.completed, limits.len());
        // Same per-job outputs under both policies...
        cont_outs.sort_by_key(|(id, _)| *id);
        stat_outs.sort_by_key(|(id, _)| *id);
        assert_eq!(cont_outs, stat_outs);
        // ...but continuous finishes in fewer engine cycles at higher
        // lane utilization.
        assert!(
            cont.cycles < stat.cycles,
            "continuous {} vs static {}",
            cont.cycles,
            stat.cycles
        );
        assert!(cont_util > stat_util, "{cont_util} vs {stat_util}");
    }

    #[test]
    fn budget_eviction_retires_runaway_jobs() {
        let c = compiled();
        let mut sched = Scheduler::new(&c, 2, "done").unwrap();
        // Limit 200 can't be reached by an 8-bit counter within budget
        // 10: evicted. The short job completes normally.
        sched.submit(
            Job::new("runaway", 10)
                .with_input("limit", 200)
                .with_probe("cnt"),
        );
        sched.submit(count_job(4));
        sched.run(1_000);
        let stats = sched.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.evicted, 1);
        let runaway = &sched.results()[sched
            .results()
            .iter()
            .position(|r| r.name == "runaway")
            .unwrap()];
        assert!(!runaway.completed());
        assert_eq!(runaway.outcome, JobOutcome::Evicted);
        assert_eq!(runaway.cycles, 10, "evicted exactly at budget");
        assert_eq!(runaway.outputs[0], ("cnt".to_string(), 10));
    }

    #[test]
    fn poison_job_is_rejected_and_later_jobs_keep_flowing() {
        // Regression: a validation-failing job at the queue front used
        // to return Err with the job left in place, so every later run()
        // failed identically and nothing behind it could ever be
        // admitted. It must instead become a Rejected result.
        let c = compiled();
        assert!(Scheduler::new(&c, 1, "ghost").is_err());
        for poison in [
            Job::new("bad-input", 10).with_input("nope", 1),
            Job::new("bad-poke", 10).with_state_poke("ghost", 1),
            // A misspelled harvest probe fails like every other binding
            // — it must never silently harvest a fabricated value.
            Job::new("bad-probe", 10).with_probe("cnt_typo"),
        ] {
            let mut sched = Scheduler::new(&c, 1, "done").unwrap();
            // Good jobs sandwich the poison one.
            let before = sched.submit(count_job(3));
            let bad = sched.submit(poison);
            let after = sched.submit(count_job(5));
            sched.run(10_000);
            assert_eq!(sched.pending(), 0);
            assert_eq!(sched.running(), 0);
            let stats = sched.stats();
            assert_eq!((stats.admitted, stats.completed, stats.rejected), (2, 2, 1));
            let by_id = |id: JobId| {
                sched
                    .results()
                    .iter()
                    .find(|r| r.id == id)
                    .expect("result per id")
            };
            let rejected = by_id(bad);
            assert_eq!(rejected.outcome, JobOutcome::Rejected);
            assert_eq!(rejected.cycles, 0);
            assert!(rejected.outputs.is_empty(), "never touched a lane");
            assert!(
                rejected
                    .error
                    .as_deref()
                    .unwrap()
                    .contains("unknown signal"),
                "{:?}",
                rejected.error
            );
            // Both good jobs ran to completion with correct results.
            for (id, limit) in [(before, 3u64), (after, 5)] {
                let r = by_id(id);
                assert!(r.completed(), "{}", r.name);
                assert_eq!(r.outputs[0], ("cnt".to_string(), limit + 1));
            }
        }
    }

    #[test]
    fn zero_budget_jobs_are_evicted_without_consuming_a_cycle() {
        // Regression: a budget-0 job used to burn one engine cycle
        // before its eviction was noticed, reporting cycles = 1.
        let c = compiled();
        let mut sched = Scheduler::new(&c, 2, "done").unwrap();
        let zero = sched.submit(
            Job::new("no-budget", 0)
                .with_input("limit", 50)
                .with_probe("cnt"),
        );
        let normal = sched.submit(count_job(4));
        sched.run(1_000);
        let r = sched.results().iter().find(|r| r.id == zero).unwrap();
        assert_eq!(r.outcome, JobOutcome::Evicted);
        assert_eq!(r.cycles, 0, "evicted before its first cycle");
        assert_eq!(r.finished_at, r.admitted_at);
        assert_eq!(r.outputs[0], ("cnt".to_string(), 0), "power-on state");
        let n = sched.results().iter().find(|r| r.id == normal).unwrap();
        assert!(n.completed());
        assert_eq!(n.cycles, 5);
    }

    #[test]
    fn combinationally_halted_jobs_complete_at_zero_cycles() {
        // Regression: a job whose halt probe is already high at
        // admission (limit = 0: done = geq(acc, 0) is true of the
        // power-on state) used to be harvested only after one engine
        // cycle, inflating cycles and busy_lane_cycles.
        let c = compiled();
        let mut sched = Scheduler::new(&c, 1, "done").unwrap();
        let instant = sched.submit(
            Job::new("instant", 10)
                .with_input("limit", 0)
                .with_probe("cnt")
                .with_probe("done"),
        );
        let normal = sched.submit(count_job(3));
        sched.run(1_000);
        let stats = sched.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.evicted, 0);
        let r = sched.results().iter().find(|r| r.id == instant).unwrap();
        assert_eq!(r.outcome, JobOutcome::Completed);
        assert_eq!(r.cycles, 0, "halted before its first cycle");
        assert_eq!(r.finished_at, r.admitted_at);
        assert_eq!(r.outputs[0], ("cnt".to_string(), 0));
        assert_eq!(r.outputs[1], ("done".to_string(), 1));
        // The lane freed instantly: the queued job was admitted the same
        // round and ran normally, with no cycle charged to the instant
        // job (1 busy lane * its own cycles only).
        let n = sched.results().iter().find(|r| r.id == normal).unwrap();
        assert!(n.completed());
        assert_eq!(n.cycles, 4);
        assert_eq!(stats.busy_lane_cycles, n.cycles);
    }

    #[test]
    fn eviction_uses_its_own_cycle_never_a_previous_occupants() {
        // Pins the recycled-lane eviction path: the first occupant of
        // the single lane halts early; the second is admitted into the
        // same lane and runs past its budget. Its finished_at must be
        // its own eviction cycle, never the previous occupant's halt
        // record.
        let c = compiled();
        let mut sched = Scheduler::new(&c, 1, "done").unwrap();
        let first = sched.submit(count_job(2));
        let runaway = sched.submit(
            Job::new("runaway", 7)
                .with_input("limit", 200)
                .with_probe("cnt"),
        );
        sched.run(1_000);
        let f = sched.results().iter().find(|r| r.id == first).unwrap();
        assert!(f.completed());
        let r = sched.results().iter().find(|r| r.id == runaway).unwrap();
        assert_eq!(r.outcome, JobOutcome::Evicted);
        assert_eq!(r.lane, f.lane, "same lane, recycled");
        assert!(r.admitted_at >= f.finished_at);
        assert_eq!(r.cycles, 7, "evicted exactly at its own budget");
        assert_eq!(
            r.finished_at,
            r.admitted_at + 7,
            "eviction cycle is the evicted job's own, not the previous occupant's"
        );
    }

    #[test]
    fn run_for_chunks_compose_with_mid_run_submission() {
        // The serve layer's drive pattern: small run_for chunks with
        // submissions and result drains interleaved.
        let c = compiled();
        let mut sched = Scheduler::new(&c, 2, "done").unwrap();
        sched.submit(count_job(6));
        sched.submit(count_job(9));
        assert!(sched.has_work());
        let mut harvested = Vec::new();
        let mut submitted_late = false;
        let mut guard = 0;
        while sched.has_work() {
            sched.run_for(3);
            harvested.extend(sched.take_results());
            if !submitted_late {
                // A job arriving mid-run is served like any other.
                sched.submit(count_job(4));
                submitted_late = true;
            }
            guard += 1;
            assert!(guard < 100, "chunked drive must make progress");
        }
        assert_eq!(harvested.len(), 3);
        assert!(harvested.iter().all(JobResult::completed));
        for limit in [6u64, 9, 4] {
            let r = harvested
                .iter()
                .find(|h| h.name == format!("count-{limit}"))
                .expect("one result per job");
            assert_eq!(r.cycles, limit + 1);
        }
    }

    #[test]
    fn partitioned_scheduler_is_bit_identical_and_tracks_partition_work() {
        // The same mixed corpus — completions, a budget eviction, lane
        // recycling — through a flat and a partitioned engine must
        // produce bit-identical results.
        let c = compiled();
        let jobs = || {
            vec![
                count_job(5),
                Job::new("runaway", 6)
                    .with_input("limit", 200)
                    .with_probe("cnt"),
                count_job(12),
                count_job(2),
                count_job(8),
            ]
        };
        let run = |partitioning: Partitioning| {
            let mut sched = Scheduler::new_with(&c, 2, "done", partitioning).unwrap();
            for job in jobs() {
                sched.submit(job);
            }
            sched.run(10_000);
            #[allow(clippy::type_complexity)]
            let mut outs: Vec<(JobId, JobOutcome, Vec<(String, u64)>, u64)> = sched
                .results()
                .iter()
                .map(|r| (r.id, r.outcome, r.outputs.clone(), r.cycles))
                .collect();
            outs.sort_by_key(|(id, ..)| *id);
            (sched.stats(), outs)
        };
        let (flat_stats, flat) = run(Partitioning::None);
        for parts in [2usize, 4] {
            let (stats, outs) = run(Partitioning::Fixed(parts));
            assert_eq!(outs, flat, "{parts} partitions");
            assert_eq!(stats.cycles, flat_stats.cycles);
            assert_eq!(stats.busy_lane_cycles, flat_stats.busy_lane_cycles);
            // Every partition replica stepped the same occupied lanes.
            assert_eq!(stats.partition_busy_cycles.len(), parts);
            for &p in &stats.partition_busy_cycles {
                assert_eq!(p, stats.busy_lane_cycles);
            }
        }
        assert_eq!(
            flat_stats.partition_busy_cycles,
            vec![flat_stats.busy_lane_cycles]
        );
    }

    #[test]
    fn admit_after_evict_on_partitioned_lanes_leaves_other_lanes_bit_identical() {
        // Regression guard for the partitioned state layout: recycling a
        // lane (evict + admit) must clear the column in *every* partition
        // replica and perturb no other lane. Witnessed by lock-stepping a
        // partitioned scheduler against a flat one through the recycle
        // and comparing every lane's probes cycle by cycle.
        let c = compiled();
        let mk = |partitioning| {
            let mut s = Scheduler::new_with(&c, 3, "done", partitioning).unwrap();
            // Three runaways fill the lanes; one short job waits.
            for _ in 0..3 {
                s.submit(
                    Job::new("long", 40)
                        .with_input("limit", 200)
                        .with_probe("cnt"),
                );
            }
            s
        };
        let mut flat = mk(Partitioning::None);
        let mut part = mk(Partitioning::Fixed(2));
        assert_eq!(part.partitions(), 2);
        flat.run_for(5);
        part.run_for(5);
        // Evict lane 1's occupant by hand, then admit a replacement.
        flat.sim_mut().retire_lane(1);
        part.sim_mut().retire_lane(1);
        flat.sim_mut().admit(1, [("limit", 9u64)]).unwrap();
        part.sim_mut().admit(1, [("limit", 9u64)]).unwrap();
        for cycle in 0..20u64 {
            for lane in 0..3 {
                assert_eq!(
                    part.sim_mut().peek("cnt", lane),
                    flat.sim_mut().peek("cnt", lane),
                    "cycle {cycle} lane {lane}"
                );
                assert_eq!(
                    part.sim_mut().peek("acc", lane),
                    flat.sim_mut().peek("acc", lane),
                    "cycle {cycle} lane {lane}"
                );
            }
            flat.sim_mut().step();
            part.sim_mut().step();
        }
    }

    #[test]
    fn empty_scheduler_is_a_no_op_and_partial_fills_stay_cheap() {
        let c = compiled();
        let mut sched = Scheduler::new(&c, 4, "done").unwrap();
        assert_eq!(sched.run(100), 0);
        assert_eq!(sched.stats(), SchedStats::default());
        assert_eq!(sched.lanes(), 4);
        assert!(!sched.has_work());
        // One job on four lanes: only the occupied lane is evaluated.
        sched.submit(count_job(5));
        sched.run(100);
        let stats = sched.stats();
        assert_eq!(stats.busy_lane_cycles, stats.cycles, "1 busy lane/cycle");
        assert!((sched.utilization() - 0.25).abs() < 1e-9);
        // take_results drains.
        assert_eq!(sched.take_results().len(), 1);
        assert!(sched.results().is_empty());
    }

    #[test]
    fn accounting_closes_at_every_snapshot() {
        // The ledger identity must hold mid-run — after every chunk, at
        // every queue depth — not just once the scheduler drains.
        let c = compiled();
        let mut sched = Scheduler::new(&c, 2, "done").unwrap();
        let registry = Arc::new(MetricsRegistry::new());
        sched.attach_telemetry(Arc::clone(&registry), 0, "count");
        for limit in [3u64, 9, 1, 14, 6, 2, 11, 5] {
            sched.submit(count_job(limit));
            assert!(sched.accounting_balanced(), "after submit {limit}");
        }
        // A poison job in the middle exercises the rejected leg.
        sched.submit(Job::new("poison", 8).with_input("nope", 1));
        // A zero-budget job exercises the evicted leg.
        sched.submit(Job::new("starved", 0).with_input("limit", 200));
        while sched.has_work() {
            sched.run_for(1);
            assert!(
                sched.accounting_balanced(),
                "mid-run: submitted {} queued {} running {} stats {:?}",
                sched.submitted(),
                sched.pending(),
                sched.running(),
                sched.stats(),
            );
        }
        let stats = sched.stats();
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.evicted, 1);
        // Telemetry counters mirror SchedStats exactly.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("sched.completed"), 8);
        assert_eq!(snap.counter("sched.rejected"), 1);
        assert_eq!(snap.counter("sched.evicted"), 1);
        assert_eq!(snap.counter("sched.admitted"), stats.admitted as u64);
        assert_eq!(
            snap.counter("sched.busy_cycles.count"),
            stats.busy_lane_cycles
        );
        assert_eq!(snap.gauge("sched.queue_depth.w0"), 0);
    }

    #[test]
    fn timelines_record_queued_admitted_halted_with_lane_attribution() {
        let c = compiled();
        let mut sched = Scheduler::new(&c, 2, "done").unwrap();
        let registry = Arc::new(MetricsRegistry::new());
        sched.attach_telemetry(Arc::clone(&registry), 3, "count");
        // Trace under external ids, as the serve pool does.
        sched.submit_traced(count_job(5), 100);
        sched.submit_traced(count_job(2), 101);
        sched.run(100);
        for trace in [100u64, 101] {
            let t = registry.timeline(trace);
            let stages: Vec<_> = t.iter().map(|e| e.stage).collect();
            use rteaal_telemetry::JobStage::*;
            assert_eq!(stages, vec![Queued, Admitted, Halted], "job {trace}");
            assert!(t.windows(2).all(|w| w[0].at_us <= w[1].at_us));
            assert!(t.iter().all(|e| e.worker == Some(3)));
            // Queued has no lane; admitted/halted agree on one.
            assert_eq!(t[0].lane, None);
            assert!(t[1].lane.is_some());
            assert_eq!(t[1].lane, t[2].lane);
        }
    }
}
