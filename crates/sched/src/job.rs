//! Jobs, stable job identities, per-job results, and the FIFO queue.
//!
//! A [`Job`] is one self-contained testbench for the scheduler's
//! compiled design: the input bindings to hold, the architectural state
//! pokes to apply after the per-lane power-on reset (the DMI path that
//! lets one circuit serve jobs of many lengths), the signals to harvest
//! at completion, and a cycle budget after which the job is evicted.
//! Results are keyed by [`JobId`], never by lane: lanes are recycled the
//! moment a job drains, so a physical lane index identifies a *slot*,
//! not a testbench.

use rteaal_designs::Workload;
use std::collections::VecDeque;

/// Stable identity of one submitted job, assigned by the queue in
/// submission order and decoupled from the physical lane the job
/// eventually runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// One testbench job for the scheduler's design.
#[derive(Debug, Clone)]
pub struct Job {
    /// Human-readable tag (carried into the result).
    pub name: String,
    /// Input-port bindings applied at admission and held until the job
    /// finishes (re-admissions re-apply them onto the power-on state).
    pub inputs: Vec<(String, u64)>,
    /// Architectural state pokes (DMI path) applied after the per-lane
    /// reset, before the first cycle — e.g. a loop bound pre-loaded into
    /// a register.
    pub state_pokes: Vec<(String, u64)>,
    /// Probed signals harvested into [`JobResult::outputs`] when the job
    /// halts (or is evicted).
    pub probes: Vec<String>,
    /// Maximum cycles the job may run after admission; past this it is
    /// forcibly retired with [`JobResult::completed`] = `false`.
    pub budget: u64,
}

impl Job {
    /// A job with no bindings yet (builder style).
    pub fn new(name: impl Into<String>, budget: u64) -> Self {
        Job {
            name: name.into(),
            inputs: Vec::new(),
            state_pokes: Vec::new(),
            probes: Vec::new(),
            budget,
        }
    }

    /// Adds a held input binding.
    #[must_use]
    pub fn with_input(mut self, name: impl Into<String>, value: u64) -> Self {
        self.inputs.push((name.into(), value));
        self
    }

    /// Adds an admission-time architectural state poke.
    #[must_use]
    pub fn with_state_poke(mut self, name: impl Into<String>, value: u64) -> Self {
        self.state_pokes.push((name.into(), value));
        self
    }

    /// Adds a signal to harvest at completion.
    #[must_use]
    pub fn with_probe(mut self, name: impl Into<String>) -> Self {
        self.probes.push(name.into());
        self
    }

    /// Builds a job from a halting [`Workload`]: the workload's state
    /// pokes become the admission pokes, its (scaled) cycle count the
    /// budget, and `probes` the harvested outputs. The caller compiles
    /// the workload's circuit once for the whole corpus — see
    /// [`Workload::corpus`].
    pub fn from_workload(w: &Workload, probes: &[&str]) -> Self {
        let mut job = Job::new(w.id.clone(), w.full_cycles);
        job.state_pokes = w.state_pokes.clone();
        job.probes = probes.iter().map(|p| (*p).to_string()).collect();
        job
    }
}

/// How one job left the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobOutcome {
    /// The halt condition fired within budget.
    Completed,
    /// The budget elapsed first; the lane was forcibly retired.
    Evicted,
    /// The job never reached a lane: a binding failed validation at
    /// admission (see [`JobResult::error`]). Rejection is a per-job
    /// verdict, not a scheduler failure — later jobs keep being served.
    Rejected,
}

/// What one job produced, harvested the cycle it finished — before its
/// lane is handed to the next job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The submission-order identity.
    pub id: JobId,
    /// The job's tag.
    pub name: String,
    /// Harvested `(signal, value)` pairs, in the job's probe order
    /// (empty for rejected jobs, which never touch a lane).
    pub outputs: Vec<(String, u64)>,
    /// How the job left the scheduler.
    pub outcome: JobOutcome,
    /// Why the job was rejected (`None` unless
    /// [`outcome`](Self::outcome) is [`JobOutcome::Rejected`]).
    pub error: Option<String>,
    /// Local cycles from admission to halt (or eviction); zero for
    /// rejected jobs and for jobs whose halt condition was already true
    /// at admission.
    pub cycles: u64,
    /// Global engine cycle at admission (at rejection, for rejected
    /// jobs).
    pub admitted_at: u64,
    /// Global engine cycle at halt/eviction/rejection.
    pub finished_at: u64,
    /// User-facing lane the job occupied (informational: lanes are
    /// recycled, so this does not identify the job; `usize::MAX` for
    /// rejected jobs).
    pub lane: usize,
}

impl JobResult {
    /// Whether the halt condition fired within budget.
    pub fn completed(&self) -> bool {
        self.outcome == JobOutcome::Completed
    }
}

/// FIFO of pending jobs with stable id assignment.
#[derive(Debug, Default)]
pub struct JobQueue {
    next: u64,
    pending: VecDeque<(JobId, Job)>,
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> Self {
        JobQueue::default()
    }

    /// Enqueues a job, assigning the next [`JobId`].
    pub fn push(&mut self, job: Job) -> JobId {
        let id = JobId(self.next);
        self.next += 1;
        self.pending.push_back((id, job));
        id
    }

    /// Dequeues the oldest pending job.
    pub fn pop(&mut self) -> Option<(JobId, Job)> {
        self.pending.pop_front()
    }

    /// The oldest pending job, without dequeuing it (so a scheduler can
    /// validate its bindings before committing a lane to it).
    pub fn front(&self) -> Option<(JobId, &Job)> {
        self.pending.front().map(|(id, job)| (*id, job))
    }

    /// Pending jobs.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no jobs are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total jobs ever submitted (the next id's index).
    pub fn submitted(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_assigns_fifo_ids() {
        let mut q = JobQueue::new();
        let a = q.push(Job::new("a", 10));
        let b = q.push(Job::new("b", 10));
        assert_eq!((a, b), (JobId(0), JobId(1)));
        assert_eq!(q.len(), 2);
        let (front_id, front_job) = q.front().unwrap();
        assert_eq!((front_id, front_job.name.as_str()), (JobId(0), "a"));
        let (id, job) = q.pop().unwrap();
        assert_eq!((id, job.name.as_str()), (JobId(0), "a"));
        assert_eq!(q.submitted(), 2);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.pop().is_none());
        // Ids keep advancing after a drain.
        assert_eq!(q.push(Job::new("c", 1)), JobId(2));
    }

    #[test]
    fn job_builder_and_workload_conversion() {
        let job = Job::new("j", 64)
            .with_input("reset", 0)
            .with_state_poke("x15", 7)
            .with_probe("a0");
        assert_eq!(job.inputs, vec![("reset".to_string(), 0)]);
        assert_eq!(job.state_pokes, vec![("x15".to_string(), 7)]);
        assert_eq!(job.probes, vec!["a0".to_string()]);
        assert_eq!(job.budget, 64);

        let w = Workload::rv32i_param_sum(5);
        let job = Job::from_workload(&w, &["a0", "pc_out"]);
        assert_eq!(job.name, "rv32i-k5");
        assert_eq!(job.budget, w.full_cycles);
        assert_eq!(job.state_pokes, vec![("x15".to_string(), 5)]);
        assert_eq!(job.probes.len(), 2);
        assert_eq!(format!("{}", JobId(3)), "job#3");
    }
}
