//! Property-based serving-equivalence proof for the specialization
//! tier: random rv32i corpora — mixed job lengths, DMI state pokes at
//! admission, halt-compaction and lane recycling in full swing — must
//! produce byte-identical results whether the engine runs the plan
//! as-compiled or specialized, at packing-eligible and -ineligible
//! lane counts, flat and RepCut-partitioned.

use proptest::prelude::*;
use rteaal_core::{Compiler, Partitioning, Specialization};
use rteaal_designs::Workload;
use rteaal_kernels::{KernelConfig, KernelKind};
use rteaal_sched::{Job, JobResult, Scheduler};

const PROBES: [&str; 3] = ["a0", "pc_out", "halt"];

proptest! {
    // rv32i compiles are expensive; a few random corpora over three
    // engine shapes already cover the interplay the tier must preserve.
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    #[test]
    fn specialization_is_invisible_to_a_scheduled_corpus(
        seed in any::<u64>(),
        jobs in 3usize..7,
    ) {
        let corpus = Workload::corpus(jobs, seed);
        let compiler = Compiler::new(KernelConfig::new(KernelKind::Psu));
        // One compile serves the whole corpus: the job length parameter
        // travels in the admission-time DMI poke, not in the ROM.
        let compiled = compiler.compile(&corpus[0].circuit).unwrap();

        let run = |lanes: usize, partitioning: Partitioning, spec: Specialization| {
            let mut sched =
                Scheduler::try_new_full(&compiled, lanes, "halt", partitioning, spec)
                    .expect("halt signal exists and the plan verifies");
            for w in &corpus {
                sched.submit(Job::from_workload(w, &PROBES));
            }
            sched.run(1_000_000);
            let mut results = sched.take_results();
            results.sort_by_key(|r| r.id);
            results
        };

        // Three engine shapes: fewer lanes than jobs (recycling and
        // halt compaction exercised), a packing-eligible lane count
        // (>= 32 turns on bit-packed 1-bit slots under Auto), and the
        // RepCut-partitioned walk of the specialized plan.
        let shapes: [(usize, Partitioning); 3] = [
            (2, Partitioning::None),
            (33, Partitioning::None),
            (2, Partitioning::Fixed(2)),
        ];
        for (lanes, partitioning) in shapes {
            let plain = run(lanes, partitioning, Specialization::Off);
            let spec = run(lanes, partitioning, Specialization::Auto);
            prop_assert_eq!(plain.len(), corpus.len());
            prop_assert_eq!(plain.len(), spec.len());
            for (p, s) in plain.iter().zip(&spec) {
                let ctx = |r: &JobResult| {
                    format!("{} lanes={} {:?}", r.name, lanes, partitioning)
                };
                prop_assert_eq!(p.id, s.id, "{}", ctx(p));
                prop_assert_eq!(&p.name, &s.name, "{}", ctx(p));
                prop_assert_eq!(p.outcome, s.outcome, "{}", ctx(p));
                prop_assert_eq!(&p.outputs, &s.outputs, "{}", ctx(p));
                prop_assert_eq!(p.cycles, s.cycles, "{}", ctx(p));
                prop_assert!(p.completed(), "{}", ctx(p));
            }
        }
    }
}
