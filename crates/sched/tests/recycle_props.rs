//! Property-based lane-isolation proof for the recycling primitive: a
//! `reset_lane` + `admit` on one lane, at an arbitrary cycle of a run
//! with arbitrary per-lane job lengths, must leave every *other* lane —
//! its state, its completion record, its frozen-at-halt values —
//! bit-identical to a run that was never disturbed. This is the safety
//! argument for mid-run admission: recycling is invisible outside the
//! recycled lane.

use proptest::prelude::*;
use rteaal_core::{BatchSimulation, Compiled, Compiler};
use rteaal_kernels::{KernelConfig, KernelKind};

/// A counter that raises `done` at a per-lane limit; `cnt`/`acc` give a
/// lane-distinct state trajectory.
const HALT_SRC: &str = "\
circuit H :
  module H :
    input clock : Clock
    input limit : UInt<8>
    output cnt : UInt<8>
    output done : UInt<1>
    reg acc : UInt<8>, clock
    acc <= tail(add(acc, UInt<8>(1)), 1)
    cnt <= acc
    done <= geq(acc, limit)
";

fn compiled(kind: KernelKind) -> Compiled {
    Compiler::new(KernelConfig::new(kind))
        .compile_str(HALT_SRC)
        .unwrap()
}

/// Every probed signal of every non-victim lane, plus its completion
/// record (`None` encoded as `u64::MAX`).
fn observe(sim: &BatchSimulation, lanes: usize, victim: usize) -> Vec<(usize, String, u64)> {
    let mut out = Vec::new();
    for lane in (0..lanes).filter(|&l| l != victim) {
        for name in sim.signals() {
            out.push((lane, name.to_string(), sim.peek(name, lane).unwrap()));
        }
        out.push((
            lane,
            "<completion>".to_string(),
            sim.completion_cycle(lane).unwrap_or(u64::MAX),
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn reset_and_admit_disturb_no_other_lane(
        lanes in 2usize..7,
        victim_seed in any::<u64>(),
        limits in prop::collection::vec(1u64..40, 2..7),
        disturb_at in 1u64..30,
        new_limit in 1u64..40,
        tail_cycles in 1u64..40,
        kind in prop::sample::select(vec![KernelKind::Psu, KernelKind::Nu, KernelKind::Ti]),
    ) {
        let lanes = lanes.min(limits.len());
        let victim = (victim_seed % lanes as u64) as usize;
        let c = compiled(kind);

        let drive = |sim: &mut BatchSimulation| {
            for lane in 0..lanes {
                sim.poke("limit", lane, limits[lane % limits.len()]).unwrap();
            }
            sim.watch_halt("done").unwrap();
        };

        // Reference: never disturbed.
        let mut reference = BatchSimulation::new(&c, lanes);
        drive(&mut reference);
        // Disturbed: same run, but the victim lane is recycled under a
        // new job at `disturb_at`.
        let mut disturbed = BatchSimulation::new(&c, lanes);
        drive(&mut disturbed);

        reference.step_cycles(disturb_at);
        disturbed.step_cycles(disturb_at);
        // Early exit may stop the clock before `disturb_at` if every
        // lane halts first; admission time is wherever the clock stands.
        let admitted_at = disturbed.cycle();
        disturbed.admit(victim, [("limit", new_limit)]).unwrap();
        prop_assert!(!disturbed.halted(victim), "stale completion leaked");
        prop_assert_eq!(disturbed.peek("cnt", victim), Some(0), "power-on state");

        // Observe every surviving lane after every subsequent cycle —
        // including the cycles where compaction order differs because
        // the victim (re)halts at a different time.
        for _ in 0..tail_cycles {
            // `step` directly: a fully-halted reference must stay
            // frozen even while the disturbed run keeps stepping the
            // revived victim.
            reference.step();
            disturbed.step();
            prop_assert_eq!(
                observe(&reference, lanes, victim),
                observe(&disturbed, lanes, victim)
            );
        }

        // And the recycled lane itself behaves exactly like a fresh
        // single-lane run of the new job.
        let mut fresh = BatchSimulation::new(&c, 1);
        fresh.poke("limit", 0, new_limit).unwrap();
        fresh.watch_halt("done").unwrap();
        fresh.step_cycles(tail_cycles);
        prop_assert_eq!(disturbed.peek("cnt", victim), fresh.peek("cnt", 0));
        prop_assert_eq!(
            disturbed.completion_cycle(victim).map(|c| c - admitted_at),
            fresh.completion_cycle(0)
        );
    }
}
