//! End-to-end serving correctness: a continuously-batched mixed-length
//! rv32i corpus must reproduce, job for job, exactly what dedicated
//! scalar [`Simulation`] runs of the same testbenches produce — same
//! architectural outputs, same per-job completion cycle — while
//! finishing the corpus in fewer engine cycles than static batching.

use rteaal_core::{Compiled, Compiler, DebugModule, Simulation};
use rteaal_designs::Workload;
use rteaal_kernels::{KernelConfig, KernelKind};
use rteaal_sched::{AdmitPolicy, Job, Scheduler};

const PROBES: [&str; 3] = ["a0", "pc_out", "halt"];

/// Scalar reference run of one corpus job: fresh simulation over the
/// shared compile, DMI pokes, step to halt. Returns (probe values at
/// halt, cycles to halt).
fn scalar_reference(compiled: &Compiled, w: &Workload) -> (Vec<(String, u64)>, u64) {
    let mut sim = Simulation::new(compiled.clone());
    {
        let mut dmi = DebugModule::new(&mut sim);
        for (name, value) in &w.state_pokes {
            dmi.poke_reg(name, *value).expect("poked register exists");
        }
    }
    let halt = w.halt_signal.expect("halting workload");
    for _ in 0..w.full_cycles {
        sim.step();
        if sim.peek(halt) == Some(1) {
            break;
        }
    }
    assert_eq!(sim.peek(halt), Some(1), "{} halts within budget", w.id);
    let outputs = PROBES
        .iter()
        .map(|p| ((*p).to_string(), sim.peek(p).expect("probed")))
        .collect();
    (outputs, sim.cycle())
}

#[test]
fn scheduled_corpus_reproduces_scalar_runs_exactly() {
    const JOBS: usize = 10;
    const LANES: usize = 3;
    let corpus = Workload::corpus(JOBS, 0x5c4ed);
    let compiler = Compiler::new(KernelConfig::new(KernelKind::Psu));
    // One compile serves the whole corpus: the job length parameter
    // travels in the admission-time state poke, not in the ROM.
    let compiled = compiler.compile(&corpus[0].circuit).unwrap();

    let run = |policy: AdmitPolicy| {
        let mut sched = Scheduler::new(&compiled, LANES, "halt")
            .unwrap()
            .with_policy(policy);
        for w in &corpus {
            let id = sched.submit(Job::from_workload(w, &PROBES));
            assert_eq!(id.0 as usize % JOBS, id.0 as usize, "fifo ids");
        }
        sched.run(1_000_000);
        assert_eq!(sched.stats().completed, JOBS, "all jobs complete");
        assert_eq!(sched.stats().evicted, 0);
        let mut results = sched.take_results();
        results.sort_by_key(|r| r.id);
        (results, sched.stats())
    };

    let (continuous, cont_stats) = run(AdmitPolicy::Continuous);
    let (statics, stat_stats) = run(AdmitPolicy::StaticBatches);

    for (i, w) in corpus.iter().enumerate() {
        let (scalar_outputs, scalar_cycles) = scalar_reference(&compiled, w);
        let k = w.state_pokes[0].1;
        for r in [&continuous[i], &statics[i]] {
            assert_eq!(r.name, w.id);
            assert!(r.completed(), "{} completed", w.id);
            assert_eq!(r.outputs, scalar_outputs, "{} outputs", w.id);
            assert_eq!(r.cycles, scalar_cycles, "{} completion cycle", w.id);
            // And the architectural result is the closed form.
            assert_eq!(r.outputs[0].1, Workload::param_sum_expected(k));
        }
    }

    // The serving claim: identical results, fewer engine cycles, higher
    // lane utilization.
    assert!(
        cont_stats.cycles < stat_stats.cycles,
        "continuous {} vs static {} cycles",
        cont_stats.cycles,
        stat_stats.cycles
    );
    assert!(cont_stats.busy_lane_cycles == stat_stats.busy_lane_cycles);
}

#[test]
fn per_lane_waveforms_capture_a_scheduled_lane() {
    // The batched-waveform satellite, driven through the scheduler: a
    // VCD of lane 0 across two recycled jobs contains the halts of both
    // occupants.
    let corpus = [Workload::rv32i_param_sum(2), Workload::rv32i_param_sum(3)];
    let compiler = Compiler::new(KernelConfig::new(KernelKind::Psu));
    let compiled = compiler.compile(&corpus[0].circuit).unwrap();
    let mut sched = Scheduler::new(&compiled, 1, "halt").unwrap();
    sched.sim_mut().enable_lane_waveforms(0);
    for w in &corpus {
        sched.submit(Job::from_workload(w, &["a0"]));
    }
    sched.run(10_000);
    assert_eq!(sched.results().len(), 2);
    let vcd = sched.sim_mut().take_vcd().expect("capture enabled");
    assert!(vcd.contains("$var"));
    // Both jobs' a0 results appear as value changes (3 = 1+2, 6 = 1+2+3).
    assert!(vcd.contains("b11 "), "first job's a0=3 transition");
    assert!(vcd.contains("b110 "), "second job's a0=6 transition");
    // The capture spans both occupants: changes exist past the first
    // job's completion cycle.
    let first_done = sched.results()[0].finished_at;
    assert!(
        vcd.lines()
            .filter_map(|l| l.strip_prefix('#'))
            .filter_map(|t| t.parse::<u64>().ok())
            .any(|t| t > first_done),
        "vcd extends into the second occupancy"
    );
}
