//! The ESSENT-like baseline simulator (paper §3, §7).
//!
//! ESSENT "completely unrolls the RTL dataflow graph into straight-line
//! code" and leans on aggressive whole-program compiler optimization. The
//! result: the fastest simulation (fewest dynamic instructions, 0.1%
//! branch misses), but compile time and memory that grow dramatically
//! with design size (Figure 8: up to 13,700 s and 234 GB at 24 cores),
//! and total collapse at `-O0` (Figure 19: 103× more dynamic
//! instructions).
//!
//! [`EssentLike`] reproduces the pipeline honestly:
//!
//! 1. whole-program graph optimization (constant folding, copy
//!    propagation, global CSE, mux-chain fusion — several full rebuilds),
//! 2. flattening to a straight-line statement list,
//! 3. **linear-scan register allocation** over the full straight-line
//!    live ranges, binding intermediate values to a small virtual
//!    register file so optimized execution rarely touches memory,
//! 4. compact straight-line code layout (smaller than the Verilator
//!    analog's branchy blocks).
//!
//! Steps 1–3 really are performed at compile time on real data
//! structures (rebuilt graphs, use-def chains, live intervals), which is
//! what makes the measured compile time/memory grow the way ESSENT's
//! does relative to Verilator and the rolled kernels.

use rteaal_dfg::graph::Graph;
use rteaal_dfg::op::{canonicalize, eval_raw, DfgOp};
use rteaal_dfg::passes::{optimize, PassOptions};
use rteaal_kernels::config::OptLevel;
use rteaal_kernels::kernel::CompileReport;
use rteaal_kernels::profile::{MemProbe, NoProbe, Probe, CODE_BASE};
use rteaal_perfmodel::cache::MemSim;
use rteaal_perfmodel::topdown::ExecProfile;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Virtual registers available to the allocator.
const NUM_REGS: usize = 12;
/// Code bytes per straight-line statement at `-O3` (tight, branch-free).
const OPT_STMT_BYTES: u64 = 16;
/// Code bytes per statement at `-O0` (naive, memory round-trips).
const NAIVE_STMT_BYTES: u64 = 36;
/// Base of the generated straight-line code.
const ECODE_BASE: u64 = CODE_BASE + 0x800_0000;
/// Base of the (spilled) values array.
const EDATA_BASE: u64 = 0x1c00_0000;

/// Where a value lives after allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// A virtual register (free to access).
    Reg(u8),
    /// The values array (a real load/store).
    Mem(u32),
}

/// One straight-line statement.
#[derive(Debug, Clone)]
struct EInstr {
    op: DfgOp,
    params: Vec<u64>,
    srcs: Vec<Loc>,
    dst: Loc,
    width: u32,
    signed: bool,
    code_addr: u64,
}

/// The ESSENT-like baseline.
#[derive(Debug, Clone)]
pub struct EssentLike {
    instrs: Vec<EInstr>,
    values: Vec<u64>,
    regs: Vec<u64>,
    input_ids: Vec<u32>,
    input_types: Vec<(u32, bool)>,
    outputs: Vec<(String, u32)>,
    commits: Vec<(u32, u32)>,
    commit_buf: Vec<u64>,
    opt: OptLevel,
    report: CompileReport,
    cycle: u64,
    /// Spilled (memory-resident) intermediate values at `-O3`.
    pub spills: usize,
    /// Straight-line code is essentially branch-free (paper: 0.1%).
    pub branch_entropy: f64,
}

impl EssentLike {
    /// Compiles a graph ESSENT-style, measuring the (deliberately heavy)
    /// whole-program compile cost.
    pub fn compile(graph: &Graph, opt: OptLevel) -> Self {
        let t0 = Instant::now();
        let (mut sim, peak) = rteaal_perfmodel::memtrack::measure(|| Self::build(graph, opt));
        sim.report.seconds = t0.elapsed().as_secs_f64();
        sim.report.peak_bytes = peak;
        sim
    }

    fn build(graph: &Graph, opt: OptLevel) -> Self {
        // 1. Whole-program optimization (several full graph rebuilds).
        let owned;
        let graph = if opt == OptLevel::Full {
            let (g1, _) = optimize(graph, &PassOptions::default());
            // A second iteration mirrors clang -O3's repeated pass
            // pipeline and gives fusion a chance after copy-prop.
            let (g2, _) = optimize(&g1, &PassOptions::default());
            owned = g2;
            &owned
        } else {
            graph
        };
        // 2. Flatten to straight-line order.
        let order = graph.topo_order();
        let pos_of: HashMap<u32, usize> =
            order.iter().enumerate().map(|(k, id)| (id.0, k)).collect();
        // 3. Liveness: def position and last use of every produced value.
        let mut last_use: HashMap<u32, usize> = HashMap::new();
        for (k, &id) in order.iter().enumerate() {
            for o in &graph.node(id).operands {
                if pos_of.contains_key(&o.0) {
                    last_use.insert(o.0, k);
                }
            }
        }
        // Values read by commits or outputs must survive the cycle.
        let mut pinned: HashSet<u32> = graph.regs.iter().map(|r| r.next.0).collect();
        pinned.extend(graph.outputs.iter().map(|(_, id)| id.0));
        // Linear scan (at -O3 only; -O0 keeps everything in memory).
        let mut loc_of: HashMap<u32, Loc> = HashMap::new();
        if opt == OptLevel::Full {
            let mut active: Vec<(usize, u32, u8)> = Vec::new(); // (end, id, reg)
            let mut free: Vec<u8> = (0..NUM_REGS as u8).rev().collect();
            for (k, &id) in order.iter().enumerate() {
                active.retain(|&(end, _, reg)| {
                    if end < k {
                        free.push(reg);
                        false
                    } else {
                        true
                    }
                });
                if pinned.contains(&id.0) {
                    continue; // stays in memory
                }
                let end = match last_use.get(&id.0) {
                    Some(&e) => e,
                    None => continue, // dead value: leave in memory path
                };
                if let Some(reg) = free.pop() {
                    active.push((end, id.0, reg));
                    loc_of.insert(id.0, Loc::Reg(reg));
                } else if let Some(worst) =
                    active.iter().enumerate().max_by_key(|(_, &(e, _, _))| e)
                {
                    // Evict the furthest-ending interval if ours is shorter.
                    let (idx, &(w_end, w_id, w_reg)) = worst;
                    if w_end > end {
                        active.remove(idx);
                        loc_of.insert(w_id, Loc::Mem(w_id));
                        active.push((end, id.0, w_reg));
                        loc_of.insert(id.0, Loc::Reg(w_reg));
                    }
                }
            }
        }
        let loc = |id: u32| loc_of.get(&id).copied().unwrap_or(Loc::Mem(id));
        let spills = order
            .iter()
            .filter(|id| matches!(loc(id.0), Loc::Mem(_)))
            .count();
        // 4. Emit the straight-line statements with compact layout.
        let stmt_bytes = if opt == OptLevel::Full {
            OPT_STMT_BYTES
        } else {
            NAIVE_STMT_BYTES
        };
        let mut instrs = Vec::with_capacity(order.len());
        let mut addr = ECODE_BASE;
        for &id in &order {
            let node = graph.node(id);
            instrs.push(EInstr {
                op: node.op,
                params: node.params.clone(),
                srcs: node.operands.iter().map(|o| loc(o.0)).collect(),
                dst: loc(id.0),
                width: node.width,
                signed: node.signed,
                code_addr: addr,
            });
            addr += stmt_bytes;
        }
        let mut values = vec![0u64; graph.len()];
        for (id, node) in graph.iter() {
            if node.op == DfgOp::Const {
                values[id.index()] = node.params[0];
            }
        }
        for reg in &graph.regs {
            let node = graph.node(reg.state);
            values[reg.state.index()] = canonicalize(reg.init, node.width, node.signed);
        }
        let commits: Vec<(u32, u32)> = graph.regs.iter().map(|r| (r.state.0, r.next.0)).collect();
        let commit_len = commits.len();
        EssentLike {
            instrs,
            values,
            regs: vec![0; NUM_REGS],
            input_ids: graph.inputs.iter().map(|i| i.0).collect(),
            input_types: graph
                .inputs
                .iter()
                .map(|&i| {
                    let n = graph.node(i);
                    (n.width, n.signed)
                })
                .collect(),
            outputs: graph
                .outputs
                .iter()
                .map(|(n, id)| (n.clone(), id.0))
                .collect(),
            commits,
            commit_buf: vec![0; commit_len],
            opt,
            report: CompileReport {
                seconds: 0.0,
                peak_bytes: 0,
                code_bytes: addr - ECODE_BASE + 0x2000,
                data_bytes: 0, // no OIM; only (spilled) values
            },
            cycle: 0,
            spills,
            branch_entropy: 0.001,
        }
    }

    /// Compile-cost and footprint report.
    pub fn compile_report(&self) -> CompileReport {
        self.report
    }

    /// Number of straight-line statements.
    pub fn num_statements(&self) -> usize {
        self.instrs.len()
    }

    /// Drives input port `idx`.
    pub fn set_input(&mut self, idx: usize, value: u64) {
        let (w, signed) = self.input_types[idx];
        self.values[self.input_ids[idx] as usize] = canonicalize(value, w, signed);
    }

    /// Output value by port index.
    pub fn output(&self, idx: usize) -> u64 {
        self.values[self.outputs[idx].1 as usize]
    }

    /// Output by name.
    pub fn output_by_name(&self, name: &str) -> Option<u64> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| self.values[*id as usize])
    }

    /// Cycles simulated.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    fn step_inner<P: Probe>(&mut self, probe: &mut P) {
        let o0 = self.opt == OptLevel::None;
        let mut buf: Vec<u64> = Vec::with_capacity(16);
        for instr in &self.instrs {
            buf.clear();
            for &src in &instr.srcs {
                match src {
                    Loc::Reg(r) => buf.push(self.regs[r as usize]),
                    Loc::Mem(i) => {
                        probe.load(EDATA_BASE + i as u64 * 8);
                        buf.push(self.values[i as usize]);
                    }
                }
                if o0 {
                    // -O0: every operand round-trips through the stack,
                    // twice (address computation + the value itself).
                    probe.store(EDATA_BASE + 0x40_0000);
                    probe.load(EDATA_BASE + 0x40_0000);
                    probe.store(EDATA_BASE + 0x40_0010);
                    probe.load(EDATA_BASE + 0x40_0010);
                }
            }
            probe.exec(instr.code_addr, if o0 { 20 } else { 2 });
            let raw = eval_raw(instr.op, &instr.params, &buf);
            let v = canonicalize(raw, instr.width, instr.signed);
            match instr.dst {
                Loc::Reg(r) => self.regs[r as usize] = v,
                Loc::Mem(i) => {
                    probe.store(EDATA_BASE + i as u64 * 8);
                    self.values[i as usize] = v;
                }
            }
            if o0 {
                probe.store(EDATA_BASE + 0x40_0008);
                probe.load(EDATA_BASE + 0x40_0008);
            }
        }
        for (k, &(_, src)) in self.commits.iter().enumerate() {
            probe.load(EDATA_BASE + src as u64 * 8);
            self.commit_buf[k] = self.values[src as usize];
        }
        for (k, &(dst, _)) in self.commits.iter().enumerate() {
            probe.store(EDATA_BASE + dst as u64 * 8);
            self.values[dst as usize] = self.commit_buf[k];
        }
        self.cycle += 1;
    }

    /// One cycle, fast path.
    pub fn step(&mut self) {
        self.step_inner(&mut NoProbe);
    }

    /// `n` cycles, fast path.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Runs `n` instrumented cycles.
    pub fn run_profiled(&mut self, mem: &mut MemSim, n: u64) -> ExecProfile {
        let mut profile = ExecProfile::default();
        for _ in 0..n {
            let mut probe = MemProbe::new(mem);
            self.step_inner(&mut probe);
            profile.instructions += probe.counters.instructions;
            profile.branches += probe.counters.branches;
        }
        profile.branch_entropy = self.branch_entropy;
        profile.mem = mem.stats();
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rteaal_dfg::interp::Interpreter;
    use rteaal_firrtl::{lower::lower_typed, parser::parse};
    use rteaal_perfmodel::Machine;

    const DESIGN: &str = "\
circuit E :
  module E :
    input clock : Clock
    input x : UInt<16>
    input sel : UInt<1>
    output out : UInt<16>
    reg a : UInt<16>, clock
    reg b : UInt<16>, clock
    node t1 = tail(add(a, x), 1)
    node t2 = xor(t1, b)
    node t3 = tail(sub(t2, a), 1)
    a <= mux(sel, t3, t1)
    b <= or(t2, x)
    out <= and(a, b)
";

    fn graph_of(src: &str) -> Graph {
        rteaal_dfg::build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn matches_reference_interpreter() {
        let g = graph_of(DESIGN);
        let mut golden = Interpreter::new(&g);
        let mut e = EssentLike::compile(&g, OptLevel::Full);
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..300 {
            let x: u64 = rng.gen();
            let sel: u64 = rng.gen();
            golden.set_input(0, x);
            golden.set_input(1, sel);
            e.set_input(0, x);
            e.set_input(1, sel);
            golden.step();
            e.step();
            assert_eq!(golden.output(0), e.output(0));
        }
    }

    #[test]
    fn o0_matches_o3_behavior() {
        let g = graph_of(DESIGN);
        let mut e3 = EssentLike::compile(&g, OptLevel::Full);
        let mut e0 = EssentLike::compile(&g, OptLevel::None);
        for c in 0..100u64 {
            e3.set_input(0, c * 7);
            e3.set_input(1, c & 1);
            e0.set_input(0, c * 7);
            e0.set_input(1, c & 1);
            e3.step();
            e0.step();
            assert_eq!(e3.output(0), e0.output(0), "cycle {c}");
        }
    }

    #[test]
    fn register_allocation_keeps_intermediates_out_of_memory() {
        let g = graph_of(DESIGN);
        let e = EssentLike::compile(&g, OptLevel::Full);
        // Some values got registers (spills < statements).
        assert!(
            e.spills < e.num_statements(),
            "{} vs {}",
            e.spills,
            e.num_statements()
        );
        let mut mem = Machine::intel_core().mem_sim();
        let mut e3 = EssentLike::compile(&g, OptLevel::Full);
        let p3 = e3.run_profiled(&mut mem, 20);
        let mut mem0 = Machine::intel_core().mem_sim();
        let mut e0 = EssentLike::compile(&g, OptLevel::None);
        let p0 = e0.run_profiled(&mut mem0, 20);
        // -O0 degradation is far worse than for other simulators (the
        // paper measures 103x vs 3.8–4.4x).
        let ratio = p0.instructions as f64 / p3.instructions.max(1) as f64;
        assert!(ratio > 5.0, "ratio = {ratio}");
    }

    #[test]
    fn allocator_spills_when_pressure_exceeds_registers() {
        // A wide expression tree with > NUM_REGS simultaneously live
        // values must spill, and still be correct.
        let mut src = String::from(
            "\
circuit W :
  module W :
    input clock : Clock
    input x : UInt<8>
    output out : UInt<8>
",
        );
        for i in 0..24 {
            src.push_str(&format!("    reg r{i} : UInt<8>, clock\n"));
            src.push_str(&format!(
                "    r{i} <= tail(add(r{i}, UInt<8>({})), 1)\n",
                i + 1
            ));
        }
        // One consumer forcing all 24 partial xors live in a chain.
        src.push_str("    node t0 = xor(r0, r1)\n");
        for i in 1..23 {
            src.push_str(&format!("    node t{i} = xor(t{}, r{})\n", i - 1, i + 1));
        }
        src.push_str("    out <= t22\n");
        let g = graph_of(&src);
        let e = EssentLike::compile(&g, OptLevel::Full);
        assert!(e.spills > 0);
        let mut golden = Interpreter::new(&g);
        let mut e = e;
        for c in 0..50u64 {
            golden.set_input(0, c);
            e.set_input(0, c);
            golden.step();
            e.step();
            assert_eq!(golden.output(0), e.output(0), "cycle {c}");
        }
    }

    #[test]
    fn straight_line_code_barely_branches() {
        let g = graph_of(DESIGN);
        let mut e = EssentLike::compile(&g, OptLevel::Full);
        let mut mem = Machine::intel_xeon().mem_sim();
        let p = e.run_profiled(&mut mem, 50);
        assert_eq!(p.branches, 0); // selects are branch-free (cmov)
        assert!((p.branch_entropy - 0.001).abs() < 1e-9);
    }

    #[test]
    fn whole_program_optimization_shrinks_statement_count() {
        let src = "\
circuit O :
  module O :
    input a : UInt<8>
    output x : UInt<8>
    node dead = tail(mul(a, UInt<8>(3)), 8)
    node k = tail(add(UInt<8>(1), UInt<8>(2)), 1)
    x <= xor(a, k)
";
        let g = graph_of(src);
        let o3 = EssentLike::compile(&g, OptLevel::Full);
        let o0 = EssentLike::compile(&g, OptLevel::None);
        assert!(o3.num_statements() < o0.num_statements());
    }
}
