//! The Verilator-like baseline simulator (paper §3, §7).
//!
//! Verilator translates the design into per-node C++ statements grouped
//! into medium-sized eval functions. The resulting binary grows with the
//! design, and the code is *branchy*: conditionals (muxes) compile to
//! data-dependent branches, which is why the paper measures a 22% branch
//! misprediction rate on Intel Xeon for 4-core RocketChip (§7.3) and
//! 80–120 L1I MPKI (§3).
//!
//! [`VerilatorLike`] reproduces that execution model: a static topological
//! schedule of per-node statements, block-structured code layout
//! (one code region per node, grouped in eval blocks), values in a flat
//! array, and *branch-per-select* execution. Compilation applies
//! block-local common-subexpression elimination (Verilator's local
//! optimization scope) at the `-O3` analog.

use rteaal_dfg::graph::{Graph, NodeId};
use rteaal_dfg::op::{canonicalize, eval_raw, DfgOp, OpClass};
use rteaal_kernels::config::OptLevel;
use rteaal_kernels::kernel::CompileReport;
use rteaal_kernels::profile::{MemProbe, NoProbe, Probe, CODE_BASE};
use rteaal_perfmodel::cache::MemSim;
use rteaal_perfmodel::topdown::ExecProfile;
use std::collections::HashMap;
use std::time::Instant;

/// Nodes per generated eval block (Verilator splits output into functions
/// of bounded size).
const BLOCK_NODES: usize = 64;
/// Code bytes per node statement. Branchy codegen is not compact:
/// Verilator's generated binaries run ~1.7x ESSENT's for the same design
/// (§7.5: 19 MB vs 11 MB for 8-core SmallBOOM), and the per-statement
/// ratio is higher still because ESSENT emits fewer statements.
const NODE_CODE_BYTES: u64 = 40;
/// Base of the generated eval code in the address-space model.
const VCODE_BASE: u64 = CODE_BASE + 0x400_0000;
/// Base of the values array in the data-space model.
const VDATA_BASE: u64 = 0x1800_0000;

/// One scheduled statement.
#[derive(Debug, Clone)]
struct VNode {
    op: DfgOp,
    params: Vec<u64>,
    srcs: Vec<u32>,
    dst: u32,
    width: u32,
    signed: bool,
    code_addr: u64,
}

/// The Verilator-like baseline.
#[derive(Debug, Clone)]
pub struct VerilatorLike {
    schedule: Vec<VNode>,
    values: Vec<u64>,
    input_ids: Vec<u32>,
    input_types: Vec<(u32, bool)>,
    outputs: Vec<(String, u32)>,
    commits: Vec<(u32, u32)>,
    commit_buf: Vec<u64>,
    opt: OptLevel,
    report: CompileReport,
    cycle: u64,
    /// Intrinsic branch entropy: per-select data-dependent branches
    /// (the paper's 22%-on-Xeon regime).
    pub branch_entropy: f64,
}

impl VerilatorLike {
    /// "Verilates" a dataflow graph: builds the static schedule and the
    /// generated-code layout, measuring compile cost.
    pub fn compile(graph: &Graph, opt: OptLevel) -> Self {
        let t0 = Instant::now();
        let (mut sim, peak) = rteaal_perfmodel::memtrack::measure(|| {
            let order = graph.topo_order();
            let mut schedule: Vec<VNode> = Vec::with_capacity(order.len());
            let mut addr = VCODE_BASE;
            // Block-local CSE at -O3: Verilator optimizes within an eval
            // function, not across the whole program.
            let mut local_cse: HashMap<(DfgOp, Vec<u64>, Vec<u32>), u32> = HashMap::new();
            let mut alias: HashMap<NodeId, u32> = HashMap::new();
            for (pos, &id) in order.iter().enumerate() {
                if pos % BLOCK_NODES == 0 {
                    local_cse.clear();
                }
                let node = graph.node(id);
                let srcs: Vec<u32> = node
                    .operands
                    .iter()
                    .map(|o| alias.get(o).copied().unwrap_or(o.0))
                    .collect();
                if opt == OptLevel::Full {
                    let key = (node.op, node.params.clone(), srcs.clone());
                    if let Some(&prev) = local_cse.get(&key) {
                        alias.insert(id, prev);
                        continue;
                    }
                    local_cse.insert(key, id.0);
                }
                schedule.push(VNode {
                    op: node.op,
                    params: node.params.clone(),
                    srcs,
                    dst: id.0,
                    width: node.width,
                    signed: node.signed,
                    code_addr: addr,
                });
                addr += NODE_CODE_BYTES;
            }
            let mut values = vec![0u64; graph.len()];
            for (id, node) in graph.iter() {
                if node.op == DfgOp::Const {
                    values[id.index()] = node.params[0];
                }
            }
            for reg in &graph.regs {
                let node = graph.node(reg.state);
                values[reg.state.index()] = canonicalize(reg.init, node.width, node.signed);
            }
            let commits: Vec<(u32, u32)> = graph
                .regs
                .iter()
                .map(|r| (r.state.0, alias.get(&r.next).copied().unwrap_or(r.next.0)))
                .collect();
            let commit_len = commits.len();
            VerilatorLike {
                schedule,
                values,
                input_ids: graph.inputs.iter().map(|i| i.0).collect(),
                input_types: graph
                    .inputs
                    .iter()
                    .map(|&i| {
                        let n = graph.node(i);
                        (n.width, n.signed)
                    })
                    .collect(),
                outputs: graph
                    .outputs
                    .iter()
                    .map(|(n, id)| (n.clone(), alias.get(id).copied().unwrap_or(id.0)))
                    .collect(),
                commits,
                commit_buf: vec![0; commit_len],
                opt,
                report: CompileReport::default(),
                cycle: 0,
                branch_entropy: 0.22,
            }
        });
        sim.report = CompileReport {
            seconds: t0.elapsed().as_secs_f64(),
            peak_bytes: peak,
            code_bytes: sim.schedule.len() as u64 * NODE_CODE_BYTES + 0x2000,
            data_bytes: (sim.values.len() * 8) as u64,
        };
        sim
    }

    /// Compile-cost and footprint report.
    pub fn compile_report(&self) -> CompileReport {
        self.report
    }

    /// Number of scheduled statements.
    pub fn num_statements(&self) -> usize {
        self.schedule.len()
    }

    /// Drives input port `idx`.
    pub fn set_input(&mut self, idx: usize, value: u64) {
        let (w, signed) = self.input_types[idx];
        self.values[self.input_ids[idx] as usize] = canonicalize(value, w, signed);
    }

    /// Output value by port index.
    pub fn output(&self, idx: usize) -> u64 {
        self.values[self.outputs[idx].1 as usize]
    }

    /// Output by name.
    pub fn output_by_name(&self, name: &str) -> Option<u64> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| self.values[*id as usize])
    }

    /// Cycles simulated.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    fn step_inner<P: Probe>(&mut self, probe: &mut P) {
        let o0 = if self.opt == OptLevel::None { 4 } else { 1 };
        let mut buf: Vec<u64> = Vec::with_capacity(16);
        for node in &self.schedule {
            buf.clear();
            for &s in &node.srcs {
                probe.load(VDATA_BASE + s as u64 * 8);
                buf.push(self.values[s as usize]);
            }
            // Selects compile to data-dependent branches.
            if node.op.class() == OpClass::Select {
                probe.branch(node.code_addr);
            }
            probe.exec(node.code_addr, 2 * o0);
            let raw = eval_raw(node.op, &node.params, &buf);
            let v = canonicalize(raw, node.width, node.signed);
            probe.store(VDATA_BASE + node.dst as u64 * 8);
            self.values[node.dst as usize] = v;
        }
        for (k, &(_, src)) in self.commits.iter().enumerate() {
            probe.load(VDATA_BASE + src as u64 * 8);
            self.commit_buf[k] = self.values[src as usize];
        }
        for (k, &(dst, _)) in self.commits.iter().enumerate() {
            probe.store(VDATA_BASE + dst as u64 * 8);
            self.values[dst as usize] = self.commit_buf[k];
        }
        self.cycle += 1;
    }

    /// One cycle, fast path.
    pub fn step(&mut self) {
        self.step_inner(&mut NoProbe);
    }

    /// `n` cycles, fast path.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Runs `n` instrumented cycles.
    pub fn run_profiled(&mut self, mem: &mut MemSim, n: u64) -> ExecProfile {
        let mut profile = ExecProfile::default();
        for _ in 0..n {
            let mut probe = MemProbe::new(mem);
            self.step_inner(&mut probe);
            profile.instructions += probe.counters.instructions;
            profile.branches += probe.counters.branches;
        }
        profile.branch_entropy = self.branch_entropy;
        profile.mem = mem.stats();
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rteaal_dfg::interp::Interpreter;
    use rteaal_firrtl::{lower::lower_typed, parser::parse};
    use rteaal_perfmodel::Machine;

    const DESIGN: &str = "\
circuit V :
  module V :
    input clock : Clock
    input x : UInt<16>
    input sel : UInt<1>
    output out : UInt<16>
    reg a : UInt<16>, clock
    reg b : UInt<16>, clock
    a <= mux(sel, tail(add(a, x), 1), xor(a, b))
    b <= tail(sub(b, x), 1)
    out <= or(a, b)
";

    fn graph_of(src: &str) -> Graph {
        rteaal_dfg::build(&lower_typed(&parse(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn matches_reference_interpreter() {
        let g = graph_of(DESIGN);
        let mut golden = Interpreter::new(&g);
        let mut v = VerilatorLike::compile(&g, OptLevel::Full);
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..300 {
            let x: u64 = rng.gen();
            let sel: u64 = rng.gen();
            golden.set_input(0, x);
            golden.set_input(1, sel);
            v.set_input(0, x);
            v.set_input(1, sel);
            golden.step();
            v.step();
            assert_eq!(golden.output(0), v.output(0));
        }
    }

    #[test]
    fn o0_matches_o3_behavior() {
        let g = graph_of(DESIGN);
        let mut v3 = VerilatorLike::compile(&g, OptLevel::Full);
        let mut v0 = VerilatorLike::compile(&g, OptLevel::None);
        for c in 0..100u64 {
            v3.set_input(0, c * 3);
            v3.set_input(1, c & 1);
            v0.set_input(0, c * 3);
            v0.set_input(1, c & 1);
            v3.step();
            v0.step();
            assert_eq!(v3.output(0), v0.output(0));
        }
    }

    #[test]
    fn local_cse_shrinks_schedule() {
        // Duplicate expressions within one block get merged at -O3.
        let src = "\
circuit C :
  module C :
    input a : UInt<8>
    input b : UInt<8>
    output x : UInt<9>
    output y : UInt<9>
    x <= add(a, b)
    y <= add(a, b)
";
        let g = graph_of(src);
        // Note: the graph itself already hash-conses; simulate Verilator
        // seeing duplicated work by checking schedule <= graph size.
        let v = VerilatorLike::compile(&g, OptLevel::Full);
        assert!(v.num_statements() <= g.effectual_ops());
    }

    #[test]
    fn selects_branch_and_entropy_is_high() {
        let g = graph_of(DESIGN);
        let mut v = VerilatorLike::compile(&g, OptLevel::Full);
        let mut mem = Machine::intel_xeon().mem_sim();
        let p = v.run_profiled(&mut mem, 50);
        assert!(p.branches > 0);
        assert!((p.branch_entropy - 0.22).abs() < 1e-9);
    }

    #[test]
    fn code_grows_with_design() {
        let small = graph_of(DESIGN);
        let mut src = String::from(
            "\
circuit B :
  module B :
    input clock : Clock
    input x : UInt<16>
    output out : UInt<16>
",
        );
        for i in 0..100 {
            src.push_str(&format!("    reg r{i} : UInt<16>, clock\n"));
        }
        src.push_str("    r0 <= tail(add(r99, x), 1)\n");
        for i in 1..100 {
            src.push_str(&format!("    r{i} <= xor(r{}, x)\n", i - 1));
        }
        src.push_str("    out <= r99\n");
        let big = graph_of(&src);
        let vs = VerilatorLike::compile(&small, OptLevel::Full);
        let vb = VerilatorLike::compile(&big, OptLevel::Full);
        assert!(vb.compile_report().code_bytes > vs.compile_report().code_bytes);
    }
}
