//! # rteaal-baselines
//!
//! The two prior-work baseline simulators the paper evaluates against
//! (§3, §7), built on the same dataflow graph, operator semantics, and
//! instrumentation as the RTeAAL kernels so comparisons are
//! apples-to-apples:
//!
//! - [`verilator::VerilatorLike`] — per-node statements in medium eval
//!   blocks, data-dependent branches for selects (the 22%-misprediction
//!   regime), block-local CSE only.
//! - [`essent::EssentLike`] — whole-program optimization, straight-line
//!   flattening, and a real linear-scan register allocator; fastest
//!   simulation, heaviest compile, catastrophic at `-O0`.
//!
//! Both expose `compile` (measured cost), fast `step`/`run`, and
//! `run_profiled` feeding the `rteaal-perfmodel` cache hierarchy.

pub mod essent;
pub mod verilator;

pub use essent::EssentLike;
pub use verilator::VerilatorLike;
