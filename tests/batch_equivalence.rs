//! Batched-vs-sequential equivalence: a `B`-lane [`BatchSimulation`]
//! must match `B` independent [`Simulation`] runs bit-for-bit, on the
//! real evaluation designs (the RV32I core and the SHA3 datapath), for
//! every thread count, including per-lane divergent stimulus — plus the
//! compiled-vs-interpreted engine differential and lane-liveness early
//! exit against scalar runs.

use rteaal_core::{BatchSimulation, Compiled, Compiler, Simulation};
use rteaal_designs::rv32i::{asm::*, rv32i};
use rteaal_designs::{sha3, Stimulus, Workload};
use rteaal_dfg::{BatchPlanSim, SimPlan};
use rteaal_kernels::{KernelConfig, KernelKind};

/// Input port names of a compiled design, in port order.
fn input_names(compiled: &Compiled) -> Vec<String> {
    compiled
        .plan
        .input_slots
        .iter()
        .map(|slot| {
            compiled
                .plan
                .probes
                .iter()
                .find(|(_, s, _)| s == slot)
                .map(|(n, _, _)| n.clone())
                .expect("every input is probed")
        })
        .collect()
}

/// Drives a batch simulation and `lanes` scalar simulations with the
/// same per-lane stimulus streams and asserts every probed signal is
/// bit-identical on every lane after every cycle.
fn assert_batch_matches_sequential(
    circuit: &rteaal_firrtl::Circuit,
    kind: KernelKind,
    lanes: usize,
    threads: usize,
    cycles: u64,
    seed: u64,
) {
    let compiler = Compiler::new(KernelConfig::new(kind));
    let compiled = compiler.compile(circuit).expect("compiles");
    let inputs = input_names(&compiled);
    // TI elides stores of forwarded intermediate nodes, so the *scalar*
    // TI kernel leaves those LI slots stale (observability traded for
    // speed, as in the paper); compare the architectural surface —
    // outputs, registers, inputs — for TI and every probe otherwise.
    let signals: Vec<String> = if kind == KernelKind::Ti {
        let mut observable: Vec<u32> = compiled.plan.output_slots.iter().map(|&(_, s)| s).collect();
        observable.extend(compiled.plan.commits.iter().map(|&(dst, _)| dst));
        observable.extend(compiled.plan.input_slots.iter().copied());
        compiled
            .plan
            .probes
            .iter()
            .filter(|(_, s, _)| observable.contains(s))
            .map(|(n, _, _)| n.clone())
            .collect()
    } else {
        compiled
            .plan
            .probes
            .iter()
            .map(|(n, _, _)| n.clone())
            .collect()
    };

    let mut batch = BatchSimulation::new(&compiled, lanes).with_threads(threads);
    let mut singles: Vec<Simulation> = (0..lanes)
        .map(|_| Simulation::new(compiler.compile(circuit).expect("compiles")))
        .collect();

    let stream = |lane: usize| Stimulus::from_seed(seed ^ (lane as u64) << 20);
    let mut batch_streams: Vec<Stimulus> = (0..lanes).map(stream).collect();
    let mut single_streams: Vec<Stimulus> = (0..lanes).map(stream).collect();

    for cycle in 0..cycles {
        for (lane, stream) in batch_streams.iter_mut().enumerate() {
            for name in &inputs {
                let v = stream.next_value();
                batch.poke(name, lane, v).unwrap();
            }
        }
        batch.step();
        for (lane, single) in singles.iter_mut().enumerate() {
            for name in &inputs {
                let v = single_streams[lane].next_value();
                single.poke(name, v).unwrap();
            }
            single.step();
            for name in &signals {
                assert_eq!(
                    batch.peek(name, lane),
                    single.peek(name),
                    "{kind:?} lanes={lanes} threads={threads} lane {lane} \
                     signal `{name}` @ cycle {cycle}"
                );
            }
        }
    }
    assert_eq!(batch.cycle(), cycles);
}

/// The RV32I test program: sum 1..=20 into a0, then halt.
fn rv32i_circuit() -> rteaal_firrtl::Circuit {
    let program = vec![
        addi(1, 0, 0),
        addi(2, 0, 20),
        add(1, 1, 2),
        addi(2, 2, -1),
        bne(2, 0, -2),
        add(10, 1, 0),
        jal(0, 6),
    ];
    rv32i(&program)
}

#[test]
fn rv32i_batch_matches_sequential() {
    // Random reset toggling makes the lanes genuinely diverge.
    assert_batch_matches_sequential(&rv32i_circuit(), KernelKind::Psu, 4, 2, 120, 0xb001);
}

#[test]
fn rv32i_batch_matches_sequential_single_thread() {
    assert_batch_matches_sequential(&rv32i_circuit(), KernelKind::Ti, 3, 1, 120, 0xb002);
}

#[test]
fn sha3_batch_matches_sequential() {
    assert_batch_matches_sequential(&sha3(), KernelKind::Psu, 4, 4, 60, 0xb003);
}

#[test]
fn sha3_batch_matches_sequential_swizzled_vs_plain() {
    // Both traversal orders of the batch engine against the scalar path.
    assert_batch_matches_sequential(&sha3(), KernelKind::Ru, 2, 2, 40, 0xb004);
    assert_batch_matches_sequential(&sha3(), KernelKind::Iu, 2, 3, 40, 0xb005);
}

/// Runs the compiled-engine and interpreted-engine batch simulators of
/// one design side by side under identical per-lane random stimulus and
/// asserts the *entire* `LI` state matches slot-for-slot every cycle.
fn assert_compiled_matches_interpreted(plan: &SimPlan, lanes: usize, cycles: u64, seed: u64) {
    let mut compiled = BatchPlanSim::new(plan, lanes);
    let mut interpreted = BatchPlanSim::interpreted(plan, lanes);
    let mut streams: Vec<Stimulus> = (0..lanes)
        .map(|lane| Stimulus::from_seed(seed ^ (lane as u64) << 24))
        .collect();
    for cycle in 0..cycles {
        for (lane, stream) in streams.iter_mut().enumerate() {
            for idx in 0..plan.input_slots.len() {
                let v = stream.next_value();
                compiled.set_input(idx, lane, v);
                interpreted.set_input(idx, lane, v);
            }
        }
        compiled.step();
        interpreted.step();
        for s in 0..plan.num_slots as u32 {
            assert_eq!(
                compiled.slot_lanes(s),
                interpreted.slot_lanes(s),
                "{} slot {s} @ cycle {cycle}",
                plan.name
            );
        }
    }
}

fn plan_of(circuit: &rteaal_firrtl::Circuit) -> SimPlan {
    rteaal_dfg::plan::plan(
        &rteaal_dfg::build(&rteaal_firrtl::lower::lower_typed(circuit).unwrap()).unwrap(),
    )
}

#[test]
fn rv32i_compiled_kernels_match_interpreted_walk() {
    assert_compiled_matches_interpreted(&plan_of(&rv32i_circuit()), 5, 150, 0xc001);
}

#[test]
fn sha3_compiled_kernels_match_interpreted_walk() {
    assert_compiled_matches_interpreted(&plan_of(&sha3()), 3, 60, 0xc002);
}

#[test]
fn rv32i_early_exit_matches_scalar_runs() {
    // Lane-liveness early exit on the halting workload: every lane runs
    // the sum-loop program with a *different* reset-release cycle, so
    // the lanes halt at different cycles and the batch compacts them out
    // one by one. Per-lane halt cycles and architectural outputs must
    // match dedicated scalar runs with the same reset schedule.
    let workload = Workload::rv32i_sum_loop();
    let compiler = Compiler::new(KernelConfig::new(KernelKind::Psu));
    let compiled = compiler.compile(&workload.circuit).unwrap();
    const LANES: usize = 4;
    const MAX_CYCLES: usize = 400;
    let reset_until = |lane: usize| lane + 2;

    let mut batch = BatchSimulation::new(&compiled, LANES);
    batch
        .watch_halt(workload.halt_signal.expect("halting workload"))
        .unwrap();
    let mut cycle = 0usize;
    while batch.live_lanes() > 0 && cycle < MAX_CYCLES {
        for lane in 0..LANES {
            if !batch.halted(lane) {
                let r = u64::from(cycle < reset_until(lane));
                batch.poke("reset", lane, r).unwrap();
            }
        }
        batch.step();
        cycle += 1;
    }
    assert_eq!(batch.live_lanes(), 0, "every lane halts within the budget");

    for lane in 0..LANES {
        let mut single = Simulation::new(compiler.compile(&workload.circuit).unwrap());
        let mut scalar_halt = None;
        for c in 0..MAX_CYCLES {
            single
                .poke("reset", u64::from(c < reset_until(lane)))
                .unwrap();
            single.step();
            if single.peek("halt") == Some(1) {
                scalar_halt = Some((c + 1) as u64);
                break;
            }
        }
        assert_eq!(
            batch.completion_cycle(lane),
            scalar_halt,
            "lane {lane} halt cycle"
        );
        assert!(batch.halted(lane));
        // Architectural outputs frozen at the halt cycle match the
        // scalar run observed at its own halt cycle.
        for name in ["a0", "pc", "halt"] {
            assert_eq!(
                batch.peek(name, lane),
                single.peek(name),
                "lane {lane} signal {name}"
            );
        }
        assert_eq!(batch.peek("a0", lane), Some(210), "lane {lane} result");
    }
}

#[test]
fn rv32i_batch_runs_the_program_on_every_lane() {
    // Functional check on top of the bit-level one: every lane of a
    // free-running batch executes the program to the architectural
    // result (a0 = sum(1..=20) = 210).
    let compiled = Compiler::new(KernelConfig::new(KernelKind::Psu))
        .compile(&rv32i_circuit())
        .unwrap();
    let mut batch = BatchSimulation::new(&compiled, 5).with_threads(2);
    batch.poke_all("reset", 1).unwrap();
    batch.step_cycles(2);
    batch.poke_all("reset", 0).unwrap();
    batch.step_cycles(200);
    for lane in 0..5 {
        assert_eq!(batch.peek("halt", lane), Some(1), "lane {lane} halted");
        assert_eq!(batch.peek("a0", lane), Some(210), "lane {lane} result");
    }
}
