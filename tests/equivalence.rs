//! Whole-system differential testing: every simulator in the workspace —
//! the reference graph interpreter, the plan interpreter, the Einsum
//! cascade golden model, all seven RTeAAL kernels, both baselines, and
//! the partitioned RepCut model — must be cycle- and bit-identical on
//! every evaluation design.

use rand::{Rng, SeedableRng};
use rteaal_baselines::{EssentLike, VerilatorLike};
use rteaal_designs::{gemmini, pipeline, rocket, sha3, small_boom, ChipConfig};
use rteaal_dfg::interp::Interpreter;
use rteaal_dfg::passes::{optimize, PassOptions};
use rteaal_dfg::plan::{plan, PlanSim};
use rteaal_einsum::{CascadeSim, RepCutSim};
use rteaal_firrtl::lower::lower_typed;
use rteaal_kernels::{Kernel, KernelConfig, OptLevel, ALL_KERNELS};

/// Runs every simulator on `circuit` for `cycles` with common random
/// stimulus and checks all outputs each cycle.
fn assert_all_simulators_agree(circuit: &rteaal_firrtl::Circuit, cycles: u64, seed: u64) {
    let flat = lower_typed(circuit).expect("lower");
    let raw = rteaal_dfg::build(&flat).expect("build");
    let (opt, _) = optimize(&raw, &PassOptions::default());
    let sim_plan = plan(&opt);

    let mut reference = Interpreter::new(&raw);
    let mut plan_sim = PlanSim::new(&sim_plan);
    let mut cascade = CascadeSim::new(&sim_plan);
    let mut repcut = RepCutSim::new(&sim_plan, 3);
    let mut kernels: Vec<Kernel> = ALL_KERNELS
        .iter()
        .map(|&k| Kernel::compile(&sim_plan, KernelConfig::new(k)))
        .collect();
    let mut verilator = VerilatorLike::compile(&raw, OptLevel::Full);
    let mut essent = EssentLike::compile(&raw, OptLevel::Full);
    let mut essent_o0 = EssentLike::compile(&raw, OptLevel::None);

    let num_inputs = raw.inputs.len();
    let num_outputs = raw.outputs.len();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for cycle in 0..cycles {
        for i in 0..num_inputs {
            let v: u64 = rng.gen();
            reference.set_input(i, v);
            plan_sim.set_input(i, v);
            cascade.set_input(i, v);
            repcut.set_input(i, v);
            verilator.set_input(i, v);
            essent.set_input(i, v);
            essent_o0.set_input(i, v);
            for k in &mut kernels {
                k.set_input(i, v);
            }
        }
        reference.step();
        plan_sim.step();
        cascade.step();
        if cycle % 2 == 0 {
            repcut.step();
        } else {
            repcut.step_parallel();
        }
        verilator.step();
        essent.step();
        essent_o0.step();
        for k in &mut kernels {
            k.step();
        }
        for o in 0..num_outputs {
            let want = reference.output(o);
            assert_eq!(plan_sim.output(o), want, "plan sim output {o} @ {cycle}");
            assert_eq!(cascade.output(o), want, "cascade output {o} @ {cycle}");
            assert_eq!(repcut.output(o), want, "repcut output {o} @ {cycle}");
            assert_eq!(verilator.output(o), want, "verilator output {o} @ {cycle}");
            assert_eq!(essent.output(o), want, "essent output {o} @ {cycle}");
            assert_eq!(essent_o0.output(o), want, "essent -O0 output {o} @ {cycle}");
            for k in &kernels {
                assert_eq!(k.output(o), want, "{} output {o} @ {cycle}", k.config());
            }
        }
    }
}

#[test]
fn pipeline_design() {
    assert_all_simulators_agree(&pipeline(12, 24), 150, 101);
}

#[test]
fn rocket_one_core() {
    assert_all_simulators_agree(&rocket(ChipConfig::new(1).with_scale(0.01)), 60, 102);
}

#[test]
fn small_boom_one_core() {
    assert_all_simulators_agree(&small_boom(ChipConfig::new(1).with_scale(0.01)), 50, 103);
}

#[test]
fn gemmini_mesh() {
    assert_all_simulators_agree(&gemmini(3), 80, 104);
}

#[test]
fn sha3_datapath() {
    assert_all_simulators_agree(&sha3(), 40, 105);
}

#[test]
fn rocket_multicore() {
    assert_all_simulators_agree(&rocket(ChipConfig::new(2).with_scale(0.01)), 40, 106);
}
