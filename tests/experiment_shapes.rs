//! Shape checks for the paper's evaluation claims, run at a reduced
//! scale: these are the assertions behind EXPERIMENTS.md. Each test
//! encodes the *qualitative* result of a table or figure — who wins, in
//! which direction a trend moves — using the same code paths as the
//! `tables` binary.

use rteaal_baselines::{EssentLike, VerilatorLike};
use rteaal_bench::experiments::{essent_run, graph_of, kernel_run, raw_graph_of, verilator_run};
use rteaal_designs::{rocket, small_boom, ChipConfig};
use rteaal_dfg::level::levelize;
use rteaal_dfg::plan::plan;
use rteaal_kernels::{Kernel, KernelConfig, KernelKind, OptLevel, ALL_KERNELS};
use rteaal_perfmodel::Machine;

const SCALE: f64 = 0.03;
const CYCLES: u64 = 25;

fn rocket_plan(cores: usize) -> rteaal_dfg::SimPlan {
    plan(&graph_of(&rocket(ChipConfig::new(cores).with_scale(SCALE))))
}

/// Table 1: identity operations dominate effectual operations.
#[test]
fn table1_identity_ops_dominate() {
    for circuit in [
        rocket(ChipConfig::new(1).with_scale(SCALE)),
        small_boom(ChipConfig::new(1).with_scale(SCALE)),
    ] {
        let lv = levelize(&raw_graph_of(&circuit));
        assert!(lv.identities.total() > 2 * lv.effectual_ops());
    }
}

/// Figure 7: ESSENT has lower frontend-bound + bad-speculation fractions
/// than Verilator.
#[test]
fn fig7_essent_beats_verilator_on_frontend_and_speculation() {
    // Frontend/speculation pressure needs a design whose generated code
    // stresses the L1I; x86 makes Verilator's branchy dispatch visible.
    let g = graph_of(&rocket(ChipConfig::new(4).with_scale(0.15)));
    let machine = Machine::intel_xeon();
    let (v, _) = verilator_run(&g, &machine, CYCLES, 1, OptLevel::Full);
    let (e, _) = essent_run(&g, &machine, CYCLES, 1, OptLevel::Full);
    assert!(e.bad_speculation <= v.bad_speculation);
    assert!(e.frontend_bound + e.bad_speculation <= v.frontend_bound + v.bad_speculation + 1e-9);
}

/// Figure 8 / Table 7: ESSENT compiles slower than Verilator, and both
/// grow with design size while the PSU kernel generation stays flat.
#[test]
fn fig8_table7_compile_cost_scaling() {
    let mut essent_times = Vec::new();
    let mut psu_times = Vec::new();
    for cores in [1usize, 4] {
        let g = raw_graph_of(&rocket(ChipConfig::new(cores).with_scale(SCALE)));
        let e = EssentLike::compile(&g, OptLevel::Full)
            .compile_report()
            .seconds;
        let v = VerilatorLike::compile(&g, OptLevel::Full)
            .compile_report()
            .seconds;
        assert!(e > v, "cores={cores}: essent {e} !> verilator {v}");
        essent_times.push(e);
        let p = plan(&g);
        psu_times.push(
            Kernel::compile(&p, KernelConfig::new(KernelKind::Psu))
                .compile_report()
                .seconds,
        );
    }
    // ESSENT's compile grows markedly with the design...
    assert!(essent_times[1] > 2.0 * essent_times[0]);
    // ...while PSU kernel generation stays orders of magnitude cheaper.
    assert!(psu_times[1] < essent_times[1] / 10.0);
}

/// Table 4: code footprint is flat across the rolled kernels, then jumps
/// at IU and peaks at SU, with TI slightly smaller.
#[test]
fn table4_code_footprint_shape() {
    // Large enough that the straight-line stream dwarfs IU's per-group
    // bodies (as in the paper's designs).
    let p = plan(&graph_of(&rocket(ChipConfig::new(8).with_scale(0.08))));
    let code: Vec<u64> = ALL_KERNELS
        .iter()
        .map(|&k| {
            Kernel::compile(&p, KernelConfig::new(k))
                .compile_report()
                .code_bytes
        })
        .collect();
    let [ru, ou, nu, psu, iu, su, ti] = code[..] else {
        panic!()
    };
    assert_eq!(ru, ou);
    assert_eq!(nu, psu);
    assert!(iu > psu);
    assert!(su > iu);
    assert!(ti < su);
    // Rolled kernels keep the OIM as data instead.
    let psu_data = Kernel::compile(&p, KernelConfig::new(KernelKind::Psu))
        .compile_report()
        .data_bytes;
    assert!(psu_data > 0);
}

/// Table 5: dynamic instructions fall monotonically from RU to TI.
#[test]
fn table5_dynamic_instructions_fall_with_unrolling() {
    let p = plan(&graph_of(&rocket(ChipConfig::new(8).with_scale(0.08))));
    let machine = Machine::intel_xeon();
    let counts: Vec<u64> = ALL_KERNELS
        .iter()
        .map(|&k| {
            kernel_run(&p, KernelConfig::new(k), &machine, CYCLES, 1)
                .1
                .instructions
        })
        .collect();
    // Monotone within a small tolerance: at reduced design scale the
    // per-layer type sweep of NU/PSU is proportionally larger than in
    // the paper's 100K+-op designs.
    for w in counts.windows(2) {
        assert!(
            w[0] as f64 >= w[1] as f64 * 0.8,
            "dyn instr not (near-)monotone: {counts:?}"
        );
    }
    // RU to TI spans a large factor (paper: 26.9T -> 0.476T, ~56x; here
    // the staging + dispatch overheads give a smaller but clear gap).
    assert!(counts[0] as f64 > 2.5 * counts[6] as f64);
}

/// Table 6: SU/TI trade D-cache pressure for I-cache pressure.
#[test]
fn table6_pressure_shift() {
    let p = rocket_plan(8);
    let machine = Machine::intel_xeon();
    let (_, psu) = kernel_run(&p, KernelConfig::new(KernelKind::Psu), &machine, CYCLES, 1);
    let (_, su) = kernel_run(&p, KernelConfig::new(KernelKind::Su), &machine, CYCLES, 1);
    assert!(su.mem.l1d.accesses < psu.mem.l1d.accesses);
    assert!(su.mem.l1i.misses > 2 * psu.mem.l1i.misses);
}

/// Figures 16/17: a mid-spectrum kernel is fastest at 8 cores on the
/// Xeon, and TI is best for the 1-core design (the sweet spot moves).
#[test]
fn fig16_17_sweet_spot() {
    let machine = Machine::intel_xeon();
    let time = |cores: usize, kind: KernelKind| {
        kernel_run(
            &rocket_plan(cores),
            KernelConfig::new(kind),
            &machine,
            CYCLES,
            540_000,
        )
        .0
        .seconds
    };
    // 8 cores: PSU beats both extremes.
    let (ru8, psu8, ti8) = (
        time(8, KernelKind::Ru),
        time(8, KernelKind::Psu),
        time(8, KernelKind::Ti),
    );
    assert!(psu8 < ru8, "PSU {psu8} !< RU {ru8}");
    assert!(psu8 < ti8, "PSU {psu8} !< TI {ti8}");
    // 1 core: TI wins (straight-line code fits the caches).
    let (psu1, ti1) = (time(1, KernelKind::Psu), time(1, KernelKind::Ti));
    assert!(ti1 < psu1, "TI {ti1} !< PSU {psu1}");
}

/// Figure 18: at -O3, ESSENT simulates fastest, Verilator slowest, PSU
/// in between.
#[test]
fn fig18_ordering_at_o3() {
    let circuit = rocket(ChipConfig::new(4).with_scale(SCALE));
    let g = graph_of(&circuit);
    let p = plan(&g);
    let machine = Machine::intel_xeon();
    let (v, _) = verilator_run(&g, &machine, CYCLES, 1, OptLevel::Full);
    let (k, _) = kernel_run(&p, KernelConfig::new(KernelKind::Psu), &machine, CYCLES, 1);
    let (e, _) = essent_run(&g, &machine, CYCLES, 1, OptLevel::Full);
    assert!(
        e.seconds < k.seconds,
        "essent {} !< psu {}",
        e.seconds,
        k.seconds
    );
    assert!(
        k.seconds < v.seconds,
        "psu {} !< verilator {}",
        k.seconds,
        v.seconds
    );
}

/// Figure 19: at -O0, ESSENT's advantage collapses hardest.
#[test]
fn fig19_essent_collapses_at_o0() {
    let circuit = rocket(ChipConfig::new(2).with_scale(SCALE));
    let g = graph_of(&circuit);
    let p = plan(&g);
    let machine = Machine::intel_xeon();
    let degradation = |o3: f64, o0: f64| o0 / o3;
    let (e3, _) = essent_run(&g, &machine, CYCLES, 1, OptLevel::Full);
    let (e0, _) = essent_run(&g, &machine, CYCLES, 1, OptLevel::None);
    let (k3, _) = kernel_run(&p, KernelConfig::new(KernelKind::Psu), &machine, CYCLES, 1);
    let (k0, _) = kernel_run(
        &p,
        KernelConfig::unoptimized(KernelKind::Psu),
        &machine,
        CYCLES,
        1,
    );
    let essent_deg = degradation(e3.seconds, e0.seconds);
    let psu_deg = degradation(k3.seconds, k0.seconds);
    assert!(
        essent_deg > 1.4 * psu_deg,
        "essent degradation {essent_deg:.1}x !>> psu {psu_deg:.1}x"
    );
}

/// Figure 21: the RTeAAL kernel's advantage over the baselines grows as
/// the LLC shrinks.
#[test]
fn fig21_llc_sensitivity() {
    // LLC effects only appear once code footprints exceed the 2 MB L2:
    // this is the one shape test that needs a near-paper-scale design.
    let circuit = small_boom(ChipConfig::new(8).with_scale(1.0));
    let g = graph_of(&circuit);
    let p = plan(&g);
    let speedup_at = |mb: f64| {
        let machine = Machine::intel_xeon().with_llc_capacity((mb * 1024.0 * 1024.0) as usize);
        let (e, _) = essent_run(&g, &machine, 6, 1, OptLevel::Full);
        let (k, _) = kernel_run(&p, KernelConfig::new(KernelKind::Psu), &machine, 6, 1);
        e.seconds / k.seconds // >1 means RTeAAL faster than ESSENT
    };
    // Our straight-line footprint is ~2.3 MB (vs the paper's 11 MB), so
    // the crossover sits at a proportionally smaller LLC.
    let large = speedup_at(10.5);
    let small = speedup_at(1.75);
    assert!(
        small > large,
        "RTeAAL should gain on ESSENT as LLC shrinks: {large:.3} -> {small:.3}"
    );
}
