//! Property-based tests over the compilation pipeline: random circuits
//! must survive parse→emit round trips, optimization must preserve
//! cycle-accurate behavior, every kernel must match the reference
//! interpreter, and the OIM encodings must round-trip through JSON.

use proptest::prelude::*;
use rteaal_dfg::interp::Interpreter;
use rteaal_dfg::passes::{optimize, PassOptions};
use rteaal_dfg::plan::plan;
use rteaal_firrtl::ast::{Circuit, Expr, Stmt};
use rteaal_firrtl::builder::{CircuitBuilder, ModuleBuilder};
use rteaal_firrtl::lower::lower_typed;
use rteaal_firrtl::ops::PrimOp;
use rteaal_firrtl::parser;
use rteaal_firrtl::ty::Type;
use rteaal_kernels::{Kernel, KernelConfig, KernelKind};
use rteaal_tensor::oim::{OimOptimized, OimSwizzled};

/// One random combinational/sequential operation in the generated design.
#[derive(Debug, Clone)]
enum GenOp {
    Add,
    Sub,
    Xor,
    And,
    Or,
    Mux,
    Not,
    Shl(u32),
    Cat,
    Eq,
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        Just(GenOp::Add),
        Just(GenOp::Sub),
        Just(GenOp::Xor),
        Just(GenOp::And),
        Just(GenOp::Or),
        Just(GenOp::Mux),
        Just(GenOp::Not),
        (1u32..4).prop_map(GenOp::Shl),
        Just(GenOp::Cat),
        Just(GenOp::Eq),
    ]
}

/// Builds a random but well-typed synchronous circuit: a pool of 16-bit
/// signals grown by random ops, a few registers, one output.
fn random_circuit(ops: &[GenOp], reg_period: usize) -> Circuit {
    let w = 16u32;
    let mut b = ModuleBuilder::new("Rand");
    let clock = b.input("clock", Type::Clock);
    let mut pool: Vec<Expr> = vec![
        b.input("a", Type::uint(w)),
        b.input("b", Type::uint(w)),
        Expr::u(0x1234, w),
    ];
    let mut reg_names: Vec<String> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let x = pool[i % pool.len()].clone();
        let y = pool[(i * 7 + 1) % pool.len()].clone();
        let z = pool[(i * 13 + 2) % pool.len()].clone();
        let e = match op {
            GenOp::Add => Expr::prim_p(
                PrimOp::Tail,
                vec![Expr::prim(PrimOp::Add, vec![x, y])],
                vec![1],
            ),
            GenOp::Sub => Expr::prim_p(
                PrimOp::Tail,
                vec![Expr::prim(PrimOp::Sub, vec![x, y])],
                vec![1],
            ),
            GenOp::Xor => Expr::prim(PrimOp::Xor, vec![x, y]),
            GenOp::And => Expr::prim(PrimOp::And, vec![x, y]),
            GenOp::Or => Expr::prim(PrimOp::Or, vec![x, y]),
            GenOp::Mux => Expr::mux(Expr::prim(PrimOp::Orr, vec![z]), x, y),
            GenOp::Not => Expr::prim(PrimOp::Not, vec![x]),
            GenOp::Shl(n) => Expr::prim_p(
                PrimOp::Tail,
                vec![Expr::prim_p(PrimOp::Shl, vec![x], vec![*n as u64])],
                vec![*n as u64],
            ),
            GenOp::Cat => Expr::prim(
                PrimOp::Cat,
                vec![
                    Expr::prim_p(PrimOp::Bits, vec![x], vec![7, 0]),
                    Expr::prim_p(PrimOp::Bits, vec![y], vec![15, 8]),
                ],
            ),
            GenOp::Eq => Expr::prim_p(
                PrimOp::Pad,
                vec![Expr::prim(PrimOp::Eq, vec![x, y])],
                vec![w as u64],
            ),
        };
        let node = b.node(format!("n{i}"), e);
        if i % reg_period.max(1) == reg_period.max(1) - 1 {
            let name = format!("r{i}");
            b.reg(&name, Type::uint(w), clock.clone());
            b.connect(&name, node);
            pool.push(Expr::r(name.clone()));
            reg_names.push(name);
        } else {
            pool.push(node);
        }
    }
    let digest = pool
        .iter()
        .skip(3)
        .cloned()
        .reduce(|a, b| Expr::prim(PrimOp::Xor, vec![a, b]))
        .unwrap_or(Expr::u(0, w));
    b.output_expr("out", Type::uint(w), digest);
    let mut cb = CircuitBuilder::new("Rand");
    cb.add_module(b.finish());
    cb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Optimization never changes observable behavior.
    #[test]
    fn optimization_preserves_behavior(
        ops in prop::collection::vec(gen_op(), 4..40),
        reg_period in 2usize..6,
        stimulus in prop::collection::vec(any::<(u64, u64)>(), 20),
    ) {
        let circuit = random_circuit(&ops, reg_period);
        let raw = rteaal_dfg::build(&lower_typed(&circuit).unwrap()).unwrap();
        let (opt, _) = optimize(&raw, &PassOptions::default());
        let mut s1 = Interpreter::new(&raw);
        let mut s2 = Interpreter::new(&opt);
        for &(a, b) in &stimulus {
            s1.set_input(0, a);
            s1.set_input(1, b);
            s2.set_input(0, a);
            s2.set_input(1, b);
            s1.step();
            s2.step();
            prop_assert_eq!(s1.output(0), s2.output(0));
        }
    }

    /// Every kernel matches the reference interpreter on random designs.
    #[test]
    fn kernels_match_reference(
        ops in prop::collection::vec(gen_op(), 4..30),
        reg_period in 2usize..5,
        stimulus in prop::collection::vec(any::<(u64, u64)>(), 15),
        kind in prop::sample::select(vec![
            KernelKind::Ru, KernelKind::Nu, KernelKind::Psu, KernelKind::Su, KernelKind::Ti,
        ]),
    ) {
        let circuit = random_circuit(&ops, reg_period);
        let raw = rteaal_dfg::build(&lower_typed(&circuit).unwrap()).unwrap();
        let sim_plan = plan(&raw);
        let mut golden = Interpreter::new(&raw);
        let mut kernel = Kernel::compile(&sim_plan, KernelConfig::new(kind));
        for &(a, b) in &stimulus {
            golden.set_input(0, a);
            golden.set_input(1, b);
            kernel.set_input(0, a);
            kernel.set_input(1, b);
            golden.step();
            kernel.step();
            prop_assert_eq!(golden.output(0), kernel.output(0));
        }
    }

    /// FIRRTL emit/parse round-trips structurally.
    #[test]
    fn parser_roundtrip(
        ops in prop::collection::vec(gen_op(), 1..20),
        reg_period in 2usize..5,
    ) {
        let circuit = random_circuit(&ops, reg_period);
        let text = parser::emit(&circuit);
        let back = parser::parse(&text).unwrap();
        prop_assert_eq!(circuit, back);
    }

    /// OIM encodings agree with each other and round-trip through JSON.
    #[test]
    fn oim_encodings_consistent(
        ops in prop::collection::vec(gen_op(), 4..30),
        reg_period in 2usize..5,
    ) {
        let circuit = random_circuit(&ops, reg_period);
        let raw = rteaal_dfg::build(&lower_typed(&circuit).unwrap()).unwrap();
        let sim_plan = plan(&raw);
        let b = OimOptimized::from_plan(&sim_plan);
        let c = OimSwizzled::from_plan(&sim_plan);
        prop_assert_eq!(b.num_ops(), c.num_ops());
        prop_assert_eq!(b.num_ops(), sim_plan.total_ops());
        // Same multiset of (n, s) pairs in both encodings.
        let mut pairs_b: Vec<(u16, u32)> =
            (0..b.num_ops()).map(|k| { let r = b.op_at(k); (r.n, r.s) }).collect();
        let mut pairs_c: Vec<(u16, u32)> = Vec::new();
        for i in 0..c.num_layers {
            for n in 0..rteaal_dfg::op::NUM_OPCODES as u16 {
                for k in c.group(i, n) {
                    pairs_c.push((n, c.op_at(k).0));
                }
            }
        }
        pairs_b.sort_unstable();
        pairs_c.sort_unstable();
        prop_assert_eq!(pairs_b, pairs_c);
        let json = serde_json::to_string(&b).unwrap();
        let back: OimOptimized = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(b, back);
    }

    /// Statement-level sanity: the random generator only produces
    /// well-formed circuits (lowering never fails).
    #[test]
    fn generated_circuits_always_lower(
        ops in prop::collection::vec(gen_op(), 1..50),
        reg_period in 1usize..8,
    ) {
        let circuit = random_circuit(&ops, reg_period);
        let flat = lower_typed(&circuit).unwrap();
        prop_assert!(flat.signal_count() > 0);
        // No statement kinds survive that the DFG builder cannot handle.
        for m in &circuit.modules {
            for s in &m.body {
                prop_assert!(!matches!(s, Stmt::Skip));
            }
        }
    }
}
