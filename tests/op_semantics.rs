//! Cross-layer operator semantics: the FIRRTL-level evaluator
//! (`rteaal_firrtl::value::eval_prim`) and the monomorphized DFG-level
//! evaluator (`rteaal_dfg::op::eval`) must agree on every primitive op for
//! every operand value — this is the property that makes the
//! monomorphization step (`build::monomorphize`) trustworthy.
//!
//! The check goes through the full pipeline: build a one-op circuit,
//! lower, construct the graph, and compare the graph interpreter against
//! a direct `eval_prim` call.

use proptest::prelude::*;
use rteaal_dfg::interp::Interpreter;
use rteaal_firrtl::ast::Expr;
use rteaal_firrtl::builder::{CircuitBuilder, ModuleBuilder};
use rteaal_firrtl::lower::lower_typed;
use rteaal_firrtl::ops::PrimOp;
use rteaal_firrtl::ty::Type;
use rteaal_firrtl::value::{eval_prim, TypedValue};

/// Binary ops closed over two same-signedness operands.
const BINARY: [PrimOp; 16] = [
    PrimOp::Add,
    PrimOp::Sub,
    PrimOp::Mul,
    PrimOp::Div,
    PrimOp::Rem,
    PrimOp::Lt,
    PrimOp::Leq,
    PrimOp::Gt,
    PrimOp::Geq,
    PrimOp::Eq,
    PrimOp::Neq,
    PrimOp::And,
    PrimOp::Or,
    PrimOp::Xor,
    PrimOp::Cat,
    PrimOp::Dshr,
];

const UNARY: [PrimOp; 7] = [
    PrimOp::Not,
    PrimOp::Neg,
    PrimOp::Andr,
    PrimOp::Orr,
    PrimOp::Xorr,
    PrimOp::Cvt,
    PrimOp::AsUInt,
];

fn one_op_circuit(
    op: PrimOp,
    wa: u32,
    wb: u32,
    signed: bool,
    params: &[u64],
) -> rteaal_firrtl::Circuit {
    let mk = |w| if signed { Type::sint(w) } else { Type::uint(w) };
    let mut b = ModuleBuilder::new("Op");
    let a = b.input("a", mk(wa));
    let args = if op.num_args() == 2 {
        // dshl/dshr take a UInt shift amount.
        let bty = if matches!(op, PrimOp::Dshl | PrimOp::Dshr) {
            Type::uint(wb)
        } else {
            mk(wb)
        };
        let x = b.input("b", bty);
        vec![a, x]
    } else {
        b.input("b", mk(wb)); // keep the port list uniform
        vec![a]
    };
    let result = Expr::prim_p(op, args, params.to_vec());
    let env_ty = {
        // Recover the result type to declare the output port.
        let tys: Vec<Type> = if op.num_args() == 2 {
            let bty = if matches!(op, PrimOp::Dshl | PrimOp::Dshr) {
                Type::uint(wb)
            } else {
                mk(wb)
            };
            vec![mk(wa), bty]
        } else {
            vec![mk(wa)]
        };
        op.result_type(&tys, params).unwrap()
    };
    b.output_expr("out", env_ty, result);
    let mut cb = CircuitBuilder::new("Op");
    cb.add_module(b.finish());
    cb.finish()
}

fn check(op: PrimOp, wa: u32, wb: u32, signed: bool, params: &[u64], a: u64, bv: u64) {
    let circuit = one_op_circuit(op, wa, wb, signed, params);
    let graph = rteaal_dfg::build(&lower_typed(&circuit).unwrap()).unwrap();
    let mut sim = Interpreter::new(&graph);
    sim.set_input(0, a);
    sim.set_input(1, bv);
    sim.step();
    let got = sim.output(0);

    let mk = |w| if signed { Type::sint(w) } else { Type::uint(w) };
    let ta = TypedValue::new(a, mk(wa));
    let (args, tys): (Vec<TypedValue>, Vec<Type>) = if op.num_args() == 2 {
        let bty = if matches!(op, PrimOp::Dshl | PrimOp::Dshr) {
            Type::uint(wb)
        } else {
            mk(wb)
        };
        (vec![ta, TypedValue::new(bv, bty)], vec![mk(wa), bty])
    } else {
        (vec![ta], vec![mk(wa)])
    };
    let rty = op.result_type(&tys, params).unwrap();
    let want = eval_prim(op, &args, params, rty);
    // The DFG stores canonical (sign-extended) values; compare at the
    // result width.
    assert_eq!(
        got & rty.mask(),
        want & rty.mask(),
        "{op} wa={wa} wb={wb} signed={signed} a={a:#x} b={bv:#x}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn binary_ops_agree_unsigned(
        idx in 0usize..BINARY.len(),
        wa in 1u32..32,
        wb in 1u32..32,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        check(BINARY[idx], wa, wb, false, &[], a, b);
    }

    #[test]
    fn binary_ops_agree_signed(
        idx in 0usize..BINARY.len(),
        wa in 1u32..32,
        wb in 1u32..32,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let op = BINARY[idx];
        // cat/bitwise accept mixed signs but our circuit builder keeps
        // both operands the same signedness, which is all that matters
        // for the monomorphization check.
        check(op, wa, wb, true, &[], a, b);
    }

    #[test]
    fn unary_ops_agree(
        idx in 0usize..UNARY.len(),
        wa in 1u32..40,
        signed in any::<bool>(),
        a in any::<u64>(),
    ) {
        let op = UNARY[idx];
        // Neg/Cvt on signed, Not/reductions on unsigned: FIRRTL accepts
        // both; exercise both.
        check(op, wa, 4, signed, &[], a, 0);
    }

    #[test]
    fn parameterized_ops_agree(
        wa in 2u32..48,
        a in any::<u64>(),
        hi_frac in 0.0f64..1.0,
        lo_frac in 0.0f64..1.0,
        n in 1u64..8,
    ) {
        let hi = ((wa - 1) as f64 * hi_frac) as u64;
        let lo = (hi as f64 * lo_frac) as u64;
        check(PrimOp::Bits, wa, 4, false, &[hi, lo], a, 0);
        check(PrimOp::Shl, wa, 4, false, &[n], a, 0);
        check(PrimOp::Shr, wa, 4, false, &[n], a, 0);
        let head_n = (n.min(wa as u64 - 1)).max(1);
        check(PrimOp::Head, wa, 4, false, &[head_n], a, 0);
        check(PrimOp::Tail, wa, 4, false, &[head_n.min(wa as u64 - 1)], a, 0);
        check(PrimOp::Pad, wa, 4, false, &[(wa + 7) as u64], a, 0);
    }
}
